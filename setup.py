"""Legacy setup shim.

The sandboxed environment has setuptools 65 and no ``wheel`` package, so
PEP 660 editable installs are unavailable; this shim lets
``pip install -e . --no-build-isolation`` take the classic ``develop``
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

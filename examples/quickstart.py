#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

One agent server exports a bounded buffer (Fig. 4).  An agent arrives,
requests the buffer through the six-step binding protocol (Fig. 6),
receives a per-agent proxy with only the methods its rights allow
(Fig. 5), and uses it.

Run:  python examples/quickstart.py
"""

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed


@register_trusted_agent_class
class Greeter(Agent):
    """Deposits a greeting into the host's buffer and reports back."""

    def __init__(self) -> None:
        self.buffer_name = ""
        self.greeting = ""

    def run(self):
        info_before = self.host.resources_available()
        proxy = self.host.get_resource(self.buffer_name)
        proxy.put(self.greeting)
        self.complete(
            {
                "server": self.host.server_name(),
                "resources_seen": info_before,
                "proxy_enabled": sorted(proxy.proxy_info()["enabled"]),
                "buffer_size_after": proxy.size(),
            }
        )


def main() -> None:
    # 1. A world: one server, a CA, a name service (all simulated).
    bed = Testbed(n_servers=1)
    server = bed.home
    print(f"server up: {server.name}")

    # 2. The server installs a bounded buffer resource (Fig. 6, step 1).
    #    Policy: anyone may put and inspect, nobody may get.
    buffer_name = URN.parse("urn:resource:site0.net/mailbox")
    policy = SecurityPolicy(
        rules=[
            PolicyRule(
                "any", "*",
                Rights.of("Buffer.put", "Buffer.size", "Buffer.resource_*"),
            )
        ]
    )
    mailbox = Buffer(
        buffer_name,
        URN.parse("urn:principal:site0.net/postmaster"),
        policy,
        capacity=16,
    )
    server.install_resource(mailbox)
    print(f"resource registered: {buffer_name}")

    # 3. An owner launches an agent with delegated rights.
    agent = Greeter()
    agent.buffer_name = str(buffer_name)
    agent.greeting = "hello from a mobile agent"
    image = bed.launch(agent, rights=Rights.of("Buffer.*"))
    print(f"agent launched: {image.name}")

    # 4. Run the simulation to completion.
    bed.run()

    # 5. What happened?
    status = server.resident_status(image.name)
    print(f"agent status: {status['status']} (bindings: {status['bindings']})")
    print(f"mailbox now holds: {mailbox.size()} item(s): {mailbox.get()!r}")

    # The proxy the agent received had `get` disabled (policy ∩ rights):
    grants = server.audit.records(operation="resource.get_proxy")
    print(f"get_proxy audit: {grants[0].detail}")


if __name__ == "__main__":
    main()

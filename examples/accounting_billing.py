#!/usr/bin/env python
"""Metering, quotas and billing through proxies (section 5.5).

"One can embed usage-metering and accounting mechanisms in a proxy ...
either by counting the invocations of each method, possibly assigning
different costs to different methods, or by metering the elapsed time for
method execution."

A metered database resource charges per call (reads cheap, queries
expensive) plus an elapsed-time rate for long-running queries.  Two
agents work against it: one stays within its quota and gets a bill; the
other exhausts its query quota mid-run and is cut off before the
resource sees the excess call.  All charges also flow into the server's
domain database — the per-agent account the server would settle
(section 2's "secure electronic commerce" requirement).

Run:  python examples/accounting_billing.py
"""

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.database import QueryStore
from repro.core.accounting import Tariff
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import QuotaExceededError
from repro.naming.urn import URN
from repro.server.testbed import Testbed

DB = "urn:resource:bank.net/ledger"


@register_trusted_agent_class
class Auditor(Agent):
    """Runs a fixed, in-budget workload and submits its own bill."""

    def run(self):
        ledger = self.host.get_resource(DB)
        for account in ("acct-001", "acct-002", "acct-003"):
            ledger.lookup(account)
        ledger.query("acct-*")
        bill = ledger.usage_report()
        self.complete(
            {
                "counts": dict(bill.counts),
                "call_charges": bill.call_charges,
                "total": bill.total,
            }
        )


@register_trusted_agent_class
class Scraper(Agent):
    """Tries to run unlimited queries; the quota cuts it off."""

    def run(self):
        ledger = self.host.get_resource(DB)
        completed = 0
        try:
            for _ in range(100):
                ledger.query("*")
                completed += 1
        except QuotaExceededError as exc:
            self.complete({"completed": completed, "stopped_by": str(exc)})
        self.complete({"completed": completed, "stopped_by": None})


def main() -> None:
    bed = Testbed(n_servers=1, authority="bank.net")
    bank = bed.home

    tariff = Tariff.of(
        {"lookup": 0.01, "query": 0.50},  # queries are 50x a point read
        per_second=0.0,
    )
    policy = SecurityPolicy(
        rules=[
            PolicyRule(
                "any", "*",
                Rights.of(
                    "QueryStore.lookup", "QueryStore.query",
                    quotas={"QueryStore.query": 2},  # at most 2 queries each
                ),
                metered=True,
            )
        ]
    )
    ledger = QueryStore(
        URN.parse(DB),
        URN.parse("urn:principal:bank.net/comptroller"),
        policy,
        initial={f"acct-{i:03d}": {"balance": 100 * i} for i in range(1, 6)},
        tariff=tariff,
    )
    bank.install_resource(ledger)

    auditor = bed.launch(Auditor(), Rights.all(), agent_local="auditor")
    scraper = bed.launch(Scraper(), Rights.all(), agent_local="scraper")
    bed.run()

    # Completion results are recorded as reports only when remote; read
    # the domain database for the server-side account instead.
    print("per-agent accounts in the domain database:")
    for record in [bank.domain_db.by_agent(auditor.name),
                   bank.domain_db.by_agent(scraper.name)]:
        print(f"  {record.agent}: status={record.status}"
              f" charges=${record.charges:.2f}")

    auditor_rec = bank.domain_db.by_agent(auditor.name)
    expected = 3 * 0.01 + 1 * 0.50
    assert abs(auditor_rec.charges - expected) < 1e-9
    print(f"\nauditor billed ${auditor_rec.charges:.2f}"
          f" (3 lookups @ $0.01 + 1 query @ $0.50)")

    scraper_rec = bank.domain_db.by_agent(scraper.name)
    print(f"scraper ran {2} queries before its quota tripped,"
          f" billed ${scraper_rec.charges:.2f}; the 3rd query never reached"
          f" the ledger")
    print(f"ledger reads actually served: {ledger.stats()['reads']}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The shopping trip: the paper's motivating on-line-shopping scenario.

A shopping agent tours three marketplace servers.  Every store grants
visiting agents ``quote``/``in_stock`` only; ``buy`` is granted solely to
owners in the "verified-buyers" group — and the owner has additionally
restricted this particular agent to a spending quota of one purchase.
The agent gathers quotes everywhere, buys at the cheapest store, and
reports home.

Run:  python examples/shopping_trip.py
"""

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.marketplace import QuoteService
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.principal import Group, GroupDirectory
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed

ITEM = "camera"
BUYERS_GROUP = URN.parse("urn:group:market.org/verified-buyers")


@register_trusted_agent_class
class Shopper(Agent):
    """Collect quotes on an itinerary, buy at the best store, go home."""

    def __init__(self) -> None:
        self.item = ITEM
        self.shops = {}  # server -> shop resource name
        self.tour = []  # remaining servers
        self.quotes = []  # (server, price)
        self.home = ""

    def run(self):
        here = self.host.server_name()
        shop = self.host.get_resource(self.shops[here])
        if shop.in_stock(self.item):
            self.quotes.append((here, shop.quote(self.item)))
        if self.tour:
            nxt = self.tour.pop(0)
            self.go(nxt, "run")
        # Tour finished: return to the best store to buy.
        best_server, best_price = min(self.quotes, key=lambda q: q[1])
        self.best = (best_server, best_price)
        self.go(best_server, "purchase")

    def purchase(self):
        shop = self.host.get_resource(self.shops[self.host.server_name()])
        paid = shop.buy(self.item)
        self.receipt = {"store": self.host.server_name(), "paid": paid}
        self.go(self.home, "report")

    def report(self):
        self.host.report_home({"quotes": self.quotes, "receipt": self.receipt})
        self.complete()


def main() -> None:
    bed = Testbed(n_servers=4, authority="store{i}.biz")
    home, stores = bed.home, bed.servers[1:]

    # The market's group directory: our owner is a verified buyer.
    groups = GroupDirectory()
    groups.add_group(Group(BUYERS_GROUP, {bed.owner}))

    # Each store's policy: quotes for everyone, purchases for the group.
    prices = [319.0, 289.0, 305.0]
    for server, price in zip(stores, prices):
        authority = server.name.split(":")[2].split("/")[0]
        policy = SecurityPolicy(
            rules=[
                PolicyRule(
                    "any", "*",
                    Rights.of("QuoteService.quote", "QuoteService.in_stock",
                              "QuoteService.list_items"),
                ),
                PolicyRule(
                    "group", str(BUYERS_GROUP),
                    Rights.of("QuoteService.buy"),
                ),
            ],
            groups=groups,
        )
        shop = QuoteService(
            URN.parse(f"urn:resource:{authority}/shop"),
            URN.parse(f"urn:principal:{authority}/owner"),
            policy,
            catalog={ITEM: (price, 3), "tripod": (49.0, 10)},
        )
        server.install_resource(shop)
        print(f"{server.name}: {ITEM} at ${price:.2f}")

    # The owner delegates narrowly: quoting everywhere, at most ONE buy.
    rights = Rights.of(
        "QuoteService.quote", "QuoteService.in_stock", "QuoteService.buy",
        quotas={"QuoteService.buy": 1},
    )
    agent = Shopper()
    agent.shops = {
        s.name: f"urn:resource:{s.name.split(':')[2].split('/')[0]}/shop"
        for s in stores
    }
    agent.tour = [s.name for s in stores[1:]]
    agent.home = home.name
    image = bed.launch(agent, rights, at=stores[0], attributes={})
    # note: home_site is where it was launched; report goes there.

    bed.run()

    report = bed.server_named(stores[0].name).reports[-1]["payload"]
    print("\nquotes gathered:")
    for server, price in report["quotes"]:
        print(f"  {server}: ${price:.2f}")
    receipt = report["receipt"]
    print(f"\nbought at {receipt['store']} for ${receipt['paid']:.2f}")
    assert receipt["paid"] == min(prices)
    print(f"name service last saw the agent at: {bed.locate(image.name)}")


if __name__ == "__main__":
    main()

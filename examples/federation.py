#!/usr/bin/env python
"""An open federation: two administrative domains, one shared market.

Section 5.2 prefers "the server-oriented view of enforcement of security
policies ... over a ubiquitous or central authority ... which may not be
feasible in an open, federated environment of servers and clients."

This example builds that environment explicitly:

* two certificate authorities (east and west), each certifying its own
  servers and owners;
* a **gateway** server that trusts both authorities, a **fortress** that
  trusts only its own;
* the west domain's **replicated name directory** — one shard, three
  replica nodes, quorum reads/writes (``docs/naming.md``) — with one
  replica crashed for the whole run;
* a west-domain shopping agent that works fine on the gateway, gets
  refused — cryptographically, at admission — by the fortress, and
  routes around it using its ``transfer_failed`` hook.  Every hop is
  reported to the directory, which keeps answering on a 2-of-3 quorum.

Run:  python examples/federation.py
"""

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.transfer import capture_image
from repro.apps.marketplace import QuoteService
from repro.core.policy import SecurityPolicy
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.crypto.trust import TrustStore
from repro.naming.replicated import ReplicaNameHost, ReplicatedNameClient
from repro.naming.shard import HashRing
from repro.naming.urn import URN
from repro.net.network import Network
from repro.net.secure_channel import SecureHost
from repro.net.transport import Endpoint
from repro.server.admission import AdmissionPolicy
from repro.server.agent_server import AgentServer
from repro.sim.kernel import Kernel
from repro.sim.threads import SimThread
from repro.util.rng import make_rng

ITEM = "telescope"


@register_trusted_agent_class
class FederatedShopper(Agent):
    """Quotes at every reachable market; skips servers that refuse it."""

    def __init__(self) -> None:
        self.markets = []  # [(server, shop-urn)]
        self.quotes = []
        self.refusals = []
        self.home = ""

    def run(self):
        here = self.host.server_name()
        for server, shop_name in self.markets:
            if server == here:
                shop = self.host.get_resource(shop_name)
                self.quotes.append((here, shop.quote(ITEM)))
        self._next_hop()

    def transfer_failed(self, destination, reason):
        self.refusals.append((destination, reason.split(":")[0]))
        self._next_hop()

    def _next_hop(self):
        visited = {s for s, _p in self.quotes}
        failed = {d for d, _r in self.refusals}
        for server, _shop in self.markets:
            if server not in visited and server not in failed:
                self.go(server, "run")
        self.go(self.home, "report")

    def report(self):
        self.host.report_home(
            {"quotes": self.quotes, "refusals": self.refusals}
        )
        self.complete()


def main() -> None:
    kernel = Kernel()
    network = Network(kernel, seed=9)
    clock = kernel.clock

    east_ca = CertificateAuthority("east-ca", make_rng(9, "e"), clock)
    west_ca = CertificateAuthority("west-ca", make_rng(9, "w"), clock)
    both = TrustStore.of(clock, east_ca, west_ca)
    east_only = TrustStore.of(clock, east_ca)

    def server(name, ca, trust):
        network.add_node(name)
        keys = KeyPair.generate(make_rng(9, f"k:{name}"), bits=512)
        return AgentServer(
            name=name, kernel=kernel, network=network, trust_anchor=trust,
            keys=keys, certificate=ca.issue(name, keys.public),
            rng=make_rng(9, f"r:{name}"),
            admission=AdmissionPolicy(trust, clock),
            transfer_timeout=10.0,
        )

    home = server("urn:server:west.org/home", west_ca, both)
    gateway = server("urn:server:east.org/gateway", east_ca, both)
    fortress = server("urn:server:east.org/fortress", east_ca, east_only)
    # Inter-domain links are slow (WAN); the directory below sits on
    # fast local links, so a hop's relocation lands before the next hop.
    for a, b in [(home.name, gateway.name), (home.name, fortress.name),
                 (gateway.name, fortress.name)]:
        network.connect(a, b, latency=0.5)

    # The west domain's directory: one shard on three replica nodes.
    # West certifies them; they trust both authorities so east servers
    # can report arrivals over mutually-authenticated channels.
    ring = HashRing({"west": tuple(
        f"urn:server:west.org/ns{i}" for i in range(3)
    )})
    replicas = {}
    for node in ring.nodes():
        network.add_node(node)
        keys = KeyPair.generate(make_rng(9, f"k:{node}"), bits=512)
        secure = SecureHost(
            endpoint=Endpoint(network, node), name=node, keys=keys,
            certificate=west_ca.issue(node, keys.public),
            trust_anchor=both, clock=clock, rng=make_rng(9, f"r:{node}"),
        )
        replicas[node] = ReplicaNameHost(secure, ring, "west", timeout=0.3)
        for peer in [home.name, gateway.name, *replicas]:
            if peer != node:
                network.connect(node, peer, latency=0.01)
    # The fortress never admits the agent, so only home and the gateway
    # report arrivals (the fortress's east-only trust store could not
    # validate the west directory's certificates anyway).
    for srv in (home, gateway):
        srv.name_service = ReplicatedNameClient(srv.secure, ring, timeout=0.3)

    # One replica is down for the whole run; W=2 of the remaining two
    # still commits every write, R=2 still answers every read.
    down = ring.replicas("west")[-1]
    replicas[down].crash()

    # Each east server runs a market.
    markets = []
    for srv, price in ((gateway, 499.0), (fortress, 449.0)):
        shop_name = URN.parse(f"urn:resource:east.org/{srv.name.split('/')[-1]}-shop")
        shop = QuoteService(
            shop_name, URN.parse("urn:principal:east.org/merchant"),
            SecurityPolicy.allow_all(), catalog={ITEM: (price, 5)},
        )
        srv.install_resource(shop)
        markets.append((srv.name, str(shop_name)))
        print(f"{srv.name}: {ITEM} at ${price:.2f}"
              f"  (trusts: {srv.admission.trust_anchor.anchors()})")

    # A west-domain owner launches a shopper from home.
    owner = URN.parse("urn:principal:west.org/astronomer")
    owner_keys = KeyPair.generate(make_rng(9, "owner"), bits=512)
    owner_cert = west_ca.issue(str(owner), owner_keys.public)
    cred = Credentials.issue(
        agent=URN.parse("urn:agent:west.org/astronomer/shopper"),
        owner=owner, creator=owner, owner_keys=owner_keys,
        owner_certificate=owner_cert, rights=Rights.all(), now=clock.now(),
    )
    shopper = FederatedShopper()
    shopper.markets = markets
    shopper.home = home.name

    # Registration is a blocking quorum write, so launch from a
    # simulated thread; the ns_token in the image lets every hosting
    # server report the hop to the directory.
    def launch():
        token = home.name_service.register(
            cred.agent, home.name, {"owner": str(owner)}
        )
        image = capture_image(
            shopper, credentials=DelegatedCredentials.wrap(cred),
            entry_method="run", home_site=home.name,
            attributes={"ns_token": token},
        )
        home.launch(image)

    SimThread(kernel, launch, "federation-launch").start()
    kernel.run(detect_deadlock=False)

    # The tour is over; ask the degraded directory where the agent ended
    # up (another blocking quorum read, hence another simulated thread).
    found = {}

    def audit_directory():
        found["record"] = home.name_service.lookup(cred.agent)

    SimThread(kernel, audit_directory, "federation-audit").start()
    kernel.run(detect_deadlock=False)

    report = home.reports[-1]["payload"]
    print("\nquotes gathered (west credentials, east markets):")
    for srv, price in report["quotes"]:
        print(f"  {srv}: ${price:.2f}")
    print("refused by:")
    for dest, _ in report["refusals"]:
        print(f"  {dest} — untrusted authority (west-ca not in its trust store)")
    print(f"\nfortress admission refusals: {fortress.stats['transfers_refused']}")
    record = found["record"]
    live = sum(not host.is_crashed for host in replicas.values())
    print(f"directory quorum with {live} of 3 replicas up: "
          f"{record.name} is at {record.location}")
    assert len(report["quotes"]) == 1 and len(report["refusals"]) == 1
    assert record.location == home.name
    assert home.stats["ns_relocate_failed"] == 0
    assert gateway.stats["ns_relocate_failed"] == 0


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""An open federation: two administrative domains, one shared market.

Section 5.2 prefers "the server-oriented view of enforcement of security
policies ... over a ubiquitous or central authority ... which may not be
feasible in an open, federated environment of servers and clients."

This example builds that environment explicitly:

* two certificate authorities (east and west), each certifying its own
  servers and owners;
* a **gateway** server that trusts both authorities, a **fortress** that
  trusts only its own;
* a name registry running as a network service of its own;
* a west-domain shopping agent that works fine on the gateway, gets
  refused — cryptographically, at admission — by the fortress, and
  routes around it using its ``transfer_failed`` hook.

Run:  python examples/federation.py
"""

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.transfer import capture_image
from repro.apps.marketplace import QuoteService
from repro.core.policy import SecurityPolicy
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.crypto.trust import TrustStore
from repro.naming.urn import URN
from repro.net.network import Network
from repro.server.admission import AdmissionPolicy
from repro.server.agent_server import AgentServer
from repro.sim.kernel import Kernel
from repro.util.rng import make_rng

ITEM = "telescope"


@register_trusted_agent_class
class FederatedShopper(Agent):
    """Quotes at every reachable market; skips servers that refuse it."""

    def __init__(self) -> None:
        self.markets = []  # [(server, shop-urn)]
        self.quotes = []
        self.refusals = []
        self.home = ""

    def run(self):
        here = self.host.server_name()
        for server, shop_name in self.markets:
            if server == here:
                shop = self.host.get_resource(shop_name)
                self.quotes.append((here, shop.quote(ITEM)))
        self._next_hop()

    def transfer_failed(self, destination, reason):
        self.refusals.append((destination, reason.split(":")[0]))
        self._next_hop()

    def _next_hop(self):
        visited = {s for s, _p in self.quotes}
        failed = {d for d, _r in self.refusals}
        for server, _shop in self.markets:
            if server not in visited and server not in failed:
                self.go(server, "run")
        self.go(self.home, "report")

    def report(self):
        self.host.report_home(
            {"quotes": self.quotes, "refusals": self.refusals}
        )
        self.complete()


def main() -> None:
    kernel = Kernel()
    network = Network(kernel, seed=9)
    clock = kernel.clock

    east_ca = CertificateAuthority("east-ca", make_rng(9, "e"), clock)
    west_ca = CertificateAuthority("west-ca", make_rng(9, "w"), clock)
    both = TrustStore.of(clock, east_ca, west_ca)
    east_only = TrustStore.of(clock, east_ca)

    def server(name, ca, trust):
        network.add_node(name)
        keys = KeyPair.generate(make_rng(9, f"k:{name}"), bits=512)
        return AgentServer(
            name=name, kernel=kernel, network=network, trust_anchor=trust,
            keys=keys, certificate=ca.issue(name, keys.public),
            rng=make_rng(9, f"r:{name}"),
            admission=AdmissionPolicy(trust, clock),
            transfer_timeout=10.0,
        )

    home = server("urn:server:west.org/home", west_ca, both)
    gateway = server("urn:server:east.org/gateway", east_ca, both)
    fortress = server("urn:server:east.org/fortress", east_ca, east_only)
    for a, b in [(home.name, gateway.name), (home.name, fortress.name),
                 (gateway.name, fortress.name)]:
        network.connect(a, b, latency=0.01)

    # Each east server runs a market.
    markets = []
    for srv, price in ((gateway, 499.0), (fortress, 449.0)):
        shop_name = URN.parse(f"urn:resource:east.org/{srv.name.split('/')[-1]}-shop")
        shop = QuoteService(
            shop_name, URN.parse("urn:principal:east.org/merchant"),
            SecurityPolicy.allow_all(), catalog={ITEM: (price, 5)},
        )
        srv.install_resource(shop)
        markets.append((srv.name, str(shop_name)))
        print(f"{srv.name}: {ITEM} at ${price:.2f}"
              f"  (trusts: {srv.admission.trust_anchor.anchors()})")

    # A west-domain owner launches a shopper from home.
    owner = URN.parse("urn:principal:west.org/astronomer")
    owner_keys = KeyPair.generate(make_rng(9, "owner"), bits=512)
    owner_cert = west_ca.issue(str(owner), owner_keys.public)
    cred = Credentials.issue(
        agent=URN.parse("urn:agent:west.org/astronomer/shopper"),
        owner=owner, creator=owner, owner_keys=owner_keys,
        owner_certificate=owner_cert, rights=Rights.all(), now=clock.now(),
    )
    shopper = FederatedShopper()
    shopper.markets = markets
    shopper.home = home.name
    image = capture_image(
        shopper, credentials=DelegatedCredentials.wrap(cred),
        entry_method="run", home_site=home.name,
    )
    home.launch(image)
    kernel.run(detect_deadlock=False)

    report = home.reports[-1]["payload"]
    print("\nquotes gathered (west credentials, east markets):")
    for srv, price in report["quotes"]:
        print(f"  {srv}: ${price:.2f}")
    print("refused by:")
    for dest, _ in report["refusals"]:
        print(f"  {dest} — untrusted authority (west-ca not in its trust store)")
    print(f"\nfortress admission refusals: {fortress.stats['transfers_refused']}")
    assert len(report["quotes"]) == 1 and len(report["refusals"]) == 1


if __name__ == "__main__":
    main()

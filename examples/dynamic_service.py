#!/usr/bin/env python
"""Dynamic extension of server capabilities (section 5.5).

"A service provider can dispatch an agent at any time, to install new
resources dynamically.  The agent can carry resource objects ... On
arrival at a server, the agent can make such resources available by
registering them with the server.  Having done so, the agent thread may
terminate, leaving the passive resource objects behind.  Other agents
running on the same agent server can then access such resources via the
usual proxy-request mechanism."

An installer agent (with the ``system.resource_register`` privilege)
carries a translation dictionary to a remote server, registers it, and
terminates.  A later visitor — an ordinary agent with no installation
rights — finds and uses the new service through a normal proxy.

Run:  python examples/dynamic_service.py
"""

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.database import QueryStore
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed

SERVICE = "urn:resource:target.net/glossary"


@register_trusted_agent_class
class Installer(Agent):
    """Carries a resource to a server and installs it."""

    def __init__(self) -> None:
        self.entries = {}
        self.target = ""

    def run(self):
        if self.host.server_name() != self.target:
            self.go(self.target, "run")
        # Build the resource here, from carried data, and register it.
        glossary = QueryStore(
            URN.parse(SERVICE),
            URN.parse("urn:principal:provider.org/publisher"),
            SecurityPolicy(
                rules=[
                    PolicyRule(
                        "any", "*",
                        Rights.of("QueryStore.lookup", "QueryStore.query",
                                  "QueryStore.contains"),
                    )
                ]
            ),
            initial=self.entries,
        )
        self.host.register_resource(glossary)
        self.host.log(f"installed {SERVICE}")
        self.complete({"installed": SERVICE})


@register_trusted_agent_class
class Visitor(Agent):
    """An ordinary agent using the dynamically installed service."""

    def __init__(self) -> None:
        self.target = ""
        self.word = ""

    def run(self):
        if self.host.server_name() != self.target:
            self.go(self.target, "run")
        available = self.host.resources_available()
        glossary = self.host.get_resource(SERVICE)
        meaning = glossary.lookup(self.word)
        self.host.report_home(
            {"available": available, "word": self.word, "meaning": meaning}
        )
        self.complete()


def main() -> None:
    bed = Testbed(n_servers=2, authority="target{i}.net")
    target = bed.servers[1]

    print(f"resources on {target.name} before: {len(target.registry)}")

    installer = Installer()
    installer.entries = {
        "ajanta": "a city in Maharashtra; also a mobile-agent system",
        "proxy": "an object with a safe interface to a resource",
    }
    installer.target = target.name
    # The installer needs the registration privilege; nothing else.
    bed.launch(
        installer,
        Rights.of("system.resource_register"),
        agent_local="installer",
    )
    bed.run()
    print(f"resources on {target.name} after install: "
          f"{[str(n) for n in target.registry.names()]}")
    installer_status = target.domain_db.residents()
    print(f"installer still resident? {bool(installer_status)}")

    visitor = Visitor()
    visitor.target = target.name
    visitor.word = "proxy"
    bed.launch(
        visitor,
        Rights.of("QueryStore.lookup", "QueryStore.query"),
        agent_local="visitor",
    )
    bed.run()

    report = bed.home.reports[-1]["payload"]
    print(f"visitor looked up {report['word']!r}: {report['meaning']!r}")

    # A third agent WITHOUT the privilege cannot install services:
    rogue = Installer()
    rogue.entries = {"trojan": "nope"}
    rogue.target = target.name
    image = bed.launch(rogue, Rights.of("QueryStore.*"), agent_local="rogue")
    bed.run()
    print(f"rogue installer outcome: "
          f"{target.resident_status(image.name)['status']} "
          f"(lacked system.resource_register)")


if __name__ == "__main__":
    main()

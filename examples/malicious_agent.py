#!/usr/bin/env python
"""Attack gallery: every section-5 threat, attempted and stopped.

Each scenario launches a hostile agent (or attacks the wire) and prints
which mechanism stopped it:

1. dangerous imports            → code verifier (byte-code-verifier analogue)
2. impostor class               → namespace loader (class-loader analogue)
3. reaching the proxy's _ref    → verifier-enforced encapsulation (Fig. 5)
4. calling a disabled method    → proxy pre-check (isEnabled)
5. stolen proxy, other domain   → identity-based capability confinement
6. expired credentials          → admission control (section 5.2)
7. tampered transfer            → AEAD integrity on the secure channel

Run:  python examples/malicious_agent.py
"""

from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import SecurityException
from repro.naming.urn import URN
from repro.net.adversary import Tamperer
from repro.server.testbed import Testbed
from repro.util.rng import make_rng

BUF = "urn:resource:victim.net/vault"


def banner(n: int, title: str) -> None:
    print(f"\n[{n}] {title}")


def fresh_bed(n=1):
    bed = Testbed(n_servers=n, authority="victim{i}.net")
    name = URN.parse("urn:resource:victim0.net/vault")
    policy = SecurityPolicy(
        rules=[PolicyRule("any", "*", Rights.of("Buffer.get", "Buffer.size"))]
    )
    vault = Buffer(name, URN.parse("urn:principal:victim0.net/admin"),
                   policy, capacity=8)
    vault.put("crown jewels")
    bed.home.install_resource(vault)
    return bed, str(name), vault


def main() -> None:
    banner(1, "agent shipping `import os` code")
    bed, name, vault = fresh_bed()
    try:
        bed.launch_source(
            "import os\nclass Wiper(Agent):\n    def run(self):\n        pass\n",
            "Wiper", Rights.all(),
        )
    except SecurityException as exc:
        print(f"    BLOCKED by code verifier: {exc}")

    banner(2, "agent installing an impostor `Agent` class")
    bed, name, vault = fresh_bed()
    image = bed.launch_source(
        "class Agent:\n    def run(self):\n        pass\n", "Agent", Rights.all()
    )
    bed.run()
    retire = bed.home.audit.records(operation="agent.retire")[-1]
    print(f"    BLOCKED by namespace loader: {retire.detail}")

    banner(3, "agent dereferencing the proxy's private _ref")
    bed, name, vault = fresh_bed()
    try:
        bed.launch_source(
            "class Thief(Agent):\n"
            "    def run(self):\n"
            f"        raw = self.host.get_resource('{name}')._ref\n",
            "Thief", Rights.all(),
        )
    except SecurityException as exc:
        print(f"    BLOCKED by verifier-enforced encapsulation: {exc}")

    banner(4, "agent calling a method its proxy has disabled (put)")
    bed, name, vault = fresh_bed()
    image = bed.launch_source(
        "class Stuffer(Agent):\n"
        "    def run(self):\n"
        f"        self.host.get_resource('{name}').put('junk')\n",
        "Stuffer", Rights.all(),
    )
    bed.run()
    denial = bed.home.audit.records(operation="proxy.invoke", allowed=False)[-1]
    print(f"    BLOCKED by proxy pre-check: {denial.target} ({denial.detail})")
    print(f"    vault still holds {vault.size()} item(s)")

    banner(5, "accomplice using a proxy stolen from another agent")
    # The victim binds a proxy, then 'drops' it where an accomplice could
    # grab it.  Confinement makes the object worthless outside the
    # grantee's protection domain:
    from repro.core.access_protocol import BindingContext
    from repro.sandbox.domain import ProtectionDomain
    from repro.sandbox.threadgroup import ThreadGroup, enter_group

    bed, name, vault = fresh_bed()
    vault2 = Buffer(URN.parse(BUF), bed.owner,
                    SecurityPolicy.allow_all(confine=True), capacity=4)
    victim = ProtectionDomain("victim-dom", "agent", ThreadGroup("victim-g"),
                              credentials=bed.credentials_for(Rights.all()))
    thief = ProtectionDomain("thief-dom", "agent", ThreadGroup("thief-g"),
                             credentials=bed.credentials_for(Rights.all()))
    context = BindingContext(domain_id=victim.domain_id, clock=bed.clock)
    proxy = vault2.get_proxy(victim.credentials, context)
    with enter_group(thief.thread_group):
        try:
            proxy.size()
        except SecurityException as exc:
            print(f"    BLOCKED by capability confinement: {exc}")

    banner(6, "agent arriving with expired credentials")
    bed, name, vault = fresh_bed()
    stale = bed.credentials_for(Rights.all(), lifetime=5.0)
    bed.clock.advance(10.0)
    from repro.agents.transfer import AgentImage

    image = AgentImage(
        name=stale.agent, credentials=stale, class_name="Idler",
        source="class Idler(Agent):\n    def run(self):\n        pass\n",
        state={}, entry_method="run", home_site=bed.home.name,
    )
    try:
        bed.home.launch(image)
    except SecurityException as exc:
        print(f"    BLOCKED by admission control: {exc}")

    banner(7, "man-in-the-middle corrupting an agent in transit")
    bed2 = Testbed(n_servers=2, authority="victim{i}.net",
                   server_kwargs={"transfer_timeout": 20.0})
    hopper = (
        "class Hopper(Agent):\n"
        "    def run(self):\n"
        "        if self.hops:\n"
        "            nxt = self.hops.pop(0)\n"
        "            self.go(nxt, 'run')\n"
        "        self.complete()\n"
    )
    # A first, unmolested agent establishes the secure channel ...
    bed2.launch_source(
        hopper, "Hopper", Rights.all(), state={"hops": [bed2.servers[1].name]},
        agent_local="scout",
    )
    bed2.run()
    # ... then the man-in-the-middle starts corrupting the link, and a
    # second agent tries to cross it.
    link = bed2.network.link(bed2.home.name, bed2.servers[1].name)
    link.add_tap(Tamperer(make_rng(1, "mitm"), rate=1.0))
    image = bed2.launch_source(
        hopper, "Hopper", Rights.all(), state={"hops": [bed2.servers[1].name]},
        agent_local="courier",
    )
    bed2.run(detect_deadlock=False)
    print(f"    receiver rejected tampered frames: "
          f"{bed2.servers[1].secure.stats['rejected_tampered']} frame(s)")
    print(f"    transfers completed after the attack began: "
          f"{bed2.servers[1].stats['transfers_in'] - 1}")
    print(f"    courier outcome at sender: "
          f"{bed2.home.resident_status(image.name)['status']} (transfer timed out)")

    print("\nall seven attacks stopped.")


if __name__ == "__main__":
    main()

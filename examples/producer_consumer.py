#!/usr/bin/env python
"""Co-located agents communicating through a protected buffer.

Section 5.1: "agents are often required to [communicate]. Moreover,
communication among co-located agents needs to be established securely."
The paper's answer (end of section 6): the same proxy scheme provides
"controlled binding between agents co-located at a server".

Here a producer and a consumer meet on one server.  The shared bounded
buffer grants *asymmetric* rights: the producer's proxy can only ``put``,
the consumer's only ``get`` — each agent's identity (from its credentials)
selects which policy rule applies.  The blocking semantics come from the
simulated-thread buffer (Fig. 4's ``synchronized`` behaviour).

Run:  python examples/producer_consumer.py
"""

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import MethodDisabledError
from repro.naming.urn import URN
from repro.server.testbed import Testbed

PIPE = "urn:resource:plant.io/pipe"
N_ITEMS = 8


@register_trusted_agent_class
class Producer(Agent):
    def __init__(self) -> None:
        self.produced = 0

    def run(self):
        pipe = self.host.get_resource(PIPE)
        for i in range(N_ITEMS):
            pipe.put(f"part-{i}")
            self.produced += 1
            self.host.sleep(0.5)  # production takes time
        # Try to read back our own parts — the policy says producers
        # cannot consume:
        try:
            pipe.get()
        except MethodDisabledError:
            self.host.log("producer correctly denied get()")
        self.complete({"produced": self.produced})


@register_trusted_agent_class
class Consumer(Agent):
    def __init__(self) -> None:
        self.consumed = []

    def run(self):
        pipe = self.host.get_resource(PIPE)
        while len(self.consumed) < N_ITEMS:
            item = pipe.get()  # blocks when the pipe is empty
            self.consumed.append(item)
            self.host.sleep(0.8)  # consumption is slower than production
        self.complete({"consumed": self.consumed})


def main() -> None:
    bed = Testbed(n_servers=1, authority="plant.io")
    factory = bed.home

    policy = SecurityPolicy(
        rules=[
            PolicyRule("agent", "urn:agent:umn.edu/owner/producer*",
                       Rights.of("Buffer.put", "Buffer.size")),
            PolicyRule("agent", "urn:agent:umn.edu/owner/consumer*",
                       Rights.of("Buffer.get", "Buffer.size")),
        ]
    )
    pipe = Buffer(
        URN.parse(PIPE),
        URN.parse("urn:principal:plant.io/foreman"),
        policy,
        capacity=3,  # small: the producer will block on a full pipe
        kernel=bed.kernel,
    )
    factory.install_resource(pipe)

    p_image = bed.launch(Producer(), Rights.all(), agent_local="producer-1")
    c_image = bed.launch(Consumer(), Rights.all(), agent_local="consumer-1")

    bed.run()

    p_status = factory.resident_status(p_image.name)
    c_status = factory.resident_status(c_image.name)
    print(f"producer: {p_status['status']}")
    print(f"consumer: {c_status['status']}")
    print(f"pipe residue: {pipe.size()} items (capacity {pipe.buffer_capacity()})")
    denied = factory.audit.records(operation="proxy.invoke", allowed=False)
    print(f"denied proxy calls: {[f'{r.domain}:{r.target}' for r in denied]}")
    print(f"virtual makespan: {bed.clock.now():.1f}s "
          f"(consumer paced at 0.8s/item x {N_ITEMS} items)")


if __name__ == "__main__":
    main()

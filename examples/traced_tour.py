#!/usr/bin/env python
"""Flight-recorder demo: one trace across a lossy multi-server tour.

A courier agent tours four servers over links that drop 15% of frames
(plus an injected loss burst on the first leg), then binds a mailbox
buffer on the final server through the six-step protocol of Fig. 6 and
deposits a message.  Tracing is on for the whole run, so the *entire*
journey — launch, admissions, hops, retransmissions, binding, proxy
invocations — is a single causally-ordered trace.

Run:  python examples/traced_tour.py [output-dir]

Writes to the output dir (default: a fresh temp dir):
  trace.json   Chrome trace-event file (load in chrome://tracing or Perfetto)
  trace.jsonl  one finished span per line, for ad-hoc jq/grep analysis
  scrape.txt   the unified metrics registry, flattened to text

Exits non-zero if any span is left unclosed — CI runs this as the
tracing smoke test.
"""

import pathlib
import sys
import tempfile

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import PolicyRule, SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed
from repro.util.retry import RetryPolicy

MAILBOX = "urn:resource:site3.net/mailbox"


@register_trusted_agent_class
class TouringCourier(Agent):
    """Hops every server, then delivers a message at the last one."""

    def __init__(self) -> None:
        self.hops: list[str] = []
        self.message = ""

    def run(self):
        if self.hops:
            self.go(self.hops.pop(0), "run")
        mailbox = self.host.get_resource(MAILBOX)
        mailbox.put(self.message)
        self.complete({"delivered_at": self.host.server_name(),
                       "mailbox_size": mailbox.size()})


def main() -> None:
    out = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                       else tempfile.mkdtemp(prefix="traced_tour_"))
    out.mkdir(parents=True, exist_ok=True)

    # 1. A lossy four-server world, with the flight recorder running.
    bed = Testbed(
        4,
        seed=1000,
        loss_rate=0.15,
        server_kwargs={
            "transfer_timeout": 30.0,
            "transfer_retry": RetryPolicy(attempts=8, base_delay=1.0,
                                          jitter=0.25),
        },
    )
    recorder = bed.start_tracing()
    bed.start_metrics()
    # Extra adversity on the first leg, annotated into the trace.
    bed.faults().loss_burst(bed.home.name, bed.servers[1].name,
                            at=0.0, duration=5.0, loss_rate=0.5)

    # 2. The final server exports the mailbox (Fig. 6 step 1, traced).
    policy = SecurityPolicy(rules=[PolicyRule(
        "any", "*",
        Rights.of("Buffer.put", "Buffer.size", "Buffer.resource_*"),
        rule_id="mailbox-open",
    )])
    bed.servers[3].install_resource(Buffer(
        URN.parse(MAILBOX),
        URN.parse("urn:principal:site3.net/postmaster"),
        policy,
        capacity=16,
    ))

    # 3. Launch the courier and run the world.
    courier = TouringCourier()
    courier.hops = [s.name for s in bed.servers[1:]]
    courier.message = "hello from a traced mobile agent"
    image = bed.launch(courier, Rights.of("Buffer.*"))
    bed.run(detect_deadlock=False)
    bed.stop_tracing()

    # 4. Interrogate the flight recorder.
    recorder.assert_no_open_spans()  # non-zero exit on a span leak
    spans = recorder.trace_of(image.name)  # raises unless exactly 1 trace
    residents = [s for s in spans if s.name == "agent.resident"]
    servers_spanned = [s.attributes["server"] for s in residents]
    steps = recorder.protocol_steps(image.name)
    step_numbers = [n for n, _ in steps]
    recorder.assert_causal_order(span for _, span in steps[1:])
    retries = sum(
        1 for s in spans for name in s.event_names() if name == "retry"
    )
    admissions = [s for s in spans if s.name == "admission.validate"]
    invocations = [s for s in spans if s.name == "proxy.invoke"]
    assert set(step_numbers) == {1, 2, 3, 4, 5, 6}, step_numbers

    print(f"single trace {spans[0].trace_id}: {len(spans)} spans")
    print(f"tour spans {len(set(servers_spanned))} server(s): "
          + " -> ".join(s.rsplit('/', 1)[-1] for s in servers_spanned))
    print(f"admissions traced: {len(admissions)}")
    print(f"all six protocol steps reconstructed: {sorted(set(step_numbers))}")
    print(f"proxy invocations: {len(invocations)} "
          f"({', '.join(s.attributes['method'] for s in invocations)})")
    print(f"retransmissions recorded as retry events: {retries}")
    print("unclosed spans: 0")

    # 5. Export the artifacts.
    recorder.export_chrome(str(out / "trace.json"))
    recorder.export_jsonl(str(out / "trace.jsonl"))
    (out / "scrape.txt").write_text(bed.render_metrics() + "\n")
    print(f"artifacts in {out}: trace.json trace.jsonl scrape.txt")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""RPC vs REV vs mobile agent, live (the paper's section-1 motivation).

Runs the distributed-search workload under all three paradigms on
identical data and prints the comparison the paper's introduction argues
from: moving the computation to the data slashes the traffic crossing the
client's link, at the price of shipping code.

Run:  python examples/paradigm_comparison.py
"""

from repro.paradigms.workload import STRATEGIES, build_search_world, run_search


def show(title: str, **params) -> None:
    print(f"\n{title}")
    print(f"  ({params})")
    header = f"  {'strategy':8s} {'total bytes':>12s} {'client bytes':>13s} {'makespan':>9s}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    results = {}
    for strategy in STRATEGIES:
        world = build_search_world(**params)
        results[strategy] = run_search(strategy, world)
    for strategy, r in results.items():
        print(f"  {strategy:8s} {r.total_bytes:>12,d} {r.client_link_bytes:>13,d}"
              f" {r.makespan:>8.3f}s")
    answers = {tuple(sorted(r.answer.items())) for r in results.values()}
    assert len(answers) == 1, "strategies disagreed!"
    print(f"  all strategies agree: {results['rpc'].answer}")


def main() -> None:
    print("distributed search: find the cheapest 'hot' record across stores")

    show(
        "light workload — tiny result sets (RPC's home turf)",
        n_servers=4, records_per_server=40, selectivity=0.05,
        blob_size=8, seed=5,
    )

    show(
        "heavy workload — large matching records (the agent's home turf)",
        n_servers=8, records_per_server=150, selectivity=0.4,
        blob_size=400, seed=5,
    )

    print(
        "\nreading: RPC hauls every matching record (blob and all) across\n"
        "the network; REV ships a small function and gets small answers\n"
        "back but keeps the client in the loop per server; the agent\n"
        "crosses the client's link exactly twice (launch + report), which\n"
        "is the Harrison et al. advantage the paper cites — and the light\n"
        "workload shows its limit."
    )


if __name__ == "__main__":
    main()

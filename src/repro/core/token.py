"""Capability tokens and protection-ring trust tiers.

The paper's bet is that access control is *front-loaded*: ``getProxy``
pays the policy decision once and the per-call path is a handful of local
checks.  PR 1 memoized the decision, but the warm path still consulted
shared state (the grant cache) on every re-bind, and every invocation
re-derived context from per-proxy attribute soup.  This module finishes
the job with two classic security patterns:

**CAPABILITY** — the sparse access matrix becomes a ticket.  At
``getProxy`` time the resource mints a compact, MAC-signed
:class:`CapabilityToken` carrying everything enforcement needs: grantee
identity, resource id, an enabled-method *bitmask*, expiry, and the
epoch pair it was minted under.  Re-binding (including after migration)
redeems the token with a pure-local O(1) check — bitmask, epoch compare,
confinement — touching no policy, no grant cache, no shared state beyond
two epoch cells.  The full :class:`~repro.core.access_protocol
.AccessProtocol` path runs only on epoch mismatch, token expiry, or
token absence.

**Revocation via epochs.**  Tokens are bearer-shaped, so revocation must
not depend on finding every outstanding copy.  Every grantee identity
and every resource carries a monotonic epoch counter here; tokens record
the values at mint time and fail closed the moment either moves.
``revoke_for``/``revoke_all``/``set_policy`` and agent retirement bump
the relevant epoch — one integer increment invalidates any number of
outstanding tokens, wherever they are.  A stale token is not an error:
the holder falls back to the full authorization path, which either
re-mints (innocuous bump) or denies (the policy changed underneath).

**PROTECTION RINGS** — trust tiers assigned at admission.  Ring 0
(trusted launcher) skips audit and metering bookkeeping it does not
need; ring 1 (verified) pays the standard checks; ring 2 (untrusted)
pays full mediation including a per-invocation audit trail.  The ring is
baked into the proxy's dispatch path once at instantiation — never
re-examined per call.  Supervision gates (bulkheads, quotas, deadlines)
apply to *every* ring: trust buys less bookkeeping, never fewer safety
interlocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.mac import HmacKey
from repro.errors import TokenInvalidError
from repro.obs import runtime as _obs

__all__ = [
    "RING_TRUSTED",
    "RING_VERIFIED",
    "RING_UNTRUSTED",
    "RING_NAMES",
    "EpochCell",
    "EpochRegistry",
    "CapabilityToken",
    "TokenAuthority",
    "default_epoch_registry",
    "default_token_authority",
    "reset_default_authority",
    "method_bits",
    "mask_of",
    "methods_of",
]

# -- protection rings --------------------------------------------------------

RING_TRUSTED = 0  # the launcher's own agents: minimal bookkeeping
RING_VERIFIED = 1  # verified credentials + trusted code: standard checks
RING_UNTRUSTED = 2  # carries code / unknown provenance: full mediation

RING_NAMES = {RING_TRUSTED: "ring0", RING_VERIFIED: "ring1", RING_UNTRUSTED: "ring2"}


# -- method bitmasks ---------------------------------------------------------


def method_bits(resource_cls: type) -> dict[str, int]:
    """``method name → single-bit mask`` over the exported interface.

    Bit positions follow :func:`~repro.core.resource.exported_methods`
    order, so the mapping is stable for a class's lifetime and identical
    on every server that loads the same class.  Cached on the class.
    """
    cached = resource_cls.__dict__.get("__method_bits__")
    if cached is None:
        from repro.core.resource import exported_methods

        cached = {
            name: 1 << index
            for index, name in enumerate(exported_methods(resource_cls))
        }
        resource_cls.__method_bits__ = cached
    return cached


def mask_of(resource_cls: type, methods) -> int:
    """The bitmask enabling exactly ``methods`` of ``resource_cls``."""
    bits = method_bits(resource_cls)
    mask = 0
    for name in methods:
        mask |= bits.get(name, 0)
    return mask


def methods_of(resource_cls: type, mask: int) -> frozenset[str]:
    """The method names a bitmask enables (inverse of :func:`mask_of`)."""
    return frozenset(
        name for name, bit in method_bits(resource_cls).items() if mask & bit
    )


def interface_digest(resource_cls: type) -> str:
    """A short stable digest of the class's exported interface.

    Baked into every token so a mask minted against one interface layout
    can never be misread against another (e.g. after a class was
    redefined with methods in a different order).
    """
    cached = resource_cls.__dict__.get("__iface_digest__")
    if cached is None:
        import hashlib

        from repro.core.resource import exported_methods

        blob = "\x1f".join(exported_methods(resource_cls)).encode()
        cached = hashlib.sha256(blob).hexdigest()[:16]
        resource_cls.__iface_digest__ = cached
    return cached


# -- epochs ------------------------------------------------------------------


class EpochCell:
    """One mutable epoch counter, shared by reference.

    Proxies and tokens hold the *cell*, not a snapshot: the hot-path
    staleness check is two attribute reads and an integer compare.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EpochCell({self.value})"


class EpochRegistry:
    """Per-holder and per-resource epoch counters.

    *Holder* epochs key on the grantee's stable identity (the agent URN,
    which survives migration — protection-domain ids do not), *resource*
    epochs on the resource URN.  Bumping either is O(1) revocation of
    every outstanding token minted under the old value: stale tokens
    fail closed into the full authorization path.

    The cell maps are softly bounded: past the cap, the oldest cells are
    dropped.  A proxy still holding a dropped cell simply goes stale at
    its next call (the registry hands out a fresh zero-valued cell with
    a different identity), re-validates, and re-mints — fail-closed by
    construction.
    """

    _CELL_CAP = 65536

    def __init__(self) -> None:
        self._holders: dict[str, EpochCell] = {}
        self._resources: dict[str, EpochCell] = {}

    def _cell(self, table: dict[str, EpochCell], key: str) -> EpochCell:
        cell = table.get(key)
        if cell is None:
            if len(table) >= self._CELL_CAP:
                for stale_key in list(table)[: self._CELL_CAP // 4]:
                    del table[stale_key]
            cell = table[key] = EpochCell()
        return cell

    def holder_cell(self, grantee: str) -> EpochCell:
        return self._cell(self._holders, grantee)

    def resource_cell(self, resource: str) -> EpochCell:
        return self._cell(self._resources, resource)

    def bump_holder(self, grantee: str) -> int:
        """Invalidate every outstanding token minted to ``grantee``."""
        cell = self._cell(self._holders, grantee)
        cell.value += 1
        if _obs.METRICS_ON:
            _obs.METRICS.inc("capability_epoch_bumps", kind="holder")
        return cell.value

    def bump_resource(self, resource: str) -> int:
        """Invalidate every outstanding token minted for ``resource``."""
        cell = self._cell(self._resources, resource)
        cell.value += 1
        if _obs.METRICS_ON:
            _obs.METRICS.inc("capability_epoch_bumps", kind="resource")
        return cell.value


_default_registry = EpochRegistry()


def default_epoch_registry() -> EpochRegistry:
    """The process-wide registry (one simulation per process is the norm)."""
    return _default_registry


# -- the token ---------------------------------------------------------------

_WIRE_VERSION = "cap1"
_TAG_SIZE = 32


@dataclass(frozen=True, slots=True)
class CapabilityToken:
    """A signed, self-describing grant: the sparse access matrix as a ticket.

    Everything the O(1) enforcement check consumes is in the token;
    nothing requires consulting the resource's policy, the grant cache,
    or the credential chain.  The MAC tag covers every field, so a token
    is tamper-evident end-to-end (it rides agent state across hops).
    """

    grantee: str  # the agent URN (stable across migration)
    resource: str  # the resource URN
    resource_kind: str  # resource class name (permission prefix)
    iface_digest: str  # digest of the interface layout the mask indexes
    mask: int  # enabled-method bitmask
    ring: int  # protection ring at mint time
    confine: bool  # identity-based capability confinement
    lease: float | None  # grant lifetime to apply on redemption
    issued_at: float
    expires_at: float | None  # token ttl (staleness bound, not the lease)
    holder_epoch: int
    resource_epoch: int
    tag: bytes  # HMAC over packed()

    def packed(self) -> bytes:
        """The canonical byte encoding the MAC covers."""
        return "|".join(
            (
                _WIRE_VERSION,
                self.grantee,
                self.resource,
                self.resource_kind,
                self.iface_digest,
                format(self.mask, "x"),
                str(self.ring),
                "1" if self.confine else "0",
                repr(self.lease),
                repr(self.issued_at),
                repr(self.expires_at),
                str(self.holder_epoch),
                str(self.resource_epoch),
            )
        ).encode()

    def to_wire(self) -> bytes:
        """Wire form: packed fields + the 32-byte tag (rides agent state)."""
        return self.packed() + self.tag

    @classmethod
    def from_wire(cls, data: bytes) -> "CapabilityToken":
        """Parse a wire token.  Raises :class:`TokenInvalidError` on junk.

        Parsing does **not** authenticate — the authority's
        :meth:`TokenAuthority.validate` checks the tag.
        """
        if not isinstance(data, (bytes, bytearray)) or len(data) <= _TAG_SIZE:
            raise TokenInvalidError("capability token wire form too short")
        packed, tag = bytes(data[:-_TAG_SIZE]), bytes(data[-_TAG_SIZE:])
        try:
            fields = packed.decode().split("|")
            (version, grantee, resource, kind, iface, mask_hex, ring,
             confine, lease, issued, expires, hepoch, repoch) = fields
            if version != _WIRE_VERSION:
                raise TokenInvalidError(
                    f"unsupported token version {version!r}"
                )
            token = cls(
                grantee=grantee,
                resource=resource,
                resource_kind=kind,
                iface_digest=iface,
                mask=int(mask_hex, 16),
                ring=int(ring),
                confine=confine == "1",
                lease=None if lease == "None" else float(lease),
                issued_at=float(issued),
                expires_at=None if expires == "None" else float(expires),
                holder_epoch=int(hepoch),
                resource_epoch=int(repoch),
                tag=tag,
            )
        except TokenInvalidError:
            raise
        except (ValueError, UnicodeDecodeError) as exc:
            raise TokenInvalidError(f"malformed capability token: {exc}") from exc
        if token.packed() != packed:
            # Non-canonical re-encoding would de-sync the MAC input.
            raise TokenInvalidError("capability token is not canonical")
        return token

    def permits(self, method_bit: int) -> bool:
        return bool(self.mask & method_bit)


class TokenAuthority:
    """Mints and validates capability tokens under one MAC key.

    One authority per trust domain (by default: per process, matching
    the one-simulation-per-process norm).  Validation has a **warm
    path**: a bounded map of recently verified ``tag → packed`` pairs
    turns repeat validation of the same token into one dict probe and a
    bytes compare (~100ns) instead of an HMAC (~1µs).  The pair is a
    sound cache key — the MAC is a deterministic function, so a
    (tag, packed) pair that verified once verifies forever.
    """

    _SEEN_MAX = 4096

    def __init__(
        self,
        key: bytes | None = None,
        *,
        ttl: float | None = 300.0,
        registry: EpochRegistry | None = None,
    ) -> None:
        if key is None:
            import os

            key = os.urandom(32)
        self._mac = HmacKey(key)
        #: Token time-to-live: a crypto-hygiene staleness bound, distinct
        #: from the grant's lease.  An expired token silently re-validates
        #: through the full path and re-mints; a lapsed lease raises.
        self.ttl = ttl
        self.registry = registry if registry is not None else _default_registry
        self._seen: dict[bytes, bytes] = {}
        self.stats = {
            "minted": 0,
            "validate_warm": 0,
            "validate_cold": 0,
            "stale_epoch": 0,
            "stale_expired": 0,
            "rejected": 0,
        }

    # -- minting ------------------------------------------------------------

    def mint(
        self,
        *,
        grantee: str,
        resource: str,
        resource_kind: str,
        iface_digest: str,
        mask: int,
        ring: int,
        confine: bool,
        lease: float | None,
        now: float,
    ) -> CapabilityToken:
        holder_epoch = self.registry.holder_cell(grantee).value
        resource_epoch = self.registry.resource_cell(resource).value
        expires_at = now + self.ttl if self.ttl is not None else None
        token = CapabilityToken(
            grantee=grantee,
            resource=resource,
            resource_kind=resource_kind,
            iface_digest=iface_digest,
            mask=mask,
            ring=ring,
            confine=confine,
            lease=lease,
            issued_at=now,
            expires_at=expires_at,
            holder_epoch=holder_epoch,
            resource_epoch=resource_epoch,
            tag=b"",
        )
        packed = token.packed()
        tag = self._mac.digest(packed)
        token = CapabilityToken(
            **{**_token_fields(token), "tag": tag}
        )
        self._remember(tag, packed)
        self.stats["minted"] += 1
        if _obs.METRICS_ON:
            _obs.METRICS.inc("capability_tokens_minted", resource=resource_kind)
        return token

    def _remember(self, tag: bytes, packed: bytes) -> None:
        seen = self._seen
        if len(seen) >= self._SEEN_MAX:
            for stale in list(seen)[: self._SEEN_MAX // 4]:
                del seen[stale]
        seen[tag] = packed

    # -- validation ---------------------------------------------------------

    def authenticate(self, token: CapabilityToken) -> bytes:
        """Check the tag only.  Returns the packed bytes on success.

        Warm path: a (tag, packed) pair this authority has verified (or
        minted) before skips the HMAC entirely.
        """
        packed = token.packed()
        if self._seen.get(token.tag) == packed:
            self.stats["validate_warm"] += 1
            return packed
        if not self._mac.verify(packed, token.tag):
            self.stats["rejected"] += 1
            if _obs.METRICS_ON:
                _obs.METRICS.inc("capability_tokens_rejected", reason="mac")
            raise TokenInvalidError(
                f"capability token for {token.resource} failed authentication"
            )
        self.stats["validate_cold"] += 1
        self._remember(token.tag, packed)
        return packed

    def is_fresh(self, token: CapabilityToken, now: float) -> bool:
        """The O(1) staleness check: epoch compare + ttl.

        ``False`` means *stale*, not invalid — the caller falls back to
        the full authorization path (which re-mints on success).
        """
        if (
            self.registry.holder_cell(token.grantee).value != token.holder_epoch
            or self.registry.resource_cell(token.resource).value
            != token.resource_epoch
        ):
            self.stats["stale_epoch"] += 1
            if _obs.METRICS_ON:
                _obs.METRICS.inc("capability_tokens_stale", reason="epoch")
            return False
        if token.expires_at is not None and now > token.expires_at:
            self.stats["stale_expired"] += 1
            if _obs.METRICS_ON:
                _obs.METRICS.inc("capability_tokens_stale", reason="expired")
            return False
        return True


def _token_fields(token: CapabilityToken) -> dict:
    return {
        name: getattr(token, name) for name in CapabilityToken.__slots__
    }


_default_authority: TokenAuthority | None = None


def default_token_authority() -> TokenAuthority:
    """The process-wide authority backing resources with no explicit one."""
    global _default_authority
    if _default_authority is None:
        _default_authority = TokenAuthority()
    return _default_authority


def reset_default_authority() -> None:
    """Drop the process authority (tests: forces a fresh MAC key)."""
    global _default_authority
    _default_authority = None

"""Usage metering, quotas and charging (section 5.5).

"One can embed usage-metering and accounting mechanisms in a proxy.  This
can be done either by counting the invocations of each method, possibly
assigning different costs to different methods, or by metering the
elapsed time for method execution and then basing the charges on it."

:class:`Meter` implements both: per-invocation tariffs (charged inside
the proxy's pre-check) and elapsed-time charging (the proxy reports each
call's duration).  Quotas — "usage limits and current usage" from the
domain database (section 5.3) — are enforced here too: exceeding a
method's limit raises :class:`~repro.errors.QuotaExceededError` *before*
the call reaches the resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Mapping

from repro.errors import QuotaExceededError

__all__ = ["Tariff", "Meter", "UsageReport"]


@dataclass(frozen=True, slots=True)
class Tariff:
    """Prices for using a resource."""

    per_call: tuple[tuple[str, float], ...] = ()  # (method, price)
    default_per_call: float = 0.0
    per_second: float = 0.0  # elapsed-time rate

    @classmethod
    def of(
        cls,
        per_call: Mapping[str, float] | None = None,
        *,
        default_per_call: float = 0.0,
        per_second: float = 0.0,
    ) -> "Tariff":
        return cls(
            per_call=tuple(sorted((per_call or {}).items())),
            default_per_call=default_per_call,
            per_second=per_second,
        )

    def price_of(self, method: str) -> float:
        return _price_map(self.per_call).get(method, self.default_per_call)

    @classmethod
    def free(cls) -> "Tariff":
        return cls()


@lru_cache(maxsize=1024)
def _price_map(per_call: tuple[tuple[str, float], ...]) -> dict[str, float]:
    """The tuple price list as an O(1) lookup (``price_of`` runs per call)."""
    return dict(per_call)


@dataclass(frozen=True, slots=True)
class UsageReport:
    """A bill: what one grantee did with one proxy."""

    grantee: str
    resource: str
    counts: tuple[tuple[str, int], ...]
    call_charges: float
    time_charges: float

    @property
    def total(self) -> float:
        return self.call_charges + self.time_charges

    def count_of(self, method: str) -> int:
        for name, count in self.counts:
            if name == method:
                return count
        return 0


class Meter:
    """Per-proxy usage accumulator with quota enforcement."""

    __slots__ = ("_tariff", "_quotas", "_counts", "_call_charges",
                 "_time_charges", "grantee", "resource", "_on_charge",
                 "_finalized")

    def __init__(
        self,
        *,
        grantee: str,
        resource: str,
        tariff: Tariff,
        quotas: Mapping[str, int] | None = None,
        on_charge: Callable[[str, float], None] | None = None,
    ) -> None:
        self._tariff = tariff
        self._quotas = dict(quotas or {})
        self._counts: dict[str, int] = {}
        self._call_charges = 0.0
        self._time_charges = 0.0
        self.grantee = grantee
        self.resource = resource
        self._on_charge = on_charge
        self._finalized = False

    @property
    def tariff(self) -> Tariff:
        """The (immutable) price schedule this meter charges against."""
        return self._tariff

    @property
    def time_metered(self) -> bool:
        """Whether calls must be timed (an elapsed-time rate is in force)."""
        return self._tariff.per_second > 0.0

    def charge_call(self, method: str) -> None:
        """Record one invocation; raises if it would exceed the quota."""
        if self._finalized:
            return
        used = self._counts.get(method, 0)
        limit = self._quotas.get(method)
        if limit is not None and used >= limit:
            raise QuotaExceededError(
                f"{self.grantee}: quota of {limit} exhausted for"
                f" {self.resource}.{method}",
                resource=self.resource,
                domain=self.grantee,
                method=method,
                limit=limit,
            )
        self._counts[method] = used + 1
        price = self._tariff.price_of(method)
        if price:
            self._call_charges += price
            if self._on_charge is not None:
                self._on_charge(method, price)

    def charge_elapsed(self, method: str, seconds: float) -> None:
        """Record a call's execution time for elapsed-time billing."""
        if self._finalized:
            return
        if seconds < 0:
            raise ValueError("elapsed time cannot be negative")
        cost = seconds * self._tariff.per_second
        if cost:
            self._time_charges += cost
            if self._on_charge is not None:
                self._on_charge(method, cost)

    @property
    def finalized(self) -> bool:
        """Whether the account is closed (revocation/kill swept it)."""
        return self._finalized

    def finalize(self) -> UsageReport:
        """Close the account: the final bill, after which charging stops.

        Called when the proxy is revoked (including runaway kills and
        lease sweeps) so a call still in flight cannot keep accruing —
        its eventual ``charge_elapsed`` in the proxy's ``finally`` block
        becomes a no-op instead of double-billing the swept partial
        charge.  Idempotent.
        """
        self._finalized = True
        return self.report()

    def remaining_quota(self, method: str) -> int | None:
        limit = self._quotas.get(method)
        if limit is None:
            return None
        return max(0, limit - self._counts.get(method, 0))

    def report(self) -> UsageReport:
        return UsageReport(
            grantee=self.grantee,
            resource=self.resource,
            counts=tuple(sorted(self._counts.items())),
            call_charges=self._call_charges,
            time_charges=self._time_charges,
        )

"""The ``AccessProtocol`` interface (Fig. 7) and its standard mixin.

Paper::

    public interface AccessProtocol {
        // The getProxy method returns a proxy object
        public Resource getProxy();
    }

Every application resource implements ``AccessProtocol`` — "typically by
simply inheriting" — and its ``get_proxy`` is the authorization point:
it consults the resource's security policy against the requesting agent's
credentials and manufactures an appropriately restricted proxy (Fig. 6,
step 4; the upcall runs on the requesting agent's thread).

The mixin also keeps the resource's table of issued proxies, which is
what makes section 5.5's management operations possible:
``revoke_all`` / ``revoke_for`` ("a resource manager can invalidate any
of its currently active proxies at any time it wishes") and dynamic
policy replacement ("security policies of such resources can be
dynamically modified by their owners", section 5.1).

**Binding fast path.**  Policy decisions are pure functions of
``(credential chain, policy version)``, so ``get_proxy`` memoizes them in
a bounded per-resource LRU keyed by the chain's canonical fingerprint and
:attr:`SecurityPolicy.version`.  ``set_policy`` flushes the cache and
``add_rule``/group mutations bump the version, so a stale grant can never
be served — re-binding after a policy change re-decides, exactly as
section 5.1 requires.  The issued-proxy table is a per-domain index of
*weak* references: revocation is O(proxies of that domain), and proxies
dropped by their agents are reclaimed by the collector instead of pinning
memory for the server's lifetime.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.core.accounting import Meter, Tariff
from repro.core.capability import current_domain_id
from repro.core.policy import ProxyGrant, SecurityPolicy
from repro.core.proxy import ResourceProxy, synthesize_proxy_class
from repro.core.resource import Resource
from repro.core.token import (
    RING_VERIFIED,
    CapabilityToken,
    default_epoch_registry,
    default_token_authority,
    interface_digest,
    methods_of,
)
from repro.credentials.cache import credential_fingerprint
from repro.credentials.delegation import DelegatedCredentials
from repro.errors import (
    AccessDeniedError,
    CapabilityConfinementError,
    PrivilegeError,
    ProxyRevokedError,
)
from repro.obs import runtime as _obs
from repro.util.audit import AuditLog
from repro.util.clock import Clock

__all__ = ["BindingContext", "AccessProtocol", "GRANT_CACHE_MAX"]

# Per-resource bound on memoized policy decisions.  Entries are small
# (a fingerprint key and a frozen ProxyGrant); the bound exists to cap
# adversarial credential churn, not ordinary populations.
GRANT_CACHE_MAX = 1024


@dataclass(frozen=True, slots=True)
class BindingContext:
    """Server-provided facts about the requesting domain.

    Constructed by the binding service (never by the agent), so the
    grantee identity baked into the proxy is trustworthy.
    """

    domain_id: str  # the requesting agent's protection domain
    clock: Clock
    server_domain_id: str = "server"
    audit: AuditLog | None = None
    on_charge: Callable[[str, float], None] | None = None  # accounting sink
    # The requesting domain's protection ring (trust tier), assigned at
    # admission.  Everything is ring 1 (verified) unless the server runs
    # an explicit RingPolicy — the default preserves uniform mediation.
    ring: int = RING_VERIFIED


class _ProxyBucket:
    """One domain's issued proxies: weak refs plus an issuance count.

    ``refs`` holds only *live* proxies (a weakref callback prunes each
    one the moment its agent drops it — the old strong-ref table leaked
    every proxy ever issued).  ``tracked`` counts issuances not yet
    covered by a revocation, so ``revoke_for``/``revoke_all`` report the
    number of grants invalidated whether or not the proxy objects still
    exist.
    """

    __slots__ = ("tracked", "refs", "holders")

    def __init__(self) -> None:
        self.tracked = 0
        self.refs: list[weakref.ref[ResourceProxy]] = []
        # Agent URNs granted under this domain — the epoch keys to bump
        # on revocation, so *tokens* that rode away with dropped proxies
        # die too, not just the live proxy objects.
        self.holders: set[str] = set()

    def add(self, proxy: ResourceProxy) -> None:
        self.tracked += 1
        refs = self.refs

        def reap(ref: weakref.ref, _refs: list = refs) -> None:
            try:
                _refs.remove(ref)
            except ValueError:
                pass  # already pruned by revoke_for/revoke_all

        refs.append(weakref.ref(proxy, reap))

    def live(self) -> list[ResourceProxy]:
        return [proxy for ref in list(self.refs) if (proxy := ref()) is not None]


class AccessProtocol:
    """Mixin providing the standard ``get_proxy`` implementation."""

    def init_access_protocol(
        self,
        policy: SecurityPolicy,
        *,
        tariff: Tariff | None = None,
        admin_domains: tuple[str, ...] = (),
    ) -> None:
        """Set up policy, tariff and proxy bookkeeping.

        Called explicitly from the resource's ``__init__`` (alongside
        ``ResourceImpl.__init__``), mirroring the two interfaces of Fig. 4.
        """
        self._policy = policy
        self._tariff = tariff if tariff is not None else Tariff.free()
        self._extra_admin_domains = frozenset(admin_domains)
        # domain id -> its issued-proxy bucket (weak refs + issue count).
        self._issued: dict[str, _ProxyBucket] = {}
        # Union of every admin set proxies were issued with; gates the
        # management operations even when the proxies themselves have
        # been garbage-collected (weak refs don't keep them alive).
        self._proxy_admin_domains: frozenset[str] = self._extra_admin_domains
        # (credential fingerprint, policy version) -> ProxyGrant, LRU.
        self._grant_cache: OrderedDict[tuple, ProxyGrant] = OrderedDict()
        self._grant_hits = 0
        self._grant_misses = 0
        # Duck-typed ResourceGuard from repro.server.supervisor (core has
        # no import edge to server/).  None = unsupervised: proxies take
        # the plain fast path and grants carry no default lease.
        self._supervision = None

    def install_supervision(self, guard) -> None:
        """Attach (or with ``None`` detach) this resource's guard.

        Called by the registry when a supervising server registers or
        unregisters the resource.  Affects proxies issued afterwards;
        already-issued proxies keep the guard they were born with.
        """
        self._supervision = guard

    # -- the memoized policy decision -----------------------------------------

    def _grant_for(self, credentials: DelegatedCredentials) -> ProxyGrant:
        """``self._policy.decide`` behind the bounded grant cache."""
        key = (credential_fingerprint(credentials), self._policy.version)
        cache = self._grant_cache
        grant = cache.get(key)
        if grant is not None:
            cache.move_to_end(key)
            self._grant_hits += 1
            return grant
        self._grant_misses += 1
        grant = self._policy.decide(self, credentials)
        cache[key] = grant
        while len(cache) > GRANT_CACHE_MAX:
            cache.popitem(last=False)
        return grant

    def flush_grant_cache(self) -> None:
        """Drop memoized policy decisions (future bindings re-decide)."""
        self._grant_cache.clear()

    def grant_cache_stats(self) -> dict[str, int]:
        """Hit/miss counters for benchmarks and invalidation tests."""
        return {
            "hits": self._grant_hits,
            "misses": self._grant_misses,
            "size": len(self._grant_cache),
        }

    # -- Fig. 7: the resource access interface ---------------------------------

    def get_proxy(
        self, credentials: DelegatedCredentials, context: BindingContext
    ) -> Resource:
        """Authorize and manufacture a proxy for the requesting agent.

        Raises :class:`AccessDeniedError` when the policy (or the agent's
        delegated rights) leaves nothing enabled.

        When tracing is on this is the Fig. 6 **step 4** span
        (``protocol.get_proxy``): a refusal closes it with status
        ``error`` carrying the deny reason and the ids of the policy
        rules that matched-but-granted-nothing (empty = default-deny).
        """
        if _obs.TRACING:
            with _obs.TRACER.span(
                "protocol.get_proxy",
                resource_type=type(self).__name__,
                domain=context.domain_id,
                agent=str(credentials.agent),
            ) as span:
                return self._issue_proxy(credentials, context, span)
        return self._issue_proxy(credentials, context, None)

    def _issue_proxy(
        self,
        credentials: DelegatedCredentials,
        context: BindingContext,
        span,
    ) -> Resource:
        grant = self._grant_for(credentials)
        target = type(self).__name__
        if not grant.enabled:
            reason = grant.deny_reason()
            if span is not None:
                span.set_attribute("deny_rules", list(grant.matched_rules))
                span.set_status("error", reason)
            if _obs.METRICS_ON:
                _obs.METRICS.inc("proxy_grants_denied", resource=target)
            if context.audit is not None:
                context.audit.record(
                    context.domain_id, "resource.get_proxy", target, False,
                    reason,
                )
            raise AccessDeniedError(
                f"{credentials.agent} is not granted any access to {target}"
            )
        if span is not None:
            span.set_attribute("enabled_methods", len(grant.enabled))
            span.set_attribute("matched_rules", list(grant.matched_rules))
        guard = self._supervision
        if guard is not None:
            # Admission control at issue time: a domain hoarding grants
            # of one resource is shed here, before a proxy exists.
            bucket = self._issued.get(context.domain_id)
            held = len(bucket.refs) if bucket is not None else 0
            guard.admit_grant(context.domain_id, held)
        meter = None
        if grant.metered:
            meter = Meter(
                grantee=context.domain_id,
                resource=target,
                tariff=self._tariff,
                quotas=dict(grant.quotas),
                on_charge=context.on_charge,
            )
        proxy_cls = synthesize_proxy_class(type(self))
        proxy = proxy_cls(
            self,
            grant,
            context,
            meter=meter,
            admin_domains=self._extra_admin_domains
            | {context.server_domain_id},
            supervision=guard,
            lease_duration=guard.lease_duration if guard is not None else None,
        )
        grantee_urn = str(credentials.agent)
        bucket = self._issued.get(context.domain_id)
        if bucket is None:
            bucket = self._issued[context.domain_id] = _ProxyBucket()
        bucket.add(proxy)
        bucket.holders.add(grantee_urn)
        if context.server_domain_id not in self._proxy_admin_domains:
            self._proxy_admin_domains |= {context.server_domain_id}
        if not grant.metered:
            # Mint the signed capability backing this grant.  Metered
            # grants get none: the meter's billing state lives server-side
            # and cannot ride in a bearer token, so metered re-binds always
            # take the full path.
            self._attach_token(proxy, grantee_urn, credentials, context)
        if _obs.METRICS_ON:
            _obs.METRICS.inc("proxy_grants_issued", resource=target)
        if context.audit is not None:
            context.audit.record(
                context.domain_id, "resource.get_proxy", target, True,
                f"enabled={len(grant.enabled)} methods",
            )
        return proxy

    # -- capability tokens (O(1) warm-path enforcement) -------------------------

    def _resource_token_id(self) -> str:
        """The stable identity tokens (and epoch cells) key on."""
        rid = getattr(self, "_token_rid", None)
        if rid is None:
            name = getattr(self, "_name", None)
            rid = (
                str(name)
                if name is not None
                else f"{type(self).__name__}@{id(self):x}"
            )
            self._token_rid = rid
        return rid

    def _attach_token(
        self,
        proxy: ResourceProxy,
        grantee_urn: str,
        credentials: DelegatedCredentials,
        context: BindingContext,
    ) -> None:
        authority = default_token_authority()
        resource_id = self._resource_token_id()
        token = authority.mint(
            grantee=grantee_urn,
            resource=resource_id,
            resource_kind=type(self).__name__,
            iface_digest=interface_digest(type(self)),
            mask=proxy._mask,
            ring=context.ring,
            confine=proxy._confine,
            lease=proxy._lease_duration,
            now=context.clock.now(),
        )
        registry = authority.registry
        proxy._token = token
        proxy._hcell = registry.holder_cell(grantee_urn)
        proxy._rcell = registry.resource_cell(resource_id)
        proxy._credentials = credentials
        proxy._refresh = _refresh_proxy_token

    def redeem_token(
        self,
        token: CapabilityToken,
        credentials: DelegatedCredentials,
        context: BindingContext,
    ) -> Resource:
        """Re-bind from a capability token: the O(1) warm path.

        A fresh, authentic token manufactures a proxy directly from its
        own fields — bitmask, confinement, lease — with **no policy
        consult and no grant-cache lookup**.  A stale token (epoch moved,
        ttl elapsed) or one minted for a different resource/interface
        falls back to :meth:`get_proxy`, which re-decides and re-mints.
        A token presented by anyone but its grantee fails closed
        (confinement: capabilities here are identity-based, section 5.5);
        a token whose MAC does not verify is rejected outright.
        """
        target = type(self).__name__
        if str(credentials.agent) != token.grantee:
            if _obs.METRICS_ON:
                _obs.METRICS.inc(
                    "capability_redeem_misses", resource=target, reason="theft"
                )
            if context.audit is not None:
                context.audit.record(
                    context.domain_id, "resource.redeem_token", target, False,
                    f"token grantee is {token.grantee}, presenter is"
                    f" {credentials.agent}",
                )
            raise CapabilityConfinementError(
                f"capability token for {token.resource} presented by"
                f" {credentials.agent}, but granted to {token.grantee}",
                resource=target,
                domain=context.domain_id,
            )
        authority = default_token_authority()
        authority.authenticate(token)  # TokenInvalidError on tamper
        if (
            token.resource_kind != target
            or token.resource != self._resource_token_id()
            or token.iface_digest != interface_digest(type(self))
            or not authority.is_fresh(token, context.clock.now())
        ):
            if _obs.METRICS_ON:
                _obs.METRICS.inc(
                    "capability_redeem_misses", resource=target, reason="stale"
                )
            return self.get_proxy(credentials, context)
        guard = self._supervision
        if guard is not None:
            # Trust never bypasses admission control: redeemed grants
            # count against the same per-domain quota as fresh ones.
            bucket = self._issued.get(context.domain_id)
            held = len(bucket.refs) if bucket is not None else 0
            guard.admit_grant(context.domain_id, held)
        grant = ProxyGrant(
            enabled=methods_of(type(self), token.mask),
            lifetime=token.lease,
            confine=token.confine,
            metered=False,
            matched_rules=("capability-token",),
        )
        proxy_cls = synthesize_proxy_class(type(self))
        proxy = proxy_cls(
            self,
            grant,
            context,
            meter=None,
            admin_domains=self._extra_admin_domains
            | {context.server_domain_id},
            supervision=guard,
            lease_duration=guard.lease_duration if guard is not None else None,
        )
        registry = authority.registry
        proxy._token = token
        proxy._hcell = registry.holder_cell(token.grantee)
        proxy._rcell = registry.resource_cell(token.resource)
        proxy._credentials = credentials
        proxy._refresh = _refresh_proxy_token
        bucket = self._issued.get(context.domain_id)
        if bucket is None:
            bucket = self._issued[context.domain_id] = _ProxyBucket()
        bucket.add(proxy)
        bucket.holders.add(token.grantee)
        if context.server_domain_id not in self._proxy_admin_domains:
            self._proxy_admin_domains |= {context.server_domain_id}
        if _obs.METRICS_ON:
            _obs.METRICS.inc("capability_redeem_hits", resource=target)
        if context.audit is not None:
            context.audit.record(
                context.domain_id, "resource.redeem_token", target, True,
                f"mask={token.mask:#x}",
            )
        return proxy

    # -- section 5.5 management operations -----------------------------------------

    def _check_manage(self, operation: str) -> None:
        """Gate a management operation on the proxy-admin domains.

        Mirrors the per-proxy privileged check (each live proxy still
        enforces its own admin set in ``revoke``), but also covers the
        case where every proxy of a domain has been collected: revocation
        authority must not depend on whether the agent dropped its
        references.  No-op when nothing was ever issued (there is nothing
        to manage, matching the pre-index behavior of an empty table).
        """
        if not self._issued:
            return
        caller = current_domain_id()
        if caller not in self._proxy_admin_domains:
            raise PrivilegeError(
                f"resource operation {operation!r} requires an admin domain,"
                f" caller is {caller!r}"
            )

    def issued_proxies(self) -> tuple[ResourceProxy, ...]:
        """The currently *live* proxies (collected ones are gone)."""
        return tuple(
            proxy
            for bucket in self._issued.values()
            for proxy in bucket.live()
        )

    def revoke_all(self) -> int:
        """Invalidate every issued grant; returns how many.

        The count covers every issuance not already revoked, including
        proxies whose agents dropped them (their grant is invalidated all
        the same); only the still-live proxy objects need flipping.
        """
        self._check_manage("revoke_all")
        count = 0
        for bucket in self._issued.values():
            for proxy in bucket.live():
                proxy.revoke()  # PrivilegeError leaves the index intact
            count += bucket.tracked
        if count:
            # One resource-epoch bump kills every outstanding token for
            # this resource — including copies that migrated away with
            # agents whose proxy objects are long collected.
            default_epoch_registry().bump_resource(self._resource_token_id())
        self._issued.clear()
        return count

    def revoke_for(self, domain_id: str) -> int:
        """Invalidate the grants issued to one protection domain.

        O(proxies of that domain): the per-domain index replaces the old
        scan over every proxy ever issued.
        """
        self._check_manage("revoke_for")
        bucket = self._issued.get(domain_id)
        if bucket is None:
            return 0
        for proxy in bucket.live():
            proxy.revoke()  # PrivilegeError leaves the index intact
        registry = default_epoch_registry()
        for holder in bucket.holders:
            # Tokens are keyed by the *agent's* stable identity, so this
            # also invalidates copies carried to other servers.  A holder
            # epoch bump is deliberately broad (all of that agent's
            # tokens): innocent ones transparently re-validate and
            # re-mint at their next use.
            registry.bump_holder(holder)
        del self._issued[domain_id]
        return bucket.tracked

    def set_policy(self, policy: SecurityPolicy) -> None:
        """Replace the security policy.

        Future grants re-decide (the grant cache is flushed) and every
        outstanding capability token goes stale via a resource-epoch
        bump: at its next use each holder transparently re-validates
        against the *new* policy — re-minting if still granted, revoked
        if not.  Live proxies keep their already-issued grants, exactly
        as before ("affects future grants"), but token-carried authority
        is re-checked.
        """
        self._policy = policy
        self._grant_cache.clear()
        default_epoch_registry().bump_resource(self._resource_token_id())

    @property
    def policy(self) -> SecurityPolicy:
        return self._policy

    @property
    def tariff(self) -> Tariff:
        return self._tariff


def _refresh_proxy_token(proxy: ResourceProxy, method: str) -> None:
    """Stale-token fallback: re-validate through the full path, in place.

    Installed on every tokened proxy; invoked from ``_precheck`` when the
    token's epochs no longer match or its ttl elapsed.  Re-runs the
    policy decision (usually a grant-cache hit) under the proxy's stored
    credentials:

    * still granted → adopt the (possibly narrower) fresh grant and mint
      a new token — the call proceeds under the *new* authority;
    * denied, or newly metered → the proxy is revoked and the call fails
      closed with :class:`ProxyRevokedError` (a meter cannot be conjured
      mid-grant; the holder must re-bind through ``get_proxy``).
    """
    resource = proxy._ref
    credentials = proxy._credentials
    old = proxy._token
    if _obs.METRICS_ON:
        _obs.METRICS.inc(
            "capability_tokens_refreshed", resource=proxy._target_name
        )
    grant = resource._grant_for(credentials)
    if not grant.enabled or grant.metered:
        proxy._revoked = True
        proxy._token = None
        if proxy._meter is not None:
            proxy._meter.finalize()
        proxy._deny(method, "token_stale_denied")
        raise ProxyRevokedError(
            f"grant for {proxy._target_name} was revoked out from under its"
            f" capability token",
            resource=proxy._target_name,
            domain=proxy._grantee,
            method=method,
        )
    proxy._enabled = set(grant.enabled)
    bits = proxy._method_bits
    mask = 0
    for name in proxy._enabled:
        mask |= bits.get(name, 0)
    proxy._mask = mask
    proxy._confine = grant.confine
    authority = default_token_authority()
    registry = authority.registry
    proxy._token = authority.mint(
        grantee=old.grantee,
        resource=old.resource,
        resource_kind=old.resource_kind,
        iface_digest=old.iface_digest,
        mask=mask,
        ring=proxy._ring,
        confine=grant.confine,
        lease=proxy._lease_duration,
        now=proxy._clock.now(),
    )
    # Re-fetch the cells: the registry may have recycled them (soft cap).
    proxy._hcell = registry.holder_cell(old.grantee)
    proxy._rcell = registry.resource_cell(old.resource)

"""The ``AccessProtocol`` interface (Fig. 7) and its standard mixin.

Paper::

    public interface AccessProtocol {
        // The getProxy method returns a proxy object
        public Resource getProxy();
    }

Every application resource implements ``AccessProtocol`` — "typically by
simply inheriting" — and its ``get_proxy`` is the authorization point:
it consults the resource's security policy against the requesting agent's
credentials and manufactures an appropriately restricted proxy (Fig. 6,
step 4; the upcall runs on the requesting agent's thread).

The mixin also keeps the resource's table of issued proxies, which is
what makes section 5.5's management operations possible:
``revoke_all`` / ``revoke_for`` ("a resource manager can invalidate any
of its currently active proxies at any time it wishes") and dynamic
policy replacement ("security policies of such resources can be
dynamically modified by their owners", section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.accounting import Meter, Tariff
from repro.core.policy import SecurityPolicy
from repro.core.proxy import ResourceProxy, synthesize_proxy_class
from repro.core.resource import Resource
from repro.credentials.delegation import DelegatedCredentials
from repro.errors import AccessDeniedError
from repro.util.audit import AuditLog
from repro.util.clock import Clock

__all__ = ["BindingContext", "AccessProtocol"]


@dataclass(frozen=True, slots=True)
class BindingContext:
    """Server-provided facts about the requesting domain.

    Constructed by the binding service (never by the agent), so the
    grantee identity baked into the proxy is trustworthy.
    """

    domain_id: str  # the requesting agent's protection domain
    clock: Clock
    server_domain_id: str = "server"
    audit: AuditLog | None = None
    on_charge: Callable[[str, float], None] | None = None  # accounting sink


class AccessProtocol:
    """Mixin providing the standard ``get_proxy`` implementation."""

    def init_access_protocol(
        self,
        policy: SecurityPolicy,
        *,
        tariff: Tariff | None = None,
        admin_domains: tuple[str, ...] = (),
    ) -> None:
        """Set up policy, tariff and proxy bookkeeping.

        Called explicitly from the resource's ``__init__`` (alongside
        ``ResourceImpl.__init__``), mirroring the two interfaces of Fig. 4.
        """
        self._policy = policy
        self._tariff = tariff if tariff is not None else Tariff.free()
        self._extra_admin_domains = frozenset(admin_domains)
        self._issued: list[tuple[str, ResourceProxy]] = []

    # -- Fig. 7: the resource access interface ---------------------------------

    def get_proxy(
        self, credentials: DelegatedCredentials, context: BindingContext
    ) -> Resource:
        """Authorize and manufacture a proxy for the requesting agent.

        Raises :class:`AccessDeniedError` when the policy (or the agent's
        delegated rights) leaves nothing enabled.
        """
        grant = self._policy.decide(self, credentials)
        target = type(self).__name__
        if not grant.enabled:
            if context.audit is not None:
                context.audit.record(
                    context.domain_id, "resource.get_proxy", target, False,
                    "policy grants nothing",
                )
            raise AccessDeniedError(
                f"{credentials.agent} is not granted any access to {target}"
            )
        meter = None
        if grant.metered:
            meter = Meter(
                grantee=context.domain_id,
                resource=target,
                tariff=self._tariff,
                quotas=dict(grant.quotas),
                on_charge=context.on_charge,
            )
        proxy_cls = synthesize_proxy_class(type(self))
        proxy = proxy_cls(
            self,
            grant,
            context,
            meter=meter,
            admin_domains=self._extra_admin_domains
            | {context.server_domain_id},
        )
        self._issued.append((context.domain_id, proxy))
        if context.audit is not None:
            context.audit.record(
                context.domain_id, "resource.get_proxy", target, True,
                f"enabled={len(grant.enabled)} methods",
            )
        return proxy

    # -- section 5.5 management operations -----------------------------------------

    def issued_proxies(self) -> tuple[ResourceProxy, ...]:
        return tuple(proxy for _, proxy in self._issued)

    def revoke_all(self) -> int:
        """Invalidate every proxy ever issued; returns how many."""
        count = 0
        for _, proxy in self._issued:
            proxy.revoke()
            count += 1
        self._issued.clear()
        return count

    def revoke_for(self, domain_id: str) -> int:
        """Invalidate the proxies granted to one protection domain."""
        count = 0
        remaining: list[tuple[str, ResourceProxy]] = []
        for grantee, proxy in self._issued:
            if grantee == domain_id:
                proxy.revoke()
                count += 1
            else:
                remaining.append((grantee, proxy))
        self._issued = remaining
        return count

    def set_policy(self, policy: SecurityPolicy) -> None:
        """Replace the security policy (affects future grants only)."""
        self._policy = policy

    @property
    def policy(self) -> SecurityPolicy:
        return self._policy

    @property
    def tariff(self) -> Tariff:
        return self._tariff

"""The wrapper approach (section 5.4, third design).

"Each resource is protected by encapsulating it in a wrapper object.
The agent only has references to these wrappers and cannot bypass them to
access resources directly.  The wrapper accepts requests for the resource
and determines whether or not to allow the access based on the client's
identity.  For this it needs to maintain an access control list."

Contrast with proxies (and the point benchmark F5 measures): there is
**one** wrapper per resource shared by all clients, so the ACL must be
consulted — identity resolved, entries scanned, delegated rights
re-evaluated — on **every** call, whereas a proxy front-loads that work
into ``get_proxy`` and leaves a set-membership test on the call path.
The paper also notes the wrapper's openness problem: "the identities of
all potential clients may not be known beforehand".
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Any, Callable

from repro.core.resource import Resource, exported_methods, permission_for
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.errors import AccessDeniedError, PrivilegeError
from repro.sandbox.domain import current_domain
from repro.util.audit import AuditLog

__all__ = ["AccessControlList", "ACLWrapper", "wrap_resource"]


@dataclass(frozen=True, slots=True)
class AclEntry:
    subject_kind: str  # "owner" | "agent" | "any"
    subject: str  # glob over the principal URN
    grant: Rights


class AccessControlList:
    """An ordered list of (subject pattern → rights) entries."""

    def __init__(self) -> None:
        self._entries: list[AclEntry] = []

    def allow(self, subject_kind: str, subject: str, grant: Rights) -> "AccessControlList":
        if subject_kind not in ("owner", "agent", "any"):
            raise ValueError(f"unknown ACL subject kind {subject_kind!r}")
        self._entries.append(AclEntry(subject_kind, subject, grant))
        return self

    def __len__(self) -> int:
        return len(self._entries)

    def permits(self, credentials: DelegatedCredentials, permission: str) -> bool:
        """Full evaluation, performed on every wrapper call."""
        for entry in self._entries:
            if entry.subject_kind == "any":
                matched = True
            elif entry.subject_kind == "owner":
                matched = fnmatchcase(str(credentials.owner), entry.subject)
            else:
                matched = fnmatchcase(str(credentials.agent), entry.subject)
            if matched and entry.grant.permits(permission):
                # The owner's delegation still gates, as everywhere.
                return credentials.effective_rights().permits(permission)
        return False


class ACLWrapper(Resource):
    """The single shared guard object in front of one resource."""

    __slots__ = ("_ref", "_acl", "_audit", "_forwards", "_permissions", "_target_name")

    def __init__(
        self,
        resource: Resource,
        acl: AccessControlList,
        audit: AuditLog | None = None,
    ) -> None:
        self._ref = resource
        self._acl = acl
        self._audit = audit
        self._target_name = type(resource).__name__
        self._forwards: dict[str, Callable[..., Any]] = {
            name: getattr(resource, name)
            for name in exported_methods(type(resource))
        }
        self._permissions = {
            name: permission_for(type(resource), name) for name in self._forwards
        }

    def _percall_check(self, method: str) -> None:
        domain = current_domain()
        if domain is None or domain.credentials is None:
            raise PrivilegeError(
                f"wrapper for {self._target_name}: caller has no credentials"
            )
        permission = self._permissions[method]
        if not self._acl.permits(domain.credentials, permission):
            if self._audit is not None:
                self._audit.record(
                    domain.domain_id, "wrapper.invoke", permission, False, "ACL deny"
                )
            raise AccessDeniedError(
                f"ACL denies {domain.credentials.agent} permission {permission}"
            )


def _make_wrapper_forwarder(method: str) -> Callable[..., Any]:
    def forwarder(self: ACLWrapper, *args: Any, **kwargs: Any) -> Any:
        self._percall_check(method)
        return self._forwards[method](*args, **kwargs)

    forwarder.__name__ = method
    return forwarder


_wrapper_class_cache: dict[type, type] = {}


def wrap_resource(
    resource: Resource, acl: AccessControlList, audit: AuditLog | None = None
) -> ACLWrapper:
    """Build the (cached-per-class) wrapper type and wrap ``resource``."""
    resource_cls = type(resource)
    wrapper_cls = _wrapper_class_cache.get(resource_cls)
    if wrapper_cls is None:
        namespace = {
            name: _make_wrapper_forwarder(name)
            for name in exported_methods(resource_cls)
        }
        namespace["__slots__"] = ()
        wrapper_cls = type(
            f"{resource_cls.__name__}Wrapper", (ACLWrapper,), namespace
        )
        _wrapper_class_cache[resource_cls] = wrapper_cls
    return wrapper_cls(resource, acl, audit)

"""The extend-the-security-manager approach (section 5.4, first design).

"One approach would be to check all resource accesses using the security
manager.  This would require each resource developer to extend or modify
the security manager. ... the security manager may tend to become an
excessively large module and that could raise the potential for
introducing errors during extensions."

:class:`AppSecurityManager` models exactly that: every resource's policy
is *installed into one central manager*, and each access re-evaluates the
matching policy there.  The architectural cost the paper warns about
becomes measurable: the manager's policy table grows with every installed
resource, the per-check work grows with rule count (benchmark F5 sweeps
this), and policy isolation is gone — one module sees everything.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.policy import SecurityPolicy
from repro.core.resource import Resource, exported_methods, permission_for
from repro.errors import AccessDeniedError, PrivilegeError
from repro.sandbox.domain import current_domain
from repro.sandbox.security_manager import SecurityManager
from repro.util.audit import AuditLog

__all__ = ["AppSecurityManager", "SecManCheckedResource", "guard_resource"]


class AppSecurityManager(SecurityManager):
    """A security manager bloated with application-level policies."""

    def __init__(self, server_domain, audit: AuditLog) -> None:
        super().__init__(server_domain, audit)
        self._app_policies: dict[str, SecurityPolicy] = {}
        self._audit_app = audit

    def install_app_policy(self, resource_kind: str, policy: SecurityPolicy) -> None:
        """What every resource developer must do under this design."""
        self._app_policies[resource_kind] = policy

    @property
    def installed_policies(self) -> int:
        return len(self._app_policies)

    def check_app_access(self, resource: Resource, method: str) -> None:
        """The per-call check: resolve identity, find the policy, evaluate."""
        domain = current_domain()
        if domain is not None and domain.is_server:
            return  # server code is trusted
        if domain is None or domain.credentials is None:
            raise PrivilegeError("resource access outside any credentialed domain")
        kind = type(resource).__name__
        policy = self._app_policies.get(kind)
        if policy is None:
            self._audit_app.record(
                domain.domain_id, "secman.app_access",
                f"{kind}.{method}", False, "no policy installed",
            )
            raise AccessDeniedError(f"no policy installed for {kind}")
        # Full policy evaluation on EVERY call — the design's defining cost.
        grant = policy.decide(resource, domain.credentials)
        if method not in grant.enabled:
            self._audit_app.record(
                domain.domain_id, "secman.app_access",
                f"{kind}.{method}", False, "policy deny",
            )
            raise AccessDeniedError(
                f"{domain.credentials.agent} denied {permission_for(type(resource), method)}"
            )


class SecManCheckedResource(Resource):
    """A resource whose every method defers to the central manager."""

    __slots__ = ("_ref", "_manager", "_forwards")

    def __init__(self, resource: Resource, manager: AppSecurityManager) -> None:
        self._ref = resource
        self._manager = manager
        self._forwards: dict[str, Callable[..., Any]] = {
            name: getattr(resource, name)
            for name in exported_methods(type(resource))
        }


def _make_checked_forwarder(method: str) -> Callable[..., Any]:
    def forwarder(self: SecManCheckedResource, *args: Any, **kwargs: Any) -> Any:
        self._manager.check_app_access(self._ref, method)
        return self._forwards[method](*args, **kwargs)

    forwarder.__name__ = method
    return forwarder


_checked_class_cache: dict[type, type] = {}


def guard_resource(
    resource: Resource, manager: AppSecurityManager
) -> SecManCheckedResource:
    """Front ``resource`` with central-manager checks on every method."""
    resource_cls = type(resource)
    checked_cls = _checked_class_cache.get(resource_cls)
    if checked_cls is None:
        namespace = {
            name: _make_checked_forwarder(name)
            for name in exported_methods(resource_cls)
        }
        namespace["__slots__"] = ()
        checked_cls = type(
            f"{resource_cls.__name__}SecManChecked",
            (SecManCheckedResource,),
            namespace,
        )
        _checked_class_cache[resource_cls] = checked_cls
    return checked_cls(resource, manager)

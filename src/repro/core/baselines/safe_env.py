"""The Safe-Tcl two-environment approach (section 5.4, fourth design).

"Another approach, exemplified by Safe Tcl, is to use two execution
environments — a safe one which hosts the agent, and a more powerful
trusted one which provides access to resources.  Whenever the agent calls
a potentially dangerous operation, the safe environment acts as a monitor
and screens the request based on its security policy. ... it can incur
substantial overhead because it may require a transition across
system-level protection domains on every resource access."

The domain transition is modeled mechanistically, not with a fudge
factor: arguments and results are **marshalled through the canonical
serializer** at the boundary (crossing a protection domain means the two
sides share no object graph), and the safe side re-evaluates its policy
on every operation.  Benchmark F5 shows what that costs relative to a
proxy's pass-through.
"""

from __future__ import annotations

from typing import Any

from repro.core.policy import SecurityPolicy
from repro.core.resource import Resource, exported_methods, permission_for
from repro.errors import AccessDeniedError, PrivilegeError, UnknownNameError
from repro.sandbox.domain import current_domain
from repro.util.audit import AuditLog
from repro.util.serialization import decode, encode

__all__ = ["TrustedEnvironment", "SafeEnvironment"]


class TrustedEnvironment:
    """The powerful side: holds real resources, speaks only in bytes."""

    def __init__(self) -> None:
        self._resources: dict[str, Resource] = {}

    def install(self, name: str, resource: Resource) -> None:
        self._resources[name] = resource

    def perform(self, name: str, method: str, args_blob: bytes) -> bytes:
        """Execute one marshalled operation and marshal the result back."""
        resource = self._resources.get(name)
        if resource is None:
            raise UnknownNameError(f"trusted environment has no resource {name!r}")
        if method not in exported_methods(type(resource)):
            raise AccessDeniedError(
                f"{type(resource).__name__} does not export {method!r}"
            )
        args = decode(args_blob)
        result = getattr(resource, method)(*args)
        return encode(result)

    def resource_kind(self, name: str) -> type:
        resource = self._resources.get(name)
        if resource is None:
            raise UnknownNameError(f"trusted environment has no resource {name!r}")
        return type(resource)

    def resource_object(self, name: str) -> Resource:
        return self._resources[name]


class SafeEnvironment:
    """The agent-facing side: screens, then crosses the boundary."""

    def __init__(
        self,
        trusted: TrustedEnvironment,
        audit: AuditLog | None = None,
    ) -> None:
        self._trusted = trusted
        self._policies: dict[str, SecurityPolicy] = {}
        self._audit = audit

    def set_policy(self, resource_name: str, policy: SecurityPolicy) -> None:
        self._policies[resource_name] = policy

    def invoke(self, resource_name: str, method: str, *args: Any) -> Any:
        """The monitored call path: screen → marshal → cross → unmarshal."""
        domain = current_domain()
        if domain is None or domain.credentials is None:
            raise PrivilegeError("safe-environment call outside any credentialed domain")
        policy = self._policies.get(resource_name)
        if policy is None:
            raise AccessDeniedError(f"no policy for {resource_name!r}")
        resource = self._trusted.resource_object(resource_name)
        # Screening: full policy evaluation per operation.
        grant = policy.decide(resource, domain.credentials)
        if method not in grant.enabled:
            if self._audit is not None:
                self._audit.record(
                    domain.domain_id, "safeenv.invoke",
                    permission_for(type(resource), method), False, "screened",
                )
            raise AccessDeniedError(
                f"safe environment denies {method!r} on {resource_name!r}"
            )
        # The domain transition: nothing but bytes crosses.
        args_blob = encode(list(args))
        result_blob = self._trusted.perform(resource_name, method, args_blob)
        return decode(result_blob)

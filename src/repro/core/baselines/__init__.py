"""The alternative access-control designs of section 5.4, as baselines.

The paper compares four ways to give agents controlled resource access:

1. **security-manager checks** on every access — rejected because every
   resource's policy would bloat one central module
   (:mod:`repro.core.baselines.secman_checked`);
2. **proxies** — the chosen design (:mod:`repro.core.proxy`);
3. **wrappers with ACLs** — one wrapper per resource, the ACL consulted
   on *every* call (:mod:`repro.core.baselines.wrapper`);
4. **Safe-Tcl-style two environments** — a safe environment screens each
   operation and crosses into a trusted environment that holds the real
   resources (:mod:`repro.core.baselines.safe_env`).

Each is implemented honestly enough to measure: the wrapper really scans
its ACL per call, the central manager really grows with every installed
policy, and the two-environment design really marshals arguments across
the boundary (the paper: "it may require a transition across system-level
protection domains on every resource access").  Benchmark F5 puts all
four on one axis.
"""

from repro.core.baselines.wrapper import AccessControlList, ACLWrapper, wrap_resource
from repro.core.baselines.secman_checked import (
    AppSecurityManager,
    SecManCheckedResource,
    guard_resource,
)
from repro.core.baselines.safe_env import SafeEnvironment, TrustedEnvironment

__all__ = [
    "AccessControlList",
    "ACLWrapper",
    "wrap_resource",
    "AppSecurityManager",
    "SecManCheckedResource",
    "guard_resource",
    "SafeEnvironment",
    "TrustedEnvironment",
]

"""The domain database (section 5.3).

"The agent server maintains a domain database.  For each agent, it stores
several items of information including its thread-group, owner, creator,
and home-site address.  It also includes access authorization for various
server resources, usage limits and current usage.  If the agent is
currently granted access to any server resources, then information about
the binding objects is also maintained here.  This database can be
updated only by a thread executing in the server's protection domain."

The write barrier: Java enforced "server threads only" with stack
inspection; here writes are allowed from the server domain *or* from
within a ``privileged()`` block that only trusted server components (the
binding service, the hosting machinery) ever enter — the analogue of
``doPrivileged`` sections, needed because Fig. 6's upcall deliberately
runs on the *agent's* thread while executing trusted code.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.proxy import ResourceProxy
from repro.credentials.delegation import DelegatedCredentials
from repro.errors import PrivilegeError, UnknownNameError
from repro.naming.urn import URN
from repro.sandbox.domain import ProtectionDomain, current_domain
from repro.util.clock import Clock

__all__ = ["DomainDatabase", "DomainRecord", "BindingRecord"]


@dataclass(slots=True)
class BindingRecord:
    """One granted resource binding (Fig. 6, step 5's bookkeeping)."""

    resource: URN
    proxy: ResourceProxy
    granted_at: float


@dataclass(slots=True)
class DomainRecord:
    """Everything the server tracks about one resident agent."""

    domain: ProtectionDomain
    agent: URN
    owner: URN
    creator: URN
    home_site: str
    arrived_at: float
    status: str = "running"  # running | departed | completed | terminated
    charges: float = 0.0
    bindings: list[BindingRecord] = field(default_factory=list)

    @property
    def domain_id(self) -> str:
        return self.domain.domain_id


_VALID_STATUS = ("running", "departed", "completed", "terminated")


class DomainDatabase:
    """Per-server registry of resident agent domains."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._records: dict[str, DomainRecord] = {}
        self._tls = threading.local()

    # -- the write barrier -----------------------------------------------------

    @contextmanager
    def privileged(self) -> Iterator[None]:
        """Trusted-component write access (the doPrivileged analogue)."""
        depth = getattr(self._tls, "depth", 0)
        self._tls.depth = depth + 1
        try:
            yield
        finally:
            self._tls.depth -= 1

    def _check_write(self) -> None:
        if getattr(self._tls, "depth", 0) > 0:
            return
        domain = current_domain()
        if domain is not None and domain.is_server:
            return
        raise PrivilegeError(
            "domain database writes require the server protection domain"
        )

    # -- writes ---------------------------------------------------------------------

    def admit(
        self,
        domain: ProtectionDomain,
        credentials: DelegatedCredentials,
        home_site: str,
    ) -> DomainRecord:
        self._check_write()
        record = DomainRecord(
            domain=domain,
            agent=credentials.agent,
            owner=credentials.owner,
            creator=credentials.base.creator,
            home_site=home_site,
            arrived_at=self._clock.now(),
        )
        self._records[domain.domain_id] = record
        return record

    def record_binding(
        self, domain_id: str, resource: URN, proxy: ResourceProxy
    ) -> None:
        self._check_write()
        self.get(domain_id).bindings.append(
            BindingRecord(resource=resource, proxy=proxy, granted_at=self._clock.now())
        )

    def add_charge(self, domain_id: str, amount: float) -> None:
        self._check_write()
        if amount < 0:
            raise ValueError("charges only accumulate")
        self.get(domain_id).charges += amount

    def set_status(self, domain_id: str, status: str) -> None:
        self._check_write()
        if status not in _VALID_STATUS:
            raise ValueError(f"invalid status {status!r}")
        self.get(domain_id).status = status

    def remove(self, domain_id: str) -> DomainRecord:
        self._check_write()
        try:
            return self._records.pop(domain_id)
        except KeyError:
            raise UnknownNameError(f"no domain {domain_id!r}") from None

    # -- reads -------------------------------------------------------------------------

    def get(self, domain_id: str) -> DomainRecord:
        try:
            return self._records[domain_id]
        except KeyError:
            raise UnknownNameError(f"no domain {domain_id!r}") from None

    def by_agent(self, agent: URN) -> DomainRecord:
        for record in self._records.values():
            if record.agent == agent:
                return record
        raise UnknownNameError(f"no resident agent {agent}")

    def records_of(self, agent: URN) -> list[DomainRecord]:
        """Every record for ``agent`` — revisits and crash-recovery
        relaunches accrue one record per residency."""
        return [r for r in self._records.values() if r.agent == agent]

    def residents(self) -> list[DomainRecord]:
        return [r for r in self._records.values() if r.status == "running"]

    def records(self) -> list[DomainRecord]:
        """Every record, regardless of status (lease sweeps read all of
        them: a departed agent's grants must still lapse on schedule)."""
        return list(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, domain_id: str) -> bool:
        return domain_id in self._records

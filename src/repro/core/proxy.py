"""Per-agent resource proxies (Fig. 5 + section 5.5 extensions).

A proxy is "an object with a safe interface to the resource": it holds a
*private* reference to the real resource (``_ref`` — agent code cannot
touch underscore attributes, the verifier guarantees it, mirroring Java's
``private``), implements the same exported interface, and passes each
invocation through only after a pre-check.

Pre-check order (each step has a dedicated exception, and tests pin this
order):

1. **revoked?**     → :class:`ProxyRevokedError`   (section 5.5, revocation)
2. **expired?**     → :class:`ProxyExpiredError`   (section 5.5, time-out)
3. **confined?**    → :class:`CapabilityConfinementError` (identity-based
   capability: invoker's domain must be the grantee's)
4. **token fresh?** → transparent re-validation through the full
   authorization path when the proxy's capability token went stale
   (epoch bump or ttl) — re-mints on success, revokes on denial
5. **enabled?**     → :class:`MethodDisabledError` (Fig. 5's ``isEnabled``)
6. **quota/price**  → :class:`QuotaExceededError`  (section 5.5, accounting)

For an ordinary allowed call this is a handful of attribute reads, two
integer compares against the epoch cells, and one bitmask test — the
paper's claim that "once a safe proxy is made available to an agent,
access control checks would require a minimal amount of computation" is
benchmark F5.  The enabled-method check is a single ``mask & bit``
against a per-class bit assignment; the method-name set survives only
for introspection and administrative edits.

Proxy classes are synthesized from the resource class's exported
interface — the runtime equivalent of the paper's "simple lexical
processing tool" that generated ``BufferProxy`` from ``Buffer``.
Synthesis is cached per resource class; instantiation per agent is cheap
(bound-method forwarding tables are built once per resource instance and
shared read-only across its proxies).

**Protection rings.**  Each proxy binds its dispatch path *once* at
instantiation, from the grantee's trust ring: ring-2 (untrusted) pays
full mediation including a per-invocation audit record, ring-1 the
standard checks, ring-0 was issued without audit or metering hooks so
its path is already minimal.  Supervision (bulkheads, deadlines,
quotas) wraps the path for **every** ring — trust reduces bookkeeping,
never safety interlocks.

The *privileged* control surface (``revoke``, ``set_method_enabled``,
``set_expiry``) is the section-5.5 mechanism: "a resource manager can
invalidate any of its currently active proxies at any time ... by
invoking a privileged method of the proxy object", guarded by "access
control information about the protection domains that are permitted to
execute this privileged method" (``admin_domains`` here).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Callable

from repro.core.accounting import Meter
from repro.core.capability import check_confinement, current_domain_id
from repro.core.policy import ProxyGrant
from repro.core.resource import Resource, exported_methods
from repro.core.token import RING_NAMES, RING_UNTRUSTED, RING_VERIFIED, method_bits
from repro.errors import (
    MethodDisabledError,
    PrivilegeError,
    ProxyExpiredError,
    ProxyRevokedError,
    SecurityException,
)
from repro.obs import runtime as _obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.access_protocol import BindingContext
    from repro.core.token import CapabilityToken

__all__ = ["ResourceProxy", "synthesize_proxy_class", "RESERVED_PROXY_NAMES"]

# Names the proxy base class needs for itself; a resource may not export them.
RESERVED_PROXY_NAMES = frozenset(
    {
        "revoke",
        "set_method_enabled",
        "set_expiry",
        "proxy_info",
        "usage_report",
        "renew_lease",
        "capability_token",
    }
)


class ResourceProxy(Resource):
    """Base class for all synthesized proxies."""

    # method name → single-bit mask; overridden per synthesized class.
    _method_bits: dict[str, int] = {}

    __slots__ = (
        "__weakref__",  # the resource's issued-proxy index holds weak refs
        "_ref",
        "_enabled",
        "_mask",
        "_grantee",
        "_expires_at",
        "_clock",
        "_confine",
        "_revoked",
        "_meter",
        "_time_metered",
        "_audit",
        "_admin_domains",
        "_forwards",
        "_target_name",
        "_guard",
        "_lease_duration",
        "_inflight",
        "_ring",
        "_dispatch",
        "_token",
        "_hcell",
        "_rcell",
        "_credentials",
        "_refresh",
    )

    def __init__(
        self,
        resource: Resource,
        grant: ProxyGrant,
        context: "BindingContext",
        *,
        meter: Meter | None = None,
        admin_domains: frozenset[str] = frozenset(),
        supervision: Any | None = None,
        lease_duration: float | None = None,
    ) -> None:
        self._ref = resource  # private: never visible through the interface
        self._enabled = set(grant.enabled)
        bits = self._method_bits
        mask = 0
        for name in self._enabled:
            mask |= bits.get(name, 0)
        self._mask = mask
        self._grantee = context.domain_id
        self._clock = context.clock
        # The grant's lifetime *is* its lease: an explicit policy lifetime
        # wins, otherwise the supervisor's default lease applies.  Either
        # way the deadline is renewable via ``renew_lease`` and lapse
        # means automatic revocation.  Both None = a perpetual grant.
        lease = grant.lifetime if grant.lifetime is not None else lease_duration
        self._lease_duration = lease
        self._expires_at = (
            context.clock.now() + lease if lease is not None else None
        )
        self._confine = grant.confine
        self._revoked = False
        self._meter = meter
        self._time_metered = meter is not None and meter.time_metered
        self._audit = context.audit
        self._admin_domains = admin_domains
        self._guard = supervision  # duck-typed ResourceGuard (or None)
        self._inflight: tuple[str, float] | None = None
        self._target_name = f"{type(resource).__name__}"
        self._forwards = _bound_forwards(resource)
        # Capability-token state: attached by the access protocol after
        # construction (None = enforce purely from local grant state).
        self._token: "CapabilityToken | None" = None
        self._hcell = None  # holder EpochCell (shared by reference)
        self._rcell = None  # resource EpochCell
        self._credentials = None  # grantee credentials, for re-validation
        self._refresh = None  # stale-token fallback installed by the issuer
        # The trust ring picks the dispatch path once, here — never per
        # call.  Supervision gates apply to every ring; ring 2 addition-
        # ally leaves a per-invocation audit trail.
        ring = context.ring
        self._ring = ring
        if ring >= RING_UNTRUSTED and context.audit is not None:
            self._dispatch = _mediated_call
        elif supervision is not None:
            self._dispatch = _guarded_call
        else:
            self._dispatch = _checked_call

    # -- the pre-check (Fig. 5's isEnabled, extended per section 5.5) -----------

    def _precheck(self, method: str, method_bit: int = 0) -> None:
        if self._revoked:
            self._deny(method, "revoked")
            raise ProxyRevokedError(
                f"proxy for {self._target_name} has been revoked",
                resource=self._target_name,
                domain=self._grantee,
                method=method,
            )
        if self._expires_at is not None and self._clock.now() > self._expires_at:
            self._deny(method, "expired")
            raise ProxyExpiredError(
                f"proxy for {self._target_name} expired at t={self._expires_at}",
                resource=self._target_name,
                domain=self._grantee,
                method=method,
                deadline=self._expires_at,
            )
        if self._confine:
            try:
                check_confinement(self._grantee, self._target_name)
            except SecurityException:
                self._deny(method, "confinement")
                raise
        token = self._token
        if token is not None and (
            self._hcell.value != token.holder_epoch
            or (
                token.expires_at is not None
                and self._clock.now() > token.expires_at
            )
        ):
            # Stale capability: the holder's epoch moved out from under us
            # (out-of-band revocation, agent retirement) or the token ttl
            # elapsed.  Fall back to the full authorization path — it
            # re-mints on success and revokes this proxy on denial (fail
            # closed).  The *resource* epoch is deliberately not compared
            # here: it gates token redemption (re-binding), while a live
            # proxy keeps the grant it was issued — ``set_policy`` affects
            # future grants only, exactly as before tokens existed.
            self._refresh(self, method)
        if method_bit:
            if not (self._mask & method_bit):
                self._deny(method, "disabled")
                raise MethodDisabledError(
                    f"method {self._target_name}.{method} is disabled on"
                    f" this proxy",
                    resource=self._target_name,
                    domain=self._grantee,
                    method=method,
                )
        elif method not in self._enabled:
            self._deny(method, "disabled")
            raise MethodDisabledError(
                f"method {self._target_name}.{method} is disabled on this proxy",
                resource=self._target_name,
                domain=self._grantee,
                method=method,
            )
        if self._meter is not None:
            self._meter.charge_call(method)  # raises QuotaExceededError

    def _deny(self, method: str, reason: str) -> None:
        if _obs.TRACING:
            _obs.TRACER.add_event(
                "proxy.deny", method=method, reason=reason
            )
        if _obs.METRICS_ON:
            _obs.METRICS.inc(
                "proxy_invocations_denied",
                resource=self._target_name,
                reason=reason,
            )
        if self._audit is not None:
            self._audit.record(
                self._grantee,
                "proxy.invoke",
                f"{self._target_name}.{method}",
                False,
                reason,
            )

    # -- privileged control surface (section 5.5) ---------------------------------

    def _check_privileged(self, operation: str) -> None:
        caller = current_domain_id()
        if caller not in self._admin_domains:
            if self._audit is not None:
                self._audit.record(
                    caller or "<none>", f"proxy.{operation}",
                    self._target_name, False, "not an admin domain",
                )
            raise PrivilegeError(
                f"proxy operation {operation!r} requires an admin domain,"
                f" caller is {caller!r}"
            )

    def revoke(self) -> None:
        """Invalidate this proxy entirely (privileged).

        Also settles the account: a time-metered call still in flight is
        charged for the time it used up to the revocation instant, then
        the meter is finalized so nothing accrues (or leaks) afterwards.
        Any capability token minted for this grant is invalidated too, by
        bumping the holder's epoch — copies of the token that migrated
        away with the agent fail closed at their next use.
        """
        self._check_privileged("revoke")
        self._revoked = True
        if self._token is not None and self._hcell is not None:
            self._hcell.value += 1
            self._token = None
        if self._meter is not None:
            inflight = self._inflight
            if inflight is not None and self._time_metered:
                method, started = inflight
                self._meter.charge_elapsed(method, self._clock.now() - started)
            self._meter.finalize()
        if _obs.TRACING:
            _obs.annotate(
                "proxy.revoke", self._target_name, grantee=self._grantee
            )
        if _obs.METRICS_ON:
            _obs.METRICS.inc("proxies_revoked", resource=self._target_name)

    def set_method_enabled(self, method: str, enabled: bool) -> None:
        """Selectively revoke or add one method (privileged)."""
        self._check_privileged("set_method_enabled")
        if method not in self._forwards:
            raise SecurityException(
                f"{self._target_name} has no exported method {method!r}"
            )
        bit = self._method_bits.get(method, 0)
        if enabled:
            self._enabled.add(method)
            self._mask |= bit
        else:
            self._enabled.discard(method)
            self._mask &= ~bit

    def set_expiry(self, expires_at: float | None) -> None:
        """Move (or clear) the proxy's expiration time (privileged)."""
        self._check_privileged("set_expiry")
        self._expires_at = expires_at
        if _obs.TRACING:
            _obs.annotate(
                "proxy.set_expiry",
                self._target_name,
                grantee=self._grantee,
                expires_at=expires_at,
            )

    # -- the lease (holder-facing half of supervision) ------------------------------

    def renew_lease(self) -> float | None:
        """Extend this grant's lease by one lease period (holder-callable).

        Returns the new deadline (None for perpetual grants).  Lapse is
        automatic revocation: renewing *after* the deadline flips the
        proxy to revoked, finalizes its meter, and raises
        :class:`ProxyExpiredError` — the holder must go back through the
        Fig. 6 binding protocol for a fresh grant.
        """
        if self._revoked:
            self._deny("renew_lease", "revoked")
            raise ProxyRevokedError(
                f"proxy for {self._target_name} has been revoked",
                resource=self._target_name,
                domain=self._grantee,
            )
        if self._confine:
            check_confinement(self._grantee, self._target_name)
        if self._expires_at is None:
            return None
        now = self._clock.now()
        if now > self._expires_at:
            self._revoked = True
            if self._meter is not None:
                self._meter.finalize()
            self._deny("renew_lease", "lease_lapsed")
            raise ProxyExpiredError(
                f"lease on {self._target_name} lapsed at t={self._expires_at}",
                resource=self._target_name,
                domain=self._grantee,
                deadline=self._expires_at,
            )
        self._expires_at = now + self._lease_duration
        if _obs.TRACING:
            _obs.annotate(
                "proxy.renew_lease",
                self._target_name,
                grantee=self._grantee,
                expires_at=self._expires_at,
            )
        return self._expires_at

    # -- unprivileged introspection -------------------------------------------------

    def proxy_info(self) -> dict[str, Any]:
        """What the holder may know about its own proxy."""
        return {
            "resource": self._target_name,
            "grantee": self._grantee,
            "enabled": frozenset(self._enabled),
            "expires_at": self._expires_at,
            "confined": self._confine,
            "revoked": self._revoked,
            "metered": self._meter is not None,
            "ring": self._ring,
        }

    def usage_report(self):
        """The holder's own bill so far (None when unmetered)."""
        return self._meter.report() if self._meter is not None else None

    def capability_token(self) -> "CapabilityToken | None":
        """The signed capability backing this grant (holder-callable).

        The holder carries it across migration and redeems it at re-bind
        for the O(1) fast path (:meth:`~repro.core.access_protocol
        .AccessProtocol.redeem_token`).  ``None`` for metered grants —
        billing state cannot ride in a bearer token.
        """
        return self._token


def _bound_forwards(resource: Resource) -> dict[str, Callable[..., Any]]:
    """The resource's bound exported methods, built once and shared.

    Every proxy onto the same resource instance forwards through the
    same (read-only) table, so N grants pay the ``getattr`` sweep once.
    Slotted resource classes without a spare attribute simply rebuild
    per proxy — correctness is identical.
    """
    forwards = getattr(resource, "__proxy_forwards__", None)
    if forwards is None:
        forwards = {
            name: getattr(resource, name)
            for name in exported_methods(type(resource))
        }
        try:
            resource.__proxy_forwards__ = forwards
        except AttributeError:
            pass
    return forwards


def _observed_invoke(
    self: ResourceProxy, method: str, bit: int, args: tuple, kwargs: dict
) -> Any:
    """Slow path: Fig. 6 step 6 as a span plus a latency histogram.

    Lives out of line so the common (observability-off) forwarder body
    stays exactly the pre-instrumentation handful of checks.
    """
    start_ns = time.perf_counter_ns() if _obs.METRICS_ON else 0
    try:
        if _obs.TRACING:
            with _obs.TRACER.span(
                "proxy.invoke",
                resource=self._target_name,
                method=method,
                domain=self._grantee,
                ring=RING_NAMES.get(self._ring, str(self._ring)),
            ):
                return self._dispatch(self, method, bit, args, kwargs)
        return self._dispatch(self, method, bit, args, kwargs)
    finally:
        if _obs.METRICS_ON:
            _obs.METRICS.histogram(
                "proxy_invoke_ns",
                resource=self._target_name,
                method=method,
            ).observe(time.perf_counter_ns() - start_ns)


def _checked_call(
    self: ResourceProxy, method: str, bit: int, args: tuple, kwargs: dict
) -> Any:
    self._precheck(method, bit)
    if self._time_metered:
        start = self._clock.now()
        self._inflight = (method, start)
        try:
            return self._forwards[method](*args, **kwargs)
        finally:
            self._inflight = None
            self._meter.charge_elapsed(method, self._clock.now() - start)
    return self._forwards[method](*args, **kwargs)


def _guarded_call(
    self: ResourceProxy, method: str, bit: int, args: tuple, kwargs: dict
) -> Any:
    """Supervised invocation: security pre-check, then the guard.

    Security decides first (a denied call must not consume a bulkhead
    slot or count against the resource's health); the guard then admits
    or sheds, arms the watchdog, applies any injected resource fault,
    and scores the outcome.  The fault gate runs *inside* the ticket so
    a wedged or erroring resource counts as this invocation's outcome
    and releases its slot.
    """
    self._precheck(method, bit)
    guard = self._guard
    ticket = guard.begin(self._grantee, method)
    try:
        guard.fault_gate(ticket)
        if self._time_metered:
            start = self._clock.now()
            self._inflight = (method, start)
            try:
                result = self._forwards[method](*args, **kwargs)
            finally:
                self._inflight = None
                self._meter.charge_elapsed(method, self._clock.now() - start)
        else:
            result = self._forwards[method](*args, **kwargs)
    except BaseException as exc:
        guard.finish(ticket, exc)
        raise
    guard.finish(ticket, None)
    return result


def _mediated_call(
    self: ResourceProxy, method: str, bit: int, args: tuple, kwargs: dict
) -> Any:
    """Ring-2 full mediation: the standard path plus a success audit
    record per invocation.

    Denials are audited inside ``_deny`` for every ring; untrusted
    tenants additionally leave a positive trail, so their entire
    interaction with the resource is reconstructable.
    """
    if self._guard is not None:
        result = _guarded_call(self, method, bit, args, kwargs)
    else:
        result = _checked_call(self, method, bit, args, kwargs)
    audit = self._audit
    if audit is not None:
        audit.record(
            self._grantee,
            "proxy.invoke",
            f"{self._target_name}.{method}",
            True,
            "ring2",
        )
    return result


def _make_forwarder(method: str, bit: int) -> Callable[..., Any]:
    def forwarder(self: ResourceProxy, *args: Any, **kwargs: Any) -> Any:
        if _obs.ENABLED:
            return _observed_invoke(self, method, bit, args, kwargs)
        return self._dispatch(self, method, bit, args, kwargs)

    forwarder.__name__ = method
    forwarder.__qualname__ = f"proxy.{method}"
    forwarder.__doc__ = f"Checked pass-through to the resource's {method!r}."
    return forwarder


_proxy_class_cache: dict[type, type] = {}


def synthesize_proxy_class(resource_cls: type) -> type:
    """Generate (and cache) the proxy class for ``resource_cls``.

    The runtime analogue of the paper's proxy-generator tool: one proxy
    class per resource class, instantiated once per grantee.  Each
    exported method gets a stable bit position (definition order), baked
    into its forwarder and into the class's ``_method_bits`` table so
    the pre-check and capability tokens agree on the encoding.
    """
    cached = _proxy_class_cache.get(resource_cls)
    if cached is not None:
        return cached
    methods = exported_methods(resource_cls)
    if not methods:
        raise SecurityException(
            f"{resource_cls.__name__} exports no methods; nothing to proxy"
        )
    collisions = RESERVED_PROXY_NAMES.intersection(methods)
    if collisions:
        raise SecurityException(
            f"{resource_cls.__name__} exports reserved proxy name(s):"
            f" {', '.join(sorted(collisions))}"
        )
    bits = method_bits(resource_cls)
    namespace: dict[str, Any] = {
        name: _make_forwarder(name, bits[name]) for name in methods
    }
    namespace["_method_bits"] = bits
    namespace["__slots__"] = ()
    proxy_cls = type(f"{resource_cls.__name__}Proxy", (ResourceProxy,), namespace)
    _proxy_class_cache[resource_cls] = proxy_cls
    return proxy_cls

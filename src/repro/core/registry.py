"""The resource registry (Fig. 6, steps 1 and 3).

"A resource is made available to agents by invoking the agent
environment's ``registerResource`` primitive, which stores the resource
name and a reference to the resource object in the resource registry.
Each entry also contains ownership information, which is used to prevent
any unauthorized modifications to the registry entries."

Registration is a mediated operation: the server domain may always
register; agent domains need the ``system.resource_register`` permission
(this is what makes section 5.5's *dynamic service installation by
agents* possible without opening the registry to every visitor).
Unregistration is allowed only to the entry's owning domain or the
server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.access_protocol import AccessProtocol
from repro.core.capability import current_domain_id
from repro.core.resource import ResourceImpl
from repro.errors import (
    DuplicateNameError,
    PrivilegeError,
    SecurityException,
    UnknownNameError,
)
from repro.naming.urn import URN
from repro.sandbox.domain import current_domain
from repro.sandbox.security_manager import SecurityManager

__all__ = ["ResourceRegistry", "RegistryEntry"]


@dataclass(slots=True)
class RegistryEntry:
    resource: ResourceImpl
    owner_domain: str  # protection-domain id that registered it
    registered_at: float
    ephemeral: bool = False  # removed when the owning domain retires


class ResourceRegistry:
    """Name → resource table with ownership-gated mutation."""

    def __init__(self, security_manager: SecurityManager, clock) -> None:
        self._secman = security_manager
        self._clock = clock
        self._entries: dict[URN, RegistryEntry] = {}
        # owner domain -> its ephemeral entry names (insertion-ordered),
        # so retiring a domain is O(its entries), not O(all entries).
        self._ephemeral_by_owner: dict[str, dict[URN, None]] = {}
        # Duck-typed ResourceSupervisor (repro.server.supervisor); when
        # set, every entry gets a guard at registration time.
        self._supervisor = None

    def attach_supervisor(self, supervisor) -> None:
        """Put every current and future entry under supervision."""
        self._supervisor = supervisor
        for entry in self._entries.values():
            supervisor.attach(entry.resource)

    def set_concurrency_cap(self, name: URN, limit: int | None) -> None:
        """Resize one resource's bulkhead (server-only; None = uncapped)."""
        self._secman.check_server_only("resource_concurrency_cap", str(name))
        if self._supervisor is None:
            raise SecurityException(
                f"no supervisor attached; cannot cap {name}"
            )
        self.entry(name)  # UnknownNameError for unregistered names
        self._supervisor.guard_of(name).bulkhead.limit = limit

    def register(self, resource: ResourceImpl) -> None:
        """Step 1 of Fig. 6.  Mediated by the security manager."""
        if not isinstance(resource, AccessProtocol):
            raise SecurityException(
                f"{type(resource).__name__} does not implement AccessProtocol;"
                f" it cannot be safely exported"
            )
        self._secman.check("resource_register", target=str(resource.resource_name()))
        owner = current_domain_id()
        assert owner is not None  # secman.check already denied unmanaged callers
        self._register(resource, owner, ephemeral=False)

    def register_for(
        self, resource: ResourceImpl, owner_domain: str, *, ephemeral: bool = True
    ) -> None:
        """Trusted-component registration on a domain's behalf.

        Used by the agent environment for agents registering *themselves*
        (mailboxes): the paper allows any agent to export itself, so this
        path skips the ``resource_register`` privilege but marks the entry
        ephemeral — it is cleaned up when the owning domain retires
        (unlike installed services, which outlive their installer,
        section 5.5).
        """
        if not isinstance(resource, AccessProtocol):
            raise SecurityException(
                f"{type(resource).__name__} does not implement AccessProtocol"
            )
        self._register(resource, owner_domain, ephemeral=ephemeral)

    def _register(
        self, resource: ResourceImpl, owner: str, *, ephemeral: bool
    ) -> None:
        name = resource.resource_name()
        if name in self._entries:
            raise DuplicateNameError(f"resource {name} is already registered")
        self._entries[name] = RegistryEntry(
            resource=resource,
            owner_domain=owner,
            registered_at=self._clock.now(),
            ephemeral=ephemeral,
        )
        if ephemeral:
            self._ephemeral_by_owner.setdefault(owner, {})[name] = None
        if self._supervisor is not None:
            self._supervisor.attach(resource)

    def remove_ephemeral_of(self, owner_domain: str) -> list[URN]:
        """Drop the ephemeral entries a retiring domain owned."""
        doomed = list(self._ephemeral_by_owner.pop(owner_domain, ()))
        for name in doomed:
            entry = self._entries.pop(name)
            if self._supervisor is not None:
                self._supervisor.detach(entry.resource)
        return doomed

    def lookup(self, name: URN) -> ResourceImpl:
        """Step 3 of Fig. 6 (reads are open; the proxy is the guard)."""
        try:
            return self._entries[name].resource
        except KeyError:
            raise UnknownNameError(f"no resource registered as {name}") from None

    def entry(self, name: URN) -> RegistryEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(f"no resource registered as {name}") from None

    def unregister(self, name: URN) -> ResourceImpl:
        """Remove an entry; owner-or-server only."""
        entry = self.entry(name)
        domain = current_domain()
        caller = domain.domain_id if domain is not None else None
        if domain is None or not (domain.is_server or caller == entry.owner_domain):
            raise PrivilegeError(
                f"domain {caller!r} may not unregister {name}"
                f" (owned by {entry.owner_domain!r})"
            )
        del self._entries[name]
        if entry.ephemeral:
            owned = self._ephemeral_by_owner.get(entry.owner_domain)
            if owned is not None:
                owned.pop(name, None)
                if not owned:
                    del self._ephemeral_by_owner[entry.owner_domain]
        if self._supervisor is not None:
            self._supervisor.detach(entry.resource)
        return entry.resource

    def names(self) -> list[URN]:
        return sorted(self._entries, key=str)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: URN) -> bool:
        return name in self._entries

"""The server-side security policy consulted by ``get_proxy`` (section 5.2).

A policy is an ordered list of :class:`PolicyRule`; each rule matches
principals (by owner name pattern, agent name pattern, group membership,
or everyone) and contributes a grant.  ``decide`` combines:

* the union of all *matching rules'* grants   (what the server offers), and
* the agent's *effective delegated rights*     (what the owner allowed),

so a method is enabled on the proxy only if **both** sides permit it —
"These restrictions must be enforced in addition to the access controls
applied by the resources themselves" (section 5.1).

Per-method quotas resolve to the minimum across the matched rules and the
credential chain; proxy lifetime to the minimum across matched rules.

**Fast path.**  Everything ``decide`` consumes is immutable (rules,
rights, class interfaces), so the expensive parts are precomputed and
memoized process-wide: subject globs compile to regex matchers at first
use, each rights object's per-class ``method → quota`` table is built
once, and the exported-interface table comes precomputed from
:func:`~repro.core.resource.interface_permissions`.  The policy carries a
monotonic :attr:`SecurityPolicy.version` (which also folds in the global
group-membership epoch) so grant caches layered above ``decide`` can key
on it and never serve a decision from before a mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.resource import interface_permissions
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.principal import GroupDirectory, membership_epoch
from repro.credentials.rights import CompositeRights, Rights, compiled_matcher
from repro.errors import CredentialError
from repro.naming.urn import URN

__all__ = ["PolicyRule", "ProxyGrant", "SecurityPolicy"]

_SUBJECT_KINDS = ("owner", "agent", "group", "any", "delegator")


@lru_cache(maxsize=1024)
def _group_urn(subject: str) -> URN:
    return URN.parse(subject)


@dataclass(frozen=True, slots=True)
class PolicyRule:
    """One clause of a resource's security policy."""

    subject_kind: str  # "owner" | "agent" | "group" | "any"
    subject: str  # glob over the owner/agent URN, or a group URN string
    grant: Rights
    lifetime: float | None = None  # max proxy lifetime granted by this rule
    confine: bool = True  # identity-based capability confinement
    metered: bool = False  # attach a usage meter to proxies
    rule_id: str = ""  # stable id for audit trails / trace attributes

    def __post_init__(self) -> None:
        if self.subject_kind not in _SUBJECT_KINDS:
            raise CredentialError(
                f"unknown policy subject kind {self.subject_kind!r}"
            )
        if self.lifetime is not None and self.lifetime <= 0:
            raise CredentialError("rule lifetime must be positive")
        # Compile the subject at construction time: every later match
        # uses the shared compiled matcher, and a bad group URN fails
        # here rather than at first match.
        if self.subject_kind in ("owner", "agent", "delegator"):
            compiled_matcher(self.subject)
        elif self.subject_kind == "group":
            _group_urn(self.subject)

    def matches(
        self,
        credentials: DelegatedCredentials,
        groups: GroupDirectory | None,
    ) -> bool:
        if self.subject_kind == "any":
            return True
        if self.subject_kind == "owner":
            return compiled_matcher(self.subject)(str(credentials.owner)) is not None
        if self.subject_kind == "agent":
            return compiled_matcher(self.subject)(str(credentials.agent)) is not None
        if self.subject_kind == "delegator":
            # Section 5.2's "granting it some additional privileges":
            # a forwarding server's delegation link acts as an endorsement,
            # and a policy may widen its offer to agents a trusted partner
            # endorsed.  (The owner's own grant still gates — endorsements
            # widen only the server-side offer, never the chain's
            # conjunction, so attenuation is preserved.)
            match = compiled_matcher(self.subject)
            return any(
                match(str(link.delegator)) for link in credentials.links
            )
        # group membership of the *owner* (the human the agent represents)
        if groups is None:
            return False
        return groups.is_member(credentials.owner, _group_urn(self.subject))


@lru_cache(maxsize=4096)
def _quota_map(quotas: tuple[tuple[str, int], ...]) -> dict[str, int]:
    """The tuple-of-pairs quota encoding as an O(1) lookup, shared."""
    return dict(quotas)


@dataclass(frozen=True, slots=True)
class ProxyGrant:
    """The outcome of a policy decision: what the proxy may expose."""

    enabled: frozenset[str]  # method names
    quotas: tuple[tuple[str, int], ...] = ()  # (method, max invocations)
    lifetime: float | None = None  # seconds until the proxy expires
    confine: bool = True
    metered: bool = False
    # Which policy rules matched the credentials (rule_id, or "rule[i]"
    # by position).  Empty means default-deny: no rule matched at all.
    matched_rules: tuple[str, ...] = ()

    def quota_for(self, method: str) -> int | None:
        return _quota_map(self.quotas).get(method)

    def deny_reason(self) -> str:
        """Human/audit explanation when nothing is enabled."""
        if self.enabled:
            raise ValueError("grant is not a denial")
        if not self.matched_rules:
            return "default-deny: no policy rule matched"
        return (
            "matched rule(s) grant nothing the agent may use: "
            + ", ".join(self.matched_rules)
        )


@lru_cache(maxsize=4096)
def _method_table(
    rights: "Rights | CompositeRights", resource_cls: type
) -> dict[str, int | None]:
    """``method → quota`` for the exported methods ``rights`` permits.

    Keyed on the (frozen) rights value and the resource class: the glob
    evaluation over the class interface runs once per distinct pair, and
    ``decide`` degrades to dictionary lookups.
    """
    table: dict[str, int | None] = {}
    for method, permission in interface_permissions(resource_cls):
        if rights.permits(permission):
            table[method] = rights.quota_for(permission)
    return table


@dataclass(slots=True)
class SecurityPolicy:
    """An ordered rule set, plus the group directory it resolves against.

    Mutate the rule set only through :meth:`add_rule` (or replace the
    whole policy via ``AccessProtocol.set_policy``): both bump
    :attr:`version`, which is what keeps grant caches sound.
    """

    rules: list[PolicyRule] = field(default_factory=list)
    groups: GroupDirectory | None = None
    _mutations: int = field(default=0, repr=False, compare=False)

    @classmethod
    def deny_all(cls) -> "SecurityPolicy":
        return cls(rules=[])

    @classmethod
    def allow_all(cls, *, confine: bool = True, metered: bool = False) -> "SecurityPolicy":
        """Everyone gets the full interface (closed-network deployments)."""
        return cls(
            rules=[
                PolicyRule(
                    subject_kind="any",
                    subject="*",
                    grant=Rights.all(),
                    confine=confine,
                    metered=metered,
                )
            ]
        )

    def add_rule(self, rule: PolicyRule) -> "SecurityPolicy":
        self.rules.append(rule)
        self._mutations += 1
        return self

    @property
    def version(self) -> tuple[int, int]:
        """Changes whenever a decision this policy makes could change.

        Combines the policy's own mutation counter with the process-wide
        group-membership epoch (a group change can flip ``matches`` for
        "group" rules without touching the rule list).
        """
        return (self._mutations, membership_epoch())

    # -- the decision procedure ------------------------------------------------

    def decide(
        self, resource: object, credentials: DelegatedCredentials
    ) -> ProxyGrant:
        """Compute the grant for ``credentials`` against ``resource``.

        Runs inside ``get_proxy`` (Fig. 6 step 4), i.e. on the requesting
        agent's thread but in trusted code.
        """
        matched = [
            (i, r)
            for i, r in enumerate(self.rules)
            if r.matches(credentials, self.groups)
        ]
        if not matched:
            return ProxyGrant(enabled=frozenset())
        matched_ids = tuple(
            r.rule_id or f"rule[{i}]" for i, r in matched
        )
        matched = [r for _, r in matched]
        resource_cls = type(resource)
        agent_table = _method_table(credentials.effective_rights(), resource_cls)
        rule_tables = [_method_table(r.grant, resource_cls) for r in matched]
        # Fold the matched rules' offers: cost is O(granted methods), not
        # O(interface × rules) — each per-rule table already contains only
        # the methods that rule grants.  A rule offering a method without
        # a quota never widens another rule's limit: the folded quota is
        # the min over the *non-None* offers, exactly as before.
        if len(rule_tables) == 1:
            offered: dict[str, int | None] = rule_tables[0]
        else:
            offered = {}
            for table in rule_tables:
                for method, q in table.items():
                    if method not in offered:
                        offered[method] = q
                    elif q is not None:
                        prev = offered[method]
                        offered[method] = q if prev is None else min(prev, q)
        enabled: set[str] = set()
        quotas: dict[str, int] = {}
        for method, rule_quota in offered.items():
            if method not in agent_table:
                continue
            enabled.add(method)
            agent_quota = agent_table[method]
            if agent_quota is None:
                quota = rule_quota
            elif rule_quota is None:
                quota = agent_quota
            else:
                quota = min(rule_quota, agent_quota)
            if quota is not None:
                quotas[method] = quota
        lifetimes = [r.lifetime for r in matched if r.lifetime is not None]
        return ProxyGrant(
            enabled=frozenset(enabled),
            quotas=tuple(sorted(quotas.items())),
            lifetime=min(lifetimes) if lifetimes else None,
            confine=any(r.confine for r in matched),
            metered=any(r.metered for r in matched),
            matched_rules=matched_ids,
        )

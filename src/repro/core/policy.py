"""The server-side security policy consulted by ``get_proxy`` (section 5.2).

A policy is an ordered list of :class:`PolicyRule`; each rule matches
principals (by owner name pattern, agent name pattern, group membership,
or everyone) and contributes a grant.  ``decide`` combines:

* the union of all *matching rules'* grants   (what the server offers), and
* the agent's *effective delegated rights*     (what the owner allowed),

so a method is enabled on the proxy only if **both** sides permit it —
"These restrictions must be enforced in addition to the access controls
applied by the resources themselves" (section 5.1).

Per-method quotas resolve to the minimum across the matched rules and the
credential chain; proxy lifetime to the minimum across matched rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.core.resource import exported_methods, permission_for
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.principal import GroupDirectory
from repro.credentials.rights import Rights
from repro.errors import CredentialError
from repro.naming.urn import URN

__all__ = ["PolicyRule", "ProxyGrant", "SecurityPolicy"]

_SUBJECT_KINDS = ("owner", "agent", "group", "any", "delegator")


@dataclass(frozen=True, slots=True)
class PolicyRule:
    """One clause of a resource's security policy."""

    subject_kind: str  # "owner" | "agent" | "group" | "any"
    subject: str  # glob over the owner/agent URN, or a group URN string
    grant: Rights
    lifetime: float | None = None  # max proxy lifetime granted by this rule
    confine: bool = True  # identity-based capability confinement
    metered: bool = False  # attach a usage meter to proxies

    def __post_init__(self) -> None:
        if self.subject_kind not in _SUBJECT_KINDS:
            raise CredentialError(
                f"unknown policy subject kind {self.subject_kind!r}"
            )
        if self.lifetime is not None and self.lifetime <= 0:
            raise CredentialError("rule lifetime must be positive")

    def matches(
        self,
        credentials: DelegatedCredentials,
        groups: GroupDirectory | None,
    ) -> bool:
        if self.subject_kind == "any":
            return True
        if self.subject_kind == "owner":
            return fnmatchcase(str(credentials.owner), self.subject)
        if self.subject_kind == "agent":
            return fnmatchcase(str(credentials.agent), self.subject)
        if self.subject_kind == "delegator":
            # Section 5.2's "granting it some additional privileges":
            # a forwarding server's delegation link acts as an endorsement,
            # and a policy may widen its offer to agents a trusted partner
            # endorsed.  (The owner's own grant still gates — endorsements
            # widen only the server-side offer, never the chain's
            # conjunction, so attenuation is preserved.)
            return any(
                fnmatchcase(str(link.delegator), self.subject)
                for link in credentials.links
            )
        # group membership of the *owner* (the human the agent represents)
        if groups is None:
            return False
        return groups.is_member(credentials.owner, URN.parse(self.subject))


@dataclass(frozen=True, slots=True)
class ProxyGrant:
    """The outcome of a policy decision: what the proxy may expose."""

    enabled: frozenset[str]  # method names
    quotas: tuple[tuple[str, int], ...] = ()  # (method, max invocations)
    lifetime: float | None = None  # seconds until the proxy expires
    confine: bool = True
    metered: bool = False

    def quota_for(self, method: str) -> int | None:
        for name, limit in self.quotas:
            if name == method:
                return limit
        return None


@dataclass(slots=True)
class SecurityPolicy:
    """An ordered rule set, plus the group directory it resolves against."""

    rules: list[PolicyRule] = field(default_factory=list)
    groups: GroupDirectory | None = None

    @classmethod
    def deny_all(cls) -> "SecurityPolicy":
        return cls(rules=[])

    @classmethod
    def allow_all(cls, *, confine: bool = True, metered: bool = False) -> "SecurityPolicy":
        """Everyone gets the full interface (closed-network deployments)."""
        return cls(
            rules=[
                PolicyRule(
                    subject_kind="any",
                    subject="*",
                    grant=Rights.all(),
                    confine=confine,
                    metered=metered,
                )
            ]
        )

    def add_rule(self, rule: PolicyRule) -> "SecurityPolicy":
        self.rules.append(rule)
        return self

    # -- the decision procedure ------------------------------------------------

    def decide(
        self, resource: object, credentials: DelegatedCredentials
    ) -> ProxyGrant:
        """Compute the grant for ``credentials`` against ``resource``.

        Runs inside ``get_proxy`` (Fig. 6 step 4), i.e. on the requesting
        agent's thread but in trusted code.
        """
        matched = [r for r in self.rules if r.matches(credentials, self.groups)]
        if not matched:
            return ProxyGrant(enabled=frozenset())
        agent_rights = credentials.effective_rights()
        resource_cls = type(resource)
        enabled: set[str] = set()
        quotas: dict[str, int] = {}
        for method in exported_methods(resource_cls):
            permission = permission_for(resource_cls, method)
            granting = [r for r in matched if r.grant.permits(permission)]
            if not granting or not agent_rights.permits(permission):
                continue
            enabled.add(method)
            limits = [
                q
                for rule in granting
                if (q := rule.grant.quota_for(permission)) is not None
            ]
            agent_quota = agent_rights.quota_for(permission)
            if agent_quota is not None:
                limits.append(agent_quota)
            if limits:
                quotas[method] = min(limits)
        lifetimes = [r.lifetime for r in matched if r.lifetime is not None]
        return ProxyGrant(
            enabled=frozenset(enabled),
            quotas=tuple(sorted(quotas.items())),
            lifetime=min(lifetimes) if lifetimes else None,
            confine=any(r.confine for r in matched),
            metered=any(r.metered for r in matched),
        )

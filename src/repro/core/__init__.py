"""The paper's contribution: proxy-based protected resource access.

Components, keyed to the paper's figures:

- :mod:`repro.core.resource` — ``Resource`` / ``ResourceImpl`` and the
  ``@export`` interface marker (Fig. 3).
- :mod:`repro.core.access_protocol` — the ``AccessProtocol`` interface
  whose ``get_proxy`` upcall authorizes and manufactures proxies (Fig. 7).
- :mod:`repro.core.proxy` — per-agent proxy synthesis with selectively
  disabled methods, expiry, revocation, capability confinement and
  metering hooks (Fig. 5 + section 5.5).
- :mod:`repro.core.policy` — the server-side security policy consulted by
  ``get_proxy`` (section 5.2).
- :mod:`repro.core.registry` — the resource registry (Fig. 6, step 1/3).
- :mod:`repro.core.domain_db` — the domain database (section 5.3).
- :mod:`repro.core.binding` — the six-step resource request protocol
  (Fig. 6).
- :mod:`repro.core.accounting` — usage metering and charging (section 5.5).
- :mod:`repro.core.capability` — identity-based capability confinement.
- :mod:`repro.core.token` — MAC-signed capability tokens, epoch-based
  revocation, and protection-ring trust tiers (O(1) warm-path
  enforcement).
- :mod:`repro.core.baselines` — the alternative designs of section 5.4
  (wrapper+ACL, security-manager-checked, Safe-Tcl-style two-environment)
  implemented as measurable baselines.
"""

from repro.core.resource import Resource, ResourceImpl, export, exported_methods
from repro.core.access_protocol import AccessProtocol, BindingContext
from repro.core.policy import PolicyRule, ProxyGrant, SecurityPolicy
from repro.core.proxy import ResourceProxy, synthesize_proxy_class
from repro.core.registry import ResourceRegistry
from repro.core.domain_db import DomainDatabase, DomainRecord
from repro.core.binding import BindingService
from repro.core.accounting import Meter, Tariff, UsageReport
from repro.core.capability import check_confinement
from repro.core.token import (
    RING_TRUSTED,
    RING_UNTRUSTED,
    RING_VERIFIED,
    CapabilityToken,
    EpochRegistry,
    TokenAuthority,
    default_epoch_registry,
    default_token_authority,
)

__all__ = [
    "Resource",
    "ResourceImpl",
    "export",
    "exported_methods",
    "AccessProtocol",
    "BindingContext",
    "SecurityPolicy",
    "PolicyRule",
    "ProxyGrant",
    "ResourceProxy",
    "synthesize_proxy_class",
    "ResourceRegistry",
    "DomainDatabase",
    "DomainRecord",
    "BindingService",
    "Meter",
    "Tariff",
    "UsageReport",
    "check_confinement",
    "CapabilityToken",
    "TokenAuthority",
    "EpochRegistry",
    "default_token_authority",
    "default_epoch_registry",
    "RING_TRUSTED",
    "RING_VERIFIED",
    "RING_UNTRUSTED",
]

"""Identity-based capability confinement (section 5.5).

"Even though the reference to a proxy is like a capability, we can limit
its propagation from one agent to another by checking whether the invoker
of the proxy belongs to the protection domain to which it was originally
granted.  Thus, a proxy acts as an identity-based capability [Gong 89]."

The check compares the *current* protection domain — derived from the
executing thread's group, which agent code cannot forge — with the domain
recorded in the proxy at grant time.  Handing the proxy object to another
agent therefore hands over nothing: every invocation from the thief's
domain raises :class:`~repro.errors.CapabilityConfinementError`.
"""

from __future__ import annotations

from repro.errors import CapabilityConfinementError
from repro.sandbox.domain import current_domain

__all__ = ["check_confinement", "current_domain_id"]


def current_domain_id() -> str | None:
    """The id of the protection domain the caller is executing in."""
    domain = current_domain()
    return domain.domain_id if domain is not None else None


def check_confinement(grantee_domain_id: str, target: str = "") -> None:
    """Raise unless the caller executes in the grantee's domain."""
    caller = current_domain_id()
    if caller != grantee_domain_id:
        raise CapabilityConfinementError(
            f"proxy{f' for {target}' if target else ''} was granted to domain"
            f" {grantee_domain_id!r} but invoked from"
            f" {caller!r}"
        )

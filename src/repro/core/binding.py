"""The resource request protocol: the six steps of Fig. 6.

    1. resource registers itself            → :meth:`BindingService.register_resource`
    2. agent requests a resource            → :meth:`BindingService.get_resource`
    3. server looks up resource in registry → inside ``get_resource``
    4. getProxy method is invoked           → the upcall, on the agent's thread
    5. proxy object is returned to agent    → binding recorded in the domain db
    6. agent accesses resource via proxy    → the caller's business

The requesting agent's identity is taken from the *current protection
domain* (the executing thread's group), never from an argument, so an
agent cannot request a proxy on another agent's behalf.

The protocol also realizes section 5.5's dynamic extension: an agent with
the ``system.resource_register`` right can carry a resource object to the
server, register it, and terminate — after which other agents bind to it
through the very same ``get_resource`` path.
"""

from __future__ import annotations

from repro.core.access_protocol import BindingContext
from repro.core.domain_db import DomainDatabase
from repro.core.registry import ResourceRegistry
from repro.core.resource import Resource, ResourceImpl
from repro.core.token import CapabilityToken
from repro.errors import PrivilegeError
from repro.naming.urn import URN
from repro.obs import runtime as _obs
from repro.sandbox.domain import ProtectionDomain, current_domain
from repro.util.audit import AuditLog
from repro.util.clock import Clock

__all__ = ["BindingService"]


class BindingService:
    """Glues registry, policy upcall and domain database together."""

    def __init__(
        self,
        registry: ResourceRegistry,
        domain_db: DomainDatabase,
        clock: Clock,
        audit: AuditLog | None = None,
        server_domain_id: str = "server",
    ) -> None:
        self.registry = registry
        self.domain_db = domain_db
        self.clock = clock
        self.audit = audit
        self.server_domain_id = server_domain_id
        # BindingContext is immutable and per-domain; binding-heavy agents
        # re-bind constantly, so contexts (and their charge-sink closures)
        # are built once per domain instead of once per get_resource.
        self._contexts: dict[str, BindingContext] = {}

    _CONTEXT_CACHE_MAX = 4096

    def _context_for(self, domain: ProtectionDomain) -> BindingContext:
        domain_id = domain.domain_id
        context = self._contexts.get(domain_id)
        if context is None:
            # Ring 0 domains bind without an audit hook: their proxies
            # carry no per-call bookkeeping at all.  Denials from rings
            # 1-2 still audit; authorization itself is ring-blind.
            ring = domain.ring
            context = BindingContext(
                domain_id=domain_id,
                clock=self.clock,
                server_domain_id=self.server_domain_id,
                audit=None if ring == 0 else self.audit,
                on_charge=self._charge_sink(domain_id),
                ring=ring,
            )
            if len(self._contexts) >= self._CONTEXT_CACHE_MAX:
                self._contexts.pop(next(iter(self._contexts)))
            self._contexts[domain_id] = context
        return context

    # -- step 1 -----------------------------------------------------------------

    def register_resource(self, resource: ResourceImpl) -> None:
        """Make a resource available to agents (mediated)."""
        if _obs.TRACING:
            with _obs.TRACER.span(
                "protocol.register",
                resource=str(resource.resource_name()),
                resource_type=type(resource).__name__,
            ):
                self.registry.register(resource)
            return
        self.registry.register(resource)

    # -- steps 2-6 ----------------------------------------------------------------

    def get_resource(
        self, name: URN, token: "CapabilityToken | bytes | None" = None
    ) -> Resource:
        """Obtain a proxy for the named resource, as the current domain.

        Returns the proxy (step 5→6); raises
        :class:`~repro.errors.UnknownNameError` for unregistered names and
        :class:`~repro.errors.AccessDeniedError` when nothing is granted.

        With ``token`` (a :class:`~repro.core.token.CapabilityToken` or
        its wire bytes, typically saved from ``proxy.capability_token()``
        before migrating), a fresh token takes the O(1) redemption path —
        no policy consult; a stale one falls back to the full ``getProxy``
        upcall transparently.
        """
        domain = current_domain()  # step 2: who is asking
        if domain is None:
            raise PrivilegeError(
                "get_resource must be called from within a protection domain"
            )
        if domain.credentials is None:
            raise PrivilegeError(
                f"domain {domain.domain_id!r} has no credentials to present"
            )
        if isinstance(token, (bytes, bytearray)):
            token = CapabilityToken.from_wire(token)
        if not _obs.TRACING:
            resource = self.registry.lookup(name)  # step 3
            context = self._context_for(domain)
            if token is not None:
                proxy = resource.redeem_token(token, domain.credentials, context)
            else:
                proxy = resource.get_proxy(domain.credentials, context)  # step 4
            # step 5: record the binding (trusted code, agent's thread).
            if domain.domain_id in self.domain_db:
                with self.domain_db.privileged():
                    self.domain_db.record_binding(domain.domain_id, name, proxy)
            return proxy  # step 6 happens at the caller

        # Traced variant: one span per Fig. 6 step (step 4 opens its own
        # span inside get_proxy; step 6 is the caller's proxy.invoke).
        tracer = _obs.TRACER
        with tracer.span(
            "protocol.request",
            resource=str(name),
            domain=domain.domain_id,
            agent=str(domain.credentials.agent),
            ring=f"ring{domain.ring}",
        ):
            with tracer.span("protocol.lookup", resource=str(name)):
                resource = self.registry.lookup(name)  # step 3
            context = self._context_for(domain)
            if token is not None:
                with tracer.span("protocol.redeem_token", resource=str(name)):
                    proxy = resource.redeem_token(
                        token, domain.credentials, context
                    )
            else:
                proxy = resource.get_proxy(domain.credentials, context)  # step 4
            with tracer.span("protocol.record_binding", resource=str(name)):
                # step 5: record the binding (trusted code, agent's thread).
                if domain.domain_id in self.domain_db:
                    with self.domain_db.privileged():
                        self.domain_db.record_binding(
                            domain.domain_id, name, proxy
                        )
            return proxy  # step 6 happens at the caller

    def _charge_sink(self, domain_id: str):
        """Accounting flows from proxy meters into the domain database."""

        def on_charge(method: str, amount: float) -> None:
            if domain_id in self.domain_db:
                with self.domain_db.privileged():
                    self.domain_db.add_charge(domain_id, amount)

        return on_charge

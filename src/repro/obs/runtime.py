"""Process-wide observability switchboard.

Instrumentation points all over the codebase (proxy forwarders, the
binding protocol, the transfer path, transports, retries, fault
injection) guard themselves on the module-level flags here::

    from repro.obs import runtime as _obs
    ...
    if _obs.TRACING:
        _obs.TRACER.add_event("retry", attempt=n)

When nothing is installed the cost of a hook is one module-attribute
read and a falsy test — benchmarks F5/F6 pin that this stays within
noise of the uninstrumented build.  ``install``/``uninstall`` flip the
flags; they are process-global on purpose (one simulation per process is
the norm everywhere in this repo), and tests that enable tracing must
uninstall on the way out (see ``tests/obs/conftest.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

__all__ = [
    "TRACING",
    "METRICS_ON",
    "ENABLED",
    "TRACER",
    "METRICS",
    "install",
    "uninstall",
    "annotate",
]

# The fast-path guards.  ENABLED == (TRACING or METRICS_ON); sites that
# feed both systems test the single combined flag.
TRACING: bool = False
METRICS_ON: bool = False
ENABLED: bool = False

TRACER: "Tracer | None" = None
METRICS: "MetricsRegistry | None" = None


def install(
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> None:
    """Turn instrumentation on (either subsystem may be None).

    Calling ``install`` again replaces whichever components are passed
    and leaves the other untouched, so a testbed can install metrics at
    construction and a tracer later.
    """
    global TRACER, METRICS, TRACING, METRICS_ON, ENABLED
    if tracer is not None:
        TRACER = tracer
    if metrics is not None:
        METRICS = metrics
    TRACING = TRACER is not None
    METRICS_ON = METRICS is not None
    ENABLED = TRACING or METRICS_ON


def uninstall() -> None:
    """Turn every hook back into a no-op (drops the installed objects)."""
    global TRACER, METRICS, TRACING, METRICS_ON, ENABLED
    TRACER = None
    METRICS = None
    TRACING = False
    METRICS_ON = False
    ENABLED = False


def annotate(kind: str, detail: str = "", **attributes: Any) -> None:
    """Forward a global annotation to the tracer, if one is installed."""
    if TRACER is not None:
        TRACER.annotate(kind, detail, **attributes)

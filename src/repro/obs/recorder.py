"""The flight recorder: query, reconstruct and assert over traces.

A :class:`FlightRecorder` wraps one :class:`~repro.obs.trace.Tracer` and
answers post-mortem questions — "what happened to agent X on hop 3, and
why was its ``getProxy`` denied?" — that the scattered per-object
counters never could.  It is also the tests' assertion vocabulary:
causal-order checks, span-leak checks, and the Fig. 6 six-step protocol
reconstruction.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.obs.trace import Span, Tracer

__all__ = ["FlightRecorder", "PROTOCOL_STEP_NAMES", "SEGMENT_CATEGORIES"]

# Span-name prefix -> latency segment, for critical-path decomposition.
# First matching prefix wins (checked longest-first); spans matching
# nothing fall into "other".
SEGMENT_CATEGORIES: tuple[tuple[str, str], ...] = (
    ("secure", "crypto"),       # handshakes, sealed calls, MAC work
    ("sec", "crypto"),
    ("rpc", "network"),         # raw transport request/response
    ("net", "network"),
    ("transfer", "queue"),      # departure/admit machinery, retries
    ("report", "queue"),
    ("retry", "queue"),
    ("protocol", "supervision"),  # Fig. 6 binding steps
    ("proxy", "supervision"),     # mediated invocation
    ("admission", "supervision"),
    ("supervisor", "supervision"),
    ("agent", "compute"),       # the agent's own residency/launch time
)


def categorize_span(name: str) -> str:
    """The latency segment a span name belongs to (see SEGMENT_CATEGORIES)."""
    head = name.split(".", 1)[0]
    for prefix, category in SEGMENT_CATEGORIES:
        if head == prefix:
            return category
    return "other"

# Fig. 6's resource request protocol, as span names (step 6 — "agent
# accesses resource via proxy" — is every proxy.invoke span).
PROTOCOL_STEP_NAMES: tuple[tuple[int, str], ...] = (
    (1, "protocol.register"),
    (2, "protocol.request"),
    (3, "protocol.lookup"),
    (4, "protocol.get_proxy"),
    (5, "protocol.record_binding"),
    (6, "proxy.invoke"),
)


class FlightRecorder:
    """Read-side companion of a tracer."""

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer

    # -- raw access --------------------------------------------------------

    def spans(self, *, include_open: bool = False) -> list[Span]:
        return self.tracer.spans(include_open=include_open)

    def open_spans(self) -> list[Span]:
        return self.tracer.open_spans()

    def annotations(self, kind: str | None = None) -> list[tuple]:
        if kind is None:
            return list(self.tracer.annotations)
        return [a for a in self.tracer.annotations if a[1] == kind]

    # -- queries -----------------------------------------------------------

    def spans_where(
        self,
        name: str | None = None,
        *,
        trace_id: str | None = None,
        status: str | None = None,
        predicate: Callable[[Span], bool] | None = None,
        include_open: bool = False,
        **attributes: Any,
    ) -> list[Span]:
        """Filter spans by name, trace, status and attribute equality."""
        out = []
        for span in self.tracer.spans(include_open=include_open):
            if name is not None and span.name != name:
                continue
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if status is not None and span.status != status:
                continue
            if any(span.attributes.get(k) != v for k, v in attributes.items()):
                continue
            if predicate is not None and not predicate(span):
                continue
            out.append(span)
        return self._causal_sort(out)

    def trace_ids_of(self, agent_urn: Any) -> list[str]:
        """Distinct traces that mention the agent, in first-seen order."""
        agent = str(agent_urn)
        seen: dict[str, None] = {}
        for span in self.tracer.spans(include_open=True):
            if span.attributes.get("agent") == agent:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def trace_of(self, agent_urn: Any) -> list[Span]:
        """Every span of the agent's (single) trace, causally ordered.

        Raises :class:`ValueError` when the agent appears in zero or in
        more than one trace — more than one means context propagation
        broke somewhere, which is precisely what tests must catch.
        """
        ids = self.trace_ids_of(agent_urn)
        if len(ids) != 1:
            raise ValueError(
                f"agent {agent_urn} appears in {len(ids)} traces: {ids}"
            )
        return self.spans_where(trace_id=ids[0], include_open=True)

    def span_by_id(self, span_id: str) -> Span | None:
        for span in self.tracer.spans(include_open=True):
            if span.span_id == span_id:
                return span
        return None

    # -- causal structure --------------------------------------------------

    def _causal_sort(self, spans: list[Span]) -> list[Span]:
        """Start-time order with span-id sequence as the tiebreak.

        Span ids are allocated monotonically from one counter, so the
        tiebreak reflects program order even when many spans open at the
        same virtual instant.
        """
        return sorted(spans, key=lambda s: (s.start, s.span_id))

    def is_ancestor(self, ancestor: Span, descendant: Span) -> bool:
        """True when ``ancestor`` is on ``descendant``'s parent chain."""
        if ancestor.trace_id != descendant.trace_id:
            return False
        by_id = {
            s.span_id: s
            for s in self.tracer.spans(include_open=True)
            if s.trace_id == descendant.trace_id
        }
        cursor = descendant
        while cursor.parent_id is not None:
            if cursor.parent_id == ancestor.span_id:
                return True
            nxt = by_id.get(cursor.parent_id)
            if nxt is None:
                return False
            cursor = nxt
        return False

    def assert_causal_order(self, spans: Iterable[Span]) -> None:
        """Assert the given spans share a trace and start in list order.

        The workhorse of protocol-order tests: pass the spans in the
        order the protocol mandates; any out-of-order start (or a trace
        mismatch) raises :class:`AssertionError` naming the offenders.
        """
        spans = list(spans)
        for earlier, later in zip(spans, spans[1:]):
            if earlier.trace_id != later.trace_id:
                raise AssertionError(
                    f"{earlier.name} ({earlier.trace_id}) and {later.name}"
                    f" ({later.trace_id}) are not in the same trace"
                )
            if (earlier.start, earlier.span_id) > (later.start, later.span_id):
                raise AssertionError(
                    f"{earlier.name} (start={earlier.start}, {earlier.span_id})"
                    f" does not precede {later.name}"
                    f" (start={later.start}, {later.span_id})"
                )

    def assert_no_open_spans(self) -> None:
        leaked = self.open_spans()
        if leaked:
            names = ", ".join(f"{s.name}[{s.span_id}]" for s in leaked)
            raise AssertionError(f"{len(leaked)} span(s) left open: {names}")

    # -- Fig. 6 reconstruction ---------------------------------------------

    def protocol_steps(
        self, agent_urn: Any, resource: str | None = None
    ) -> list[tuple[int, Span]]:
        """The six-step resource request protocol, reassembled.

        Returns ``(step_number, span)`` pairs in causal order for the
        agent's trace: step 1 is the resource's registration span (found
        in *any* trace — servers register resources before agents
        arrive), steps 2–5 are the binding spans in the agent's trace,
        and step 6 is every subsequent proxy invocation.  ``resource``
        narrows the reconstruction to one resource name/type.
        """
        steps: list[tuple[int, Span]] = []
        registered = self.spans_where("protocol.register")
        if resource is not None:
            registered = [
                s for s in registered
                if s.attributes.get("resource") == resource
                or s.attributes.get("resource_type") == resource
            ]
        steps.extend((1, s) for s in registered)
        trace_spans = self.trace_of(agent_urn)
        for span in trace_spans:
            for number, name in PROTOCOL_STEP_NAMES[1:]:
                if span.name != name:
                    continue
                if resource is not None and span.attributes.get(
                    "resource"
                ) != resource and span.attributes.get("resource_type") != resource:
                    continue
                steps.append((number, span))
        return steps

    # -- critical-path decomposition ----------------------------------------

    def critical_path(self, trace: "str | Any | Iterable[Span]") -> dict:
        """Decompose one trace's wall-clock latency into segments.

        ``trace`` is a trace id, an agent URN (resolved via
        :meth:`trace_of`), or an explicit span list.  The trace's total
        latency (first start to last end) is partitioned into elementary
        intervals at every span boundary; each interval is attributed to
        the **innermost open span** at that instant — the latest-started
        open span, with span-id sequence as the deterministic tiebreak —
        and the span's name prefix picks the segment
        (:data:`SEGMENT_CATEGORIES`).  Intervals where *no* span is open
        count as ``"gap"`` (scheduler/queue time between recorded
        operations).  The segments partition the total exactly:
        ``sum(segments.values())`` equals ``total`` up to float
        rounding, which the O1 bench pins.

        Returns ``{"total", "start", "end", "segments": {category:
        seconds}, "by_span_name": {name: seconds}}``.
        """
        spans = self._resolve_trace(trace)
        closed = [s for s in spans if s.end is not None]
        if not closed:
            return {
                "total": 0.0, "start": 0.0, "end": 0.0,
                "segments": {}, "by_span_name": {},
            }
        start = min(s.start for s in closed)
        end = max(s.end for s in closed)
        boundaries = sorted(
            {s.start for s in closed} | {s.end for s in closed}
        )
        # Deterministic innermost choice: order once by (start, span_id).
        ordered = sorted(closed, key=lambda s: (s.start, s.span_id))
        segments: dict[str, float] = {}
        by_name: dict[str, float] = {}
        for t0, t1 in zip(boundaries, boundaries[1:]):
            width = t1 - t0
            if width <= 0:
                continue
            innermost = None
            for span in ordered:  # last match = latest-started open span
                if span.start <= t0 and span.end >= t1:
                    innermost = span
            if innermost is None:
                segments["gap"] = segments.get("gap", 0.0) + width
                continue
            category = categorize_span(innermost.name)
            segments[category] = segments.get(category, 0.0) + width
            by_name[innermost.name] = by_name.get(innermost.name, 0.0) + width
        return {
            "total": end - start,
            "start": start,
            "end": end,
            "segments": segments,
            "by_span_name": by_name,
        }

    def _resolve_trace(self, trace: "str | Any | Iterable[Span]") -> list[Span]:
        if isinstance(trace, str):
            if trace.startswith("trace-"):
                return self.spans_where(trace_id=trace, include_open=True)
            return self.trace_of(trace)
        if isinstance(trace, (list, tuple)):
            return list(trace)
        if hasattr(trace, "authority"):  # a URN
            return self.trace_of(trace)
        return list(trace)

    # -- export pass-throughs ----------------------------------------------

    def export_jsonl(self, path: str | None = None) -> str:
        return self.tracer.export_jsonl(path)

    def export_chrome(self, path: str | None = None) -> dict[str, Any]:
        return self.tracer.export_chrome(path)

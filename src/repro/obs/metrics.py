"""A process-wide, labeled metrics namespace.

The repo accumulated ad-hoc :class:`repro.sim.monitor.Counter` objects —
``AgentServer.stats``, transport ``call_timeouts``/``replies_duplicate``,
secure-channel rejection tallies, fault-injector counts — each living on
its own object with its own names.  :class:`MetricsRegistry` pulls them
behind one namespace without touching their hot paths: a registered
*source* is read lazily at :meth:`scrape` time (zero per-increment cost),
while first-class counters, gauges and histograms are for new
instrumentation (proxy invocation latency, deny counts).

Naming follows Prometheus conventions loosely: a metric is
``name{label=value,...}`` with labels sorted, e.g.
``server_stats.transfers_out{server=urn:server:site1.net/s1}``.

Histograms use **fixed log-spaced buckets** (powers of two by default) so
``observe`` is a bisect into a static tuple — allocation-free, in the
spirit of :mod:`repro.sim.monitor`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "render_scrape",
]


def _label_suffix(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count (one registry cell)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A settable instantaneous value, or a lazily sampled callable."""

    __slots__ = ("_value", "_fn")

    def __init__(self, fn: Callable[[], float] | None = None) -> None:
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError("cannot set a callable-backed gauge")
        self._value = value

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value


# Default bounds: 2^8 .. 2^32 — tuned for nanosecond latencies (256 ns to
# ~4.3 s) but serviceable for byte sizes and virtual-time milliseconds.
DEFAULT_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    float(2**k) for k in range(8, 33)
)


class Histogram:
    """Fixed log-spaced buckets; ``observe`` is a bisect, no allocation."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Iterable[float] | None = None) -> None:
        self.bounds: tuple[float, ...] = (
            tuple(bounds) if bounds is not None else DEFAULT_BUCKET_BOUNDS
        )
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram bounds must be sorted and non-empty")
        # counts[i] tallies observations <= bounds[i]; the final slot is
        # the overflow bucket (> bounds[-1]).
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Upper bucket bound containing the ``q`` quantile (bucket estimate)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max  # pragma: no cover - rank <= count always hits

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }

    # -- mergeable state (federated aggregation, repro.obs.aggregate) ------

    def state(self) -> dict[str, Any]:
        """The full mergeable state (bounds + per-bucket counts).

        Unlike :meth:`summary` this loses nothing: two histograms with
        the same bounds merge bucket-wise with total mass preserved.
        """
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "Histogram":
        hist = cls(state["bounds"])
        counts = list(state["counts"])
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram state has {len(counts)} buckets for "
                f"{len(hist.counts)} bounds slots"
            )
        if any(c < 0 for c in counts):
            raise ValueError("histogram bucket counts cannot be negative")
        hist.counts = counts
        hist.count = int(state["count"])
        hist.total = float(state["total"])
        hist.min = float(state["min"])
        hist.max = float(state["max"])
        return hist

    def merge(self, other: "Histogram | Mapping[str, Any]") -> "Histogram":
        """Fold another histogram (or its :meth:`state`) into this one.

        Bucket-wise: both histograms must use identical bounds — the
        log-spaced default makes that the normal case across servers.
        Raises :class:`ValueError` on a bounds mismatch rather than
        silently re-bucketing (which would shift quantiles).
        """
        if not isinstance(other, Histogram):
            other = Histogram.from_state(other)
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds: "
                f"{other.bounds[:3]}... vs {self.bounds[:3]}..."
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self


class MetricsRegistry:
    """Counters, gauges, histograms and absorbed legacy sources.

    One registry per world (the :class:`~repro.server.testbed.Testbed`
    builds one); ``scrape()`` flattens everything into a single dict —
    the text renderer is what benchmarks print.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # (prefix, labels suffix) -> object with as_dict()
        self._sources: list[tuple[str, str, Any]] = []

    # -- first-class instruments ------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = name + _label_suffix(labels)
        cell = self._counters.get(key)
        if cell is None:
            cell = self._counters[key] = Counter()
        return cell

    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        self.counter(name, **labels).inc(amount)

    def gauge(self, name: str, fn: Callable[[], float] | None = None,
              **labels: Any) -> Gauge:
        key = name + _label_suffix(labels)
        cell = self._gauges.get(key)
        if cell is None:
            cell = self._gauges[key] = Gauge(fn)
        return cell

    def histogram(self, name: str, bounds: Iterable[float] | None = None,
                  **labels: Any) -> Histogram:
        key = name + _label_suffix(labels)
        cell = self._histograms.get(key)
        if cell is None:
            cell = self._histograms[key] = Histogram(bounds)
        return cell

    # -- absorbing legacy per-object counters ------------------------------

    def register_source(self, prefix: str, source: Any, **labels: Any) -> None:
        """Alias an existing stats object into this namespace.

        ``source`` is anything with ``as_dict() -> dict[str, number]``
        (:class:`repro.sim.monitor.Counter` included).  Nothing is copied
        now: the source is read when scraped, so the owning hot paths are
        untouched.
        """
        if not hasattr(source, "as_dict"):
            raise TypeError(f"metrics source {source!r} has no as_dict()")
        self._sources.append((prefix, _label_suffix(labels), source))

    # -- snapshot support (repro.obs.aggregate) ----------------------------

    def flatten(
        self,
    ) -> tuple[dict[str, int | float], dict[str, float], dict[str, Histogram]]:
        """``(counters, gauges, histogram cells)`` with sources folded in.

        Registered legacy sources are counters by construction
        (:class:`repro.sim.monitor.Counter`); a non-numeric source value
        is skipped, a float source value lands with the gauges.  The
        histogram dict holds the *live* cells — snapshot them via
        :meth:`Histogram.state` before letting go of the registry.
        """
        counters: dict[str, int | float] = {}
        gauges: dict[str, float] = {}
        for prefix, suffix, source in self._sources:
            for name, value in source.as_dict().items():
                key = f"{prefix}.{name}{suffix}"
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                if isinstance(value, float):
                    gauges[key] = value
                else:
                    counters[key] = counters.get(key, 0) + value
        for key, counter in self._counters.items():
            counters[key] = counters.get(key, 0) + counter.value
        for key, gauge in self._gauges.items():
            gauges[key] = gauge.value
        return counters, gauges, dict(self._histograms)

    # -- output ------------------------------------------------------------

    def scrape(self) -> dict[str, Any]:
        """Everything, flattened: ``{"name{labels}": value-or-summary}``."""
        out: dict[str, Any] = {}
        for prefix, suffix, source in self._sources:
            for name, value in source.as_dict().items():
                out[f"{prefix}.{name}{suffix}"] = value
        for key, counter in self._counters.items():
            out[key] = counter.value
        for key, gauge in self._gauges.items():
            out[key] = gauge.value
        for key, hist in self._histograms.items():
            out[key] = hist.summary()
        return out

    def render_text(self) -> str:
        """Sorted ``key value`` lines (histograms one line per stat)."""
        return render_scrape(self.scrape())


def render_scrape(scrape: Mapping[str, Any]) -> str:
    """Render any flattened scrape dict as sorted ``key value`` lines.

    Shared by :meth:`MetricsRegistry.render_text` and the offline
    ``python -m repro telemetry print`` CLI, so a scrape saved to disk
    pretty-prints identically to a live one.
    """
    lines: list[str] = []
    for key, value in sorted(scrape.items()):
        if isinstance(value, dict):
            for stat, v in value.items():
                if isinstance(v, (int, float)):
                    lines.append(f"{key}.{stat} {v:g}")
                else:  # pragma: no cover - foreign summary entries
                    lines.append(f"{key}.{stat} {v}")
        elif isinstance(value, float):
            lines.append(f"{key} {value:g}")
        else:
            lines.append(f"{key} {value}")
    return "\n".join(lines) + ("\n" if lines else "")

"""Service-level objectives and conservation-law watchdogs.

Benchmarks kept re-deriving the same judgments by hand: "was
availability ≥ 99.9% through the partition window?", "is p99 invoke
latency still bounded?", "does ``hosted − transfers_out ==
completions`` hold?".  This module promotes them into reusable runtime
objects:

* **windowed objectives** — :class:`AvailabilityObjective` (good/total
  ratio over a sliding virtual-time window), :class:`LatencyObjective`
  (histogram quantile against a threshold) and
  :class:`GoodputObjective` (event rate floor), each reporting a **burn
  rate**: how fast the error budget is being consumed (1.0 = exactly on
  target; above 1.0 the objective will be violated if the trend holds);
* **invariant objectives** — conservation laws as residual functions
  whose only acceptable value is zero (``hosted − out == completions``,
  ``replica divergence == 0``, ``audit drops == 0``); any nonzero
  residual is a violation *now*, not a trend;
* an :class:`SLOMonitor` that owns a set of objectives, evaluates them
  on demand or on a periodic daemon sweep (:meth:`watch`), keeps a
  violation history, and turns into a metrics source
  (``slo.sweeps``/``slo.violations``) for the telemetry plane.

Invariants of the ``hosted − out == completions`` kind are *quiescence*
laws — mid-flight agents make the residual legitimately positive — so
benches assert them after ``kernel.run()`` drains; continuously valid
watchdogs (audit drops, replica divergence) are safe on a live sweep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, NamedTuple

from repro.errors import ReproError
from repro.obs.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel, RepeatingEvent

__all__ = [
    "SLOStatus",
    "AvailabilityObjective",
    "LatencyObjective",
    "GoodputObjective",
    "InvariantObjective",
    "SLOMonitor",
    "agent_conservation_residual",
    "healed_conservation_residual",
    "FORCIBLE_REMOVAL_COUNTERS",
    "replica_divergence_residual",
    "audit_drop_residual",
]


class SLOStatus(NamedTuple):
    """One objective's verdict at one instant."""

    name: str
    kind: str  # "availability" | "latency" | "goodput" | "invariant"
    ok: bool
    value: float
    target: float
    burn_rate: float
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - human formatting
        verdict = "OK  " if self.ok else "VIOL"
        return (
            f"[{verdict}] {self.kind:12s} {self.name}: value={self.value:g}"
            f" target={self.target:g} burn={self.burn_rate:g} {self.detail}"
        )


class _Windowed:
    """Shared sliding-window event store: (time, payload) pairs."""

    def __init__(self, clock: Any, window: float) -> None:
        if window <= 0:
            raise ReproError(f"SLO window must be positive: {window}")
        self.clock = clock
        self.window = window
        self._events: list[tuple[float, Any]] = []

    def _push(self, payload: Any) -> None:
        self._events.append((self.clock.now(), payload))

    def _prune(self) -> list[tuple[float, Any]]:
        horizon = self.clock.now() - self.window
        # Events are appended in time order (virtual clocks never run
        # backward), so a single slice keeps this O(expired).
        i = 0
        events = self._events
        while i < len(events) and events[i][0] < horizon:
            i += 1
        if i:
            del events[:i]
        return events


class AvailabilityObjective(_Windowed):
    """good/total ratio over the window must stay ≥ ``target``.

    With no events in the window the objective reports healthy (an idle
    service is not failing).  Burn rate is error-budget consumption:
    ``(1 - value) / (1 - target)`` — e.g. 99.0% observed against a
    99.9% target burns 10× budget.
    """

    kind = "availability"

    def __init__(
        self, name: str, clock: Any, *, target: float = 0.999,
        window: float = 60.0,
    ) -> None:
        if not 0.0 < target <= 1.0:
            raise ReproError(f"availability target must be in (0, 1]: {target}")
        super().__init__(clock, window)
        self.name = name
        self.target = target

    def record(self, good: bool, count: int = 1) -> None:
        self._push((bool(good), count))

    def evaluate(self) -> SLOStatus:
        events = self._prune()
        total = sum(n for _, (_, n) in events)
        good = sum(n for _, (g, n) in events if g)
        value = good / total if total else 1.0
        budget = 1.0 - self.target
        consumed = 1.0 - value
        if consumed <= 0:
            burn = 0.0
        elif budget <= 0:
            burn = float("inf")
        else:
            burn = consumed / budget
        return SLOStatus(
            self.name, self.kind, value >= self.target, value, self.target,
            burn, f"{good}/{total} good in {self.window:g}s",
        )


class LatencyObjective:
    """A histogram quantile must stay ≤ ``threshold``.

    ``histogram`` is a live :class:`~repro.obs.metrics.Histogram` cell
    (cumulative — the window is the histogram's own lifetime) or a
    zero-argument callable returning one (to read a fresh cell each
    sweep, e.g. out of the collector's cluster registry).  No data means
    healthy.  Burn rate is ``observed / threshold``.
    """

    kind = "latency"

    def __init__(
        self,
        name: str,
        histogram: "Histogram | Callable[[], Histogram | None]",
        *,
        threshold: float,
        quantile: float = 0.99,
    ) -> None:
        if threshold <= 0:
            raise ReproError(f"latency threshold must be positive: {threshold}")
        self.name = name
        self._histogram = histogram
        self.threshold = threshold
        self.quantile = quantile

    def evaluate(self) -> SLOStatus:
        hist = self._histogram() if callable(self._histogram) else self._histogram
        if hist is None or hist.count == 0:
            return SLOStatus(
                self.name, self.kind, True, 0.0, self.threshold, 0.0,
                "no observations",
            )
        value = hist.quantile(self.quantile)
        return SLOStatus(
            self.name, self.kind, value <= self.threshold, value,
            self.threshold, value / self.threshold,
            f"p{int(self.quantile * 100)} of {hist.count} observations",
        )


class GoodputObjective(_Windowed):
    """Completed work per second over the window must stay ≥ ``target``.

    Burn rate inverts the ratio (target/value): starvation burns hot.
    The objective only arms once it has seen its first event, so a
    world that has not started yet is not "violating goodput".
    """

    kind = "goodput"

    def __init__(
        self, name: str, clock: Any, *, target: float, window: float = 60.0
    ) -> None:
        if target <= 0:
            raise ReproError(f"goodput target must be positive: {target}")
        super().__init__(clock, window)
        self.name = name
        self.target = target
        self._armed = False

    def record(self, count: int = 1) -> None:
        self._armed = True
        self._push(count)

    def evaluate(self) -> SLOStatus:
        events = self._prune()
        if not self._armed:
            return SLOStatus(
                self.name, self.kind, True, 0.0, self.target, 0.0, "not armed"
            )
        rate = sum(n for _, n in events) / self.window
        burn = self.target / rate if rate > 0 else float("inf")
        return SLOStatus(
            self.name, self.kind, rate >= self.target, rate, self.target,
            burn, f"{len(events)} batches in {self.window:g}s",
        )


class InvariantObjective:
    """A conservation law: the residual function must return zero."""

    kind = "invariant"

    def __init__(
        self, name: str, residual: Callable[[], float], detail: str = ""
    ) -> None:
        self.name = name
        self.residual = residual
        self.detail = detail

    def evaluate(self) -> SLOStatus:
        value = float(self.residual())
        return SLOStatus(
            self.name, self.kind, value == 0.0, value, 0.0, abs(value),
            self.detail,
        )


class SLOMonitor:
    """A set of objectives, evaluated on demand or on a daemon sweep."""

    def __init__(self, clock: Any) -> None:
        self.clock = clock
        self.objectives: list[Any] = []
        # (virtual time, SLOStatus) for every violation a sweep saw.
        self.violation_history: list[tuple[float, SLOStatus]] = []
        self.sweeps = 0
        self._ticker: "RepeatingEvent | None" = None

    # -- building ------------------------------------------------------------

    def add(self, objective: Any) -> Any:
        self.objectives.append(objective)
        return objective

    def add_availability(
        self, name: str, *, target: float = 0.999, window: float = 60.0
    ) -> AvailabilityObjective:
        return self.add(
            AvailabilityObjective(name, self.clock, target=target, window=window)
        )

    def add_latency(
        self,
        name: str,
        histogram: "Histogram | Callable[[], Histogram | None]",
        *,
        threshold: float,
        quantile: float = 0.99,
    ) -> LatencyObjective:
        return self.add(
            LatencyObjective(
                name, histogram, threshold=threshold, quantile=quantile
            )
        )

    def add_goodput(
        self, name: str, *, target: float, window: float = 60.0
    ) -> GoodputObjective:
        return self.add(
            GoodputObjective(name, self.clock, target=target, window=window)
        )

    def add_invariant(
        self, name: str, residual: Callable[[], float], detail: str = ""
    ) -> InvariantObjective:
        return self.add(InvariantObjective(name, residual, detail))

    # -- evaluation ----------------------------------------------------------

    def evaluate(self) -> list[SLOStatus]:
        return [objective.evaluate() for objective in self.objectives]

    def violations(self) -> list[SLOStatus]:
        return [status for status in self.evaluate() if not status.ok]

    def ok(self) -> bool:
        return not self.violations()

    def assert_ok(self) -> None:
        """Raise :class:`AssertionError` naming every violated objective."""
        bad = self.violations()
        if bad:
            lines = "\n  ".join(str(status) for status in bad)
            raise AssertionError(f"{len(bad)} SLO violation(s):\n  {lines}")

    def render(self) -> str:
        """Every objective's verdict, one line each."""
        lines = [str(status) for status in self.evaluate()]
        return "\n".join(lines) + ("\n" if lines else "")

    # -- the watchdog sweep ---------------------------------------------------

    def watch(self, kernel: "Kernel", period: float = 5.0) -> "RepeatingEvent":
        """Evaluate every objective each ``period`` virtual seconds.

        Daemon tick: the watchdog never keeps the world alive.
        Violations accumulate in :attr:`violation_history` with their
        virtual timestamps, so a post-run assertion can say not just
        *that* an objective broke but *when*.
        """
        if self._ticker is not None and not self._ticker.cancelled:
            raise ReproError("monitor is already watching")
        self._ticker = kernel.every(period, self._sweep, daemon=True)
        return self._ticker

    def unwatch(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None

    def _sweep(self) -> None:
        self.sweeps += 1
        now = self.clock.now()
        for status in self.evaluate():
            if not status.ok:
                self.violation_history.append((now, status))

    def tripped(self, name: str | None = None) -> bool:
        """Did any sweep (or one named objective) ever record a violation?"""
        if name is None:
            return bool(self.violation_history)
        return any(status.name == name for _, status in self.violation_history)

    # -- metrics-source protocol ----------------------------------------------

    def as_dict(self) -> dict[str, int]:
        """Registerable as a metrics source (``register_source("slo", m)``)."""
        return {
            "objectives": len(self.objectives),
            "sweeps": self.sweeps,
            "violations_seen": len(self.violation_history),
        }


# ---------------------------------------------------------------------------
# Conservation residuals (the laws the benches kept re-deriving)
# ---------------------------------------------------------------------------


def agent_conservation_residual(servers: Iterable[Any]) -> Callable[[], int]:
    """``hosted − transfers_out − completions − residents`` over a fleet.

    A true any-time law: every admission is either still resident,
    departed onward, or completed — so a watchdog can sweep a *busy*
    world without tripping on agents that are merely mid-tour (at
    quiescence ``residents`` is zero and this reduces to the familiar
    hosted == out + completed).  Forcible terminations (security kills,
    lifetime limits, crashes) legitimately leave a positive residual —
    add their counters to the expectation in scenarios that use them.
    """
    fleet = list(servers)

    def residual() -> int:
        hosted = sum(s.stats["agents_hosted"] for s in fleet)
        out = sum(s.stats["transfers_out"] for s in fleet)
        completed = sum(s.stats["agents_completed"] for s in fleet)
        resident = sum(s.current_residents() for s in fleet)
        return hosted - out - completed - resident

    return residual


# Every counter that records a forcible removal of a resident: the
# server popped the thread without a matching departure or completion.
FORCIBLE_REMOVAL_COUNTERS = (
    "agents_killed_crash",
    "agents_killed_drain",
    "agents_killed_lifetime",
    "agents_killed_security",
    "agents_terminated_by_owner",
    "agents_terminated_transfer",
    "agents_failed",
    "agents_failed_materialize",
)


def healed_conservation_residual(servers: Iterable[Any]) -> Callable[[], int]:
    """The conservation law with forcible removals accounted for.

    The base residual counts +1 for every resident a server forcibly
    removed (crash, drain, lifetime, security, owner command, transfer
    exhaustion, agent bug): the admission was counted but no departure
    or completion ever balances it.  Each such removal also bumps
    exactly one kill counter, and every self-healing relaunch (re-home
    at a survivor, re-home at home, drain fallback) is a fresh
    ``agents_hosted`` admission balanced by its own eventual outcome —
    so ``base residual − Σ kill counters`` is identically zero for a
    correctly accounting fleet, *through* crashes, drains and re-homing.
    A positive value means an agent evaporated without its removal being
    recorded; a negative one means double accounting (e.g. the same
    agent admitted twice for one handoff).
    """
    fleet = list(servers)
    base = agent_conservation_residual(fleet)

    def residual() -> int:
        removed = sum(
            s.stats[counter]
            for s in fleet
            for counter in FORCIBLE_REMOVAL_COUNTERS
        )
        return base() - removed

    return residual


def replica_divergence_residual(oracle: Any) -> Callable[[], int]:
    """``len(oracle.divergences())`` — zero once anti-entropy converged."""

    def residual() -> int:
        return len(oracle.divergences())

    return residual


def audit_drop_residual(servers: Iterable[Any]) -> Callable[[], int]:
    """Total audit-log evictions across the fleet — zero means the ring
    buffers are keeping up and no security decision went unrecorded."""
    fleet = list(servers)

    def residual() -> int:
        return sum(s.audit.dropped for s in fleet)

    return residual

"""repro.obs — the flight recorder: tracing, metrics, post-mortem queries.

Three pillars (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — :class:`Tracer` producing causally linked
  spans whose context **propagates across agent migration** (carried in
  ``AgentImage.attributes`` like ``transfer_id``), exported as JSONL or
  Chrome trace-event JSON.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, log-bucket histograms) that also absorbs the
  legacy per-object stat counters behind one labeled namespace.
* :mod:`repro.obs.recorder` — :class:`FlightRecorder`, the query and
  assertion API over a tracer (``trace_of``, ``spans_where``, causal
  order checks, Fig. 6 protocol reconstruction, span-leak checks).

Instrumentation hooks across the codebase are no-ops until
:func:`install` flips the module-level flags in
:mod:`repro.obs.runtime`; the convenient way in is
``Testbed.start_tracing()``.
"""

from repro.obs.aggregate import (
    TELEMETRY_APP_KIND,
    MetricSnapshot,
    TelemetryCollector,
    TelemetryUnit,
    snapshot_delta,
)
from repro.obs.metrics import Histogram, MetricsRegistry, render_scrape
from repro.obs.profiler import SamplingProfiler
from repro.obs.recorder import (
    PROTOCOL_STEP_NAMES,
    SEGMENT_CATEGORIES,
    FlightRecorder,
)
from repro.obs.runtime import install, uninstall
from repro.obs.slo import (
    AvailabilityObjective,
    GoodputObjective,
    InvariantObjective,
    LatencyObjective,
    SLOMonitor,
    SLOStatus,
    agent_conservation_residual,
    audit_drop_residual,
    replica_divergence_residual,
)
from repro.obs.trace import Span, SpanContext, Tracer, WallClock


def __getattr__(name: str):
    # CollectorAgent pulls in the agent stack, which itself imports
    # repro.obs — resolve it lazily to keep the package import acyclic.
    if name == "CollectorAgent":
        from repro.obs import aggregate

        return aggregate.CollectorAgent
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Tracer",
    "Span",
    "SpanContext",
    "WallClock",
    "MetricsRegistry",
    "Histogram",
    "render_scrape",
    "FlightRecorder",
    "PROTOCOL_STEP_NAMES",
    "SEGMENT_CATEGORIES",
    "install",
    "uninstall",
    # federation (repro.obs.aggregate)
    "TELEMETRY_APP_KIND",
    "MetricSnapshot",
    "TelemetryUnit",
    "TelemetryCollector",
    "CollectorAgent",
    "snapshot_delta",
    # profiling (repro.obs.profiler)
    "SamplingProfiler",
    # objectives (repro.obs.slo)
    "SLOMonitor",
    "SLOStatus",
    "AvailabilityObjective",
    "LatencyObjective",
    "GoodputObjective",
    "InvariantObjective",
    "agent_conservation_residual",
    "replica_divergence_residual",
    "audit_drop_residual",
]

"""repro.obs — the flight recorder: tracing, metrics, post-mortem queries.

Three pillars (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — :class:`Tracer` producing causally linked
  spans whose context **propagates across agent migration** (carried in
  ``AgentImage.attributes`` like ``transfer_id``), exported as JSONL or
  Chrome trace-event JSON.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, log-bucket histograms) that also absorbs the
  legacy per-object stat counters behind one labeled namespace.
* :mod:`repro.obs.recorder` — :class:`FlightRecorder`, the query and
  assertion API over a tracer (``trace_of``, ``spans_where``, causal
  order checks, Fig. 6 protocol reconstruction, span-leak checks).

Instrumentation hooks across the codebase are no-ops until
:func:`install` flips the module-level flags in
:mod:`repro.obs.runtime`; the convenient way in is
``Testbed.start_tracing()``.
"""

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.recorder import PROTOCOL_STEP_NAMES, FlightRecorder
from repro.obs.runtime import install, uninstall
from repro.obs.trace import Span, SpanContext, Tracer, WallClock

__all__ = [
    "Tracer",
    "Span",
    "SpanContext",
    "WallClock",
    "MetricsRegistry",
    "Histogram",
    "FlightRecorder",
    "PROTOCOL_STEP_NAMES",
    "install",
    "uninstall",
]

"""Federated metrics: per-host telemetry units and the cluster collector.

PR 3's :class:`~repro.obs.metrics.MetricsRegistry` sees one process —
the testbed registers every server's counters into a single omniscient
registry.  A federation of thousands of servers has no such registry:
each host only knows its own numbers.  This module closes the gap the
way Prometheus federation does:

* every host owns a :class:`TelemetryUnit` — a local registry plus the
  host's identifying labels — and serves *cumulative* snapshots of it
  over the authenticated ``telemetry.scrape`` secure-channel op;
* a :class:`TelemetryCollector` pulls those snapshots (kernel-scheduled
  scrape rounds on a daemon tick, or hop-by-hop via the touring
  :class:`CollectorAgent`) and materializes one cluster-level registry.

Counters travel **cumulative** on the wire and the collector computes
deltas against the last value it saw per target.  Serving deltas would
lose increments whenever a scrape reply is dropped; cumulative values
make the scrape idempotent — the final successful scrape alone yields
exact totals, which is what the O1 bench's conservation check pins.  A
counter observed *below* its last-seen value means the source restarted
(``crash()``/``restart()`` zeroes nothing here, but a fresh process
would): the full observed value is taken as the delta.  Histograms
federate the same way, bucket-wise (log-spaced bounds are identical
across hosts by construction), so quantile mass is preserved under
merge.  Gauges are instantaneous: newest scrape wins.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ReproError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim.monitor import Counter
from repro.util.serialization import decode, encode

__all__ = [
    "TELEMETRY_APP_KIND",
    "MetricSnapshot",
    "TelemetryUnit",
    "TelemetryCollector",
    "CollectorAgent",
    "snapshot_delta",
]

# The secure-channel application kind every telemetry-serving host binds.
TELEMETRY_APP_KIND = "telemetry.scrape"


def _finite(value: float) -> float:
    """JSON-safe float (inf/nan from empty histograms -> 0.0)."""
    return value if math.isfinite(value) else 0.0


class MetricSnapshot:
    """One host's metrics at one instant, in mergeable form.

    ``counters``/``gauges`` are flat ``name{labels}`` -> value maps;
    ``histograms`` maps the same keys to :meth:`Histogram.state` dicts.
    Everything is plain ``dict``/``list``/scalars, so a snapshot crosses
    the wire with :func:`repro.util.serialization.encode` and lands in a
    JSON file unchanged (the ``python -m repro telemetry`` CLI).
    """

    __slots__ = ("origin", "captured_at", "counters", "gauges", "histograms")

    def __init__(
        self,
        origin: str,
        captured_at: float,
        counters: dict[str, int | float],
        gauges: dict[str, float],
        histograms: dict[str, dict[str, Any]],
    ) -> None:
        self.origin = origin
        self.captured_at = captured_at
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms

    @classmethod
    def of(
        cls, registry: MetricsRegistry, origin: str, at: float
    ) -> "MetricSnapshot":
        """Capture ``registry`` (sources folded in, histograms copied)."""
        counters, gauges, cells = registry.flatten()
        return cls(
            origin=origin,
            captured_at=at,
            counters=counters,
            gauges=gauges,
            histograms={key: hist.state() for key, hist in cells.items()},
        )

    # -- wire / file formats -----------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        return {
            "origin": self.origin,
            "captured_at": self.captured_at,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "MetricSnapshot":
        return cls(
            origin=str(wire["origin"]),
            captured_at=float(wire["captured_at"]),
            counters=dict(wire["counters"]),
            gauges=dict(wire["gauges"]),
            histograms={k: dict(v) for k, v in wire["histograms"].items()},
        )

    def to_json(self) -> str:
        wire = self.to_wire()
        # Empty histograms carry min=inf/max=-inf; strict JSON has no
        # Infinity, so clamp (merge() recomputes extrema from counts=0).
        for state in wire["histograms"].values():
            state["min"] = _finite(state["min"])
            state["max"] = _finite(state["max"])
        return json.dumps(wire, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "MetricSnapshot":
        snap = cls.from_wire(json.loads(text))
        for state in snap.histograms.values():
            if state["count"] == 0:
                state["min"] = math.inf
                state["max"] = -math.inf
        return snap

    # -- views --------------------------------------------------------------

    def scrape(self) -> dict[str, Any]:
        """Flatten like :meth:`MetricsRegistry.scrape` (for rendering)."""
        out: dict[str, Any] = {}
        out.update(self.counters)
        out.update(self.gauges)
        for key, state in self.histograms.items():
            out[key] = Histogram.from_state(state).summary()
        return out

def snapshot_delta(old: MetricSnapshot, new: MetricSnapshot) -> dict[str, Any]:
    """What changed between two snapshots of the *same* origin.

    Counters diff with restart handling (observed < old => the source
    restarted; the full new value is the delta).  Gauges report the new
    value alongside the change.  Histograms diff bucket-wise.  Keys that
    did not change are omitted — the CLI's ``telemetry diff`` shows only
    movement.
    """
    out: dict[str, Any] = {}
    for key in sorted(set(old.counters) | set(new.counters)):
        was = old.counters.get(key, 0)
        now = new.counters.get(key, 0)
        delta = now - was if now >= was else now
        if delta:
            out[key] = delta
    for key in sorted(set(old.gauges) | set(new.gauges)):
        was = old.gauges.get(key, 0.0)
        now = new.gauges.get(key, 0.0)
        if now != was:
            out[key] = {"was": was, "now": now}
    for key in sorted(set(old.histograms) | set(new.histograms)):
        was_state = old.histograms.get(key)
        now_state = new.histograms.get(key)
        if now_state is None:
            continue
        was_count = was_state["count"] if was_state is not None else 0
        delta = now_state["count"] - was_count
        if delta < 0:  # restarted source
            delta = now_state["count"]
        if delta:
            out[key] = {"observations": delta}
    return out


class TelemetryUnit:
    """One host's local metrics namespace, served over the secure channel.

    The federated twin of the testbed's omniscient registry: the same
    lazy ``register_source`` absorption (zero per-increment cost on the
    owning hot paths), but scoped to one host and stamped with that
    host's identifying labels (``server=``, or ``node=``/``shard=`` for
    directory replicas).  ``bind`` installs the ``telemetry.scrape``
    responder; serving a scrape is a read-only flatten, safe to run in
    the secure host's dispatch context.
    """

    def __init__(self, origin: str, clock: Any, **labels: Any) -> None:
        self.origin = origin
        self.clock = clock
        self.labels = dict(labels)
        self.registry = MetricsRegistry()

    # -- instrumentation surface (host-label stamped) -----------------------

    def _merged(self, labels: dict[str, Any]) -> dict[str, Any]:
        if not labels:
            return self.labels
        merged = dict(self.labels)
        merged.update(labels)
        return merged

    def register_source(self, prefix: str, source: Any, **labels: Any) -> None:
        self.registry.register_source(prefix, source, **self._merged(labels))

    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        self.registry.inc(name, amount, **self._merged(labels))

    def gauge(
        self, name: str, fn: Callable[[], float] | None = None, **labels: Any
    ):
        return self.registry.gauge(name, fn, **self._merged(labels))

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None, **labels: Any
    ) -> Histogram:
        return self.registry.histogram(name, bounds, **self._merged(labels))

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.histogram(name, **labels).observe(value)

    # -- serving ------------------------------------------------------------

    def snapshot(self) -> MetricSnapshot:
        return MetricSnapshot.of(self.registry, self.origin, self.clock.now())

    def serve(self, peer: str, body: bytes) -> bytes:
        """The ``telemetry.scrape`` app handler (request body is ignored)."""
        return encode(self.snapshot().to_wire())

    def bind(self, secure_host: Any) -> None:
        secure_host.bind_app(TELEMETRY_APP_KIND, self.serve)


class TelemetryCollector:
    """Pulls host snapshots into one cluster-level registry.

    Runs on (or beside) one host, using that host's authenticated
    :class:`~repro.net.secure_channel.SecureHost` to reach every scrape
    target — telemetry rides the same mutually authenticated channels as
    agent transfers, so a host that cannot join the cluster cannot feed
    it metrics either.

    Scrape rounds must run in a simulated thread (``connect``/``call``
    block).  :meth:`start` schedules rounds on a **daemon** kernel tick:
    periodic scraping never keeps ``kernel.run()`` alive after the
    world's real work drains.  Absorption is delta-based per target (see
    the module docstring), so any number of overlapping or failed rounds
    converge to exact totals.
    """

    def __init__(
        self,
        via: Any,
        targets: Iterable[str] = (),
        *,
        local: TelemetryUnit | None = None,
        timeout: float = 10.0,
    ) -> None:
        self.via = via  # SecureHost
        self.kernel = via.kernel
        self.targets: list[str] = list(targets)
        self.local = local
        self.timeout = timeout
        self.cluster = MetricsRegistry()
        self.stats = Counter()
        self.last_snapshots: dict[str, MetricSnapshot] = {}
        # Per-target last-seen cumulative values (delta baselines).
        self._last_counters: dict[str, dict[str, int | float]] = {}
        self._last_hist_counts: dict[str, dict[str, list[int]]] = {}
        self._ticker = None
        self._round_thread = None

    # -- target management ---------------------------------------------------

    def add_target(self, name: str) -> None:
        if name not in self.targets:
            self.targets.append(name)

    # -- scraping (simulated-thread context) ---------------------------------

    def scrape_round(self) -> int:
        """Scrape every target once; returns how many answered.

        The via host is scraped *last*: its own counters move while the
        round runs (channel opens, rpc traffic), so snapshotting it
        after the remote pulls keeps a single settled-world round exact.
        """
        ok = 0
        ordered = sorted(
            self.targets,
            key=lambda t: self.local is not None and t == self.via.name,
        )
        for target in ordered:
            if self.scrape_one(target):
                ok += 1
        self.stats.add("rounds")
        return ok

    def scrape_one(self, target: str) -> bool:
        if self.local is not None and target == self.via.name:
            # Self-scrape: no network link to self exists; absorb the
            # local unit's snapshot directly.
            self.absorb(self.local.snapshot(), target)
            self.stats.add("scrapes_ok")
            return True
        t0 = self.kernel.now()
        try:
            channel = self.via.connect(target, timeout=self.timeout)
            raw = channel.call(TELEMETRY_APP_KIND, b"", timeout=self.timeout)
            snapshot = MetricSnapshot.from_wire(decode(raw))
        except ReproError:
            self.stats.add("scrapes_failed")
            return False
        elapsed = self.kernel.now() - t0
        self.absorb(snapshot, target)
        # Virtual nanoseconds, so scrape latency lands inside the
        # ns-tuned default log buckets.
        self.cluster.histogram("telemetry.scrape_latency_ns").observe(
            elapsed * 1e9
        )
        self.stats.add("scrapes_ok")
        return True

    # -- absorption (kernel- or thread-context; pure computation) ------------

    def absorb(self, snapshot: MetricSnapshot, source_key: str | None = None) -> None:
        """Fold one cumulative snapshot into the cluster registry.

        ``source_key`` identifies the delta baseline (defaults to the
        snapshot's origin); the touring collector agent passes hop-local
        snapshots through here with their origins intact.
        """
        key = source_key if source_key is not None else snapshot.origin
        last = self._last_counters.setdefault(key, {})
        for name, value in snapshot.counters.items():
            seen = last.get(name, 0)
            delta = value - seen if value >= seen else value
            last[name] = value
            # Materialize the cell even at delta 0 so a federated scrape
            # carries the same (possibly zero-valued) keys as an
            # omniscient one.
            cell = self.cluster.counter(name)
            cell.value += delta
        for name, value in snapshot.gauges.items():
            self.cluster.gauge(name).set(value)
        last_hists = self._last_hist_counts.setdefault(key, {})
        for name, state in snapshot.histograms.items():
            observed = Histogram.from_state(state)
            seen_counts = last_hists.get(name)
            if seen_counts is not None and all(
                c >= s for c, s in zip(observed.counts, seen_counts)
            ):
                delta_counts = [
                    c - s for c, s in zip(observed.counts, seen_counts)
                ]
            else:  # first sight, or a restarted source
                delta_counts = list(observed.counts)
            last_hists[name] = list(observed.counts)
            n = sum(delta_counts)
            if n == 0:
                continue
            cell = self.cluster.histogram(name, bounds=observed.bounds)
            delta = Histogram.from_state(
                {
                    "bounds": list(observed.bounds),
                    "counts": delta_counts,
                    "count": n,
                    # Cumulative totals diff like counters; extrema fold
                    # in monotonically (cluster min/max are historical).
                    "total": observed.total
                    - (self._hist_total(key, name, observed.total)),
                    "min": observed.min,
                    "max": observed.max,
                }
            )
            cell.merge(delta)
        self.last_snapshots[key] = snapshot

    def _hist_total(self, key: str, name: str, observed_total: float) -> float:
        prior = self.last_snapshots.get(key)
        if prior is None:
            return 0.0
        state = prior.histograms.get(name)
        if state is None:
            return 0.0
        prior_total = float(state["total"])
        prior_counts = self._last_hist_counts.get(key, {}).get(name)
        if prior_counts is None:
            return 0.0
        return prior_total if prior_total <= observed_total else 0.0

    # -- periodic operation ---------------------------------------------------

    def start(self, period: float = 5.0):
        """Scrape every ``period`` virtual seconds on a daemon tick."""
        if self._ticker is not None and not self._ticker.cancelled:
            raise ReproError("collector is already started")
        self._ticker = self.kernel.every(period, self._tick, daemon=True)
        return self._ticker

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None

    def _tick(self) -> None:
        from repro.sim.threads import SimThread

        if self._round_thread is not None and self._round_thread.is_alive:
            # The previous round is still draining (slow links); skip
            # rather than stack overlapping rounds.
            self.stats.add("rounds_skipped")
            return
        self._round_thread = SimThread(
            self.kernel,
            self.scrape_round,
            name=f"telemetry-collector/{self.via.name}",
            on_error="store",
        )
        self._round_thread.start()

    # -- output ---------------------------------------------------------------

    def scrape(self) -> dict[str, Any]:
        """The materialized cluster view, flattened."""
        return self.cluster.scrape()

    def cluster_snapshot(self) -> MetricSnapshot:
        return MetricSnapshot.of(
            self.cluster, f"cluster:{self.via.name}", self.kernel.now()
        )


# ---------------------------------------------------------------------------
# The touring collector (scrape-by-visiting)
# ---------------------------------------------------------------------------

# The agent stack itself imports repro.obs (every module does, for the
# tracing hooks), so importing repro.agents at module scope here would
# close an import cycle.  CollectorAgent is built on first attribute
# access instead — `from repro.obs.aggregate import CollectorAgent`
# works as usual, just lazily.

_COLLECTOR_AGENT_CLASS = None


def _build_collector_agent():
    global _COLLECTOR_AGENT_CLASS
    if _COLLECTOR_AGENT_CLASS is not None:
        return _COLLECTOR_AGENT_CLASS

    from repro.agents.agent import Agent, register_trusted_agent_class

    @register_trusted_agent_class
    class CollectorAgent(Agent):
        """A mobile agent that gathers telemetry hop by hop.

        The pull collector needs a network path from its host to every
        target; a *touring* collector needs only the ordinary
        agent-transfer fabric — it visits each server, reads the local
        :class:`TelemetryUnit` through the agent environment's safe
        ``telemetry_snapshot`` accessor, and carries the accumulated
        wire snapshots home in its state.  Feed the result to
        :meth:`TelemetryCollector.absorb` (snapshots carry their
        origins).

        Launch state: ``tour`` — list of server names still to visit;
        ``collected`` — accumulated snapshot wire dicts (start with
        ``[]``).
        """

        tour: list
        collected: list

        def run(self):
            snapshot = self.host.telemetry_snapshot()
            if snapshot is not None:
                self.collected.append(snapshot)
            while self.tour:
                next_stop = self.tour.pop(0)
                if next_stop == self.host.server_name():
                    continue
                self.go(next_stop, "run")
            self.complete(self.collected)

    _COLLECTOR_AGENT_CLASS = CollectorAgent
    return CollectorAgent


def __getattr__(name: str):
    if name == "CollectorAgent":
        return _build_collector_agent()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Spans, trace contexts and the :class:`Tracer` — the flight recorder's pen.

A *span* is one timed operation (``start``/``end`` in kernel time) with a
name, attributes, timestamped events, and a status.  Spans form a tree
via ``parent_id`` and share a ``trace_id``; a mobile agent's whole tour —
launch, admission, binding, the six protocol steps, proxy invocations,
departures with retries, arrivals on other servers — is **one trace**,
because the span context hops servers inside the agent image's
attributes exactly like ``transfer_id`` does (see
``repro.server.agent_server``).

Context management is per *OS thread*: simulated threads
(:mod:`repro.sim.threads`) are real OS threads under a deterministic
baton, so keying the active-span stack on
:func:`threading.current_thread` gives every agent/recovery/kernel
context its own properly nested stack even though spans of different
threads interleave in virtual time.  Span ids come from plain counters —
no wall clock, no randomness — so traces are bit-reproducible run to
run.

Exports: JSON-lines (one span per line, greppable) and the Chrome
trace-event format (load the file in ``chrome://tracing`` or
https://ui.perfetto.dev; servers become process rows).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, NamedTuple

__all__ = ["SpanContext", "Span", "Tracer", "WallClock"]


class SpanContext(NamedTuple):
    """What must travel for a child span elsewhere to join the trace."""

    trace_id: str
    span_id: str

    def to_attributes(self) -> dict[str, str]:
        """Wire encoding (carried in ``AgentImage.attributes['trace_ctx']``)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_attributes(cls, raw: object) -> "SpanContext | None":
        """Parse a wire-carried context; None for anything malformed.

        Trace context arriving on an agent image is attacker-controlled
        input, so this never raises — observability must not change
        admission behaviour.
        """
        if not isinstance(raw, dict):
            return None
        tid, sid = raw.get("trace_id"), raw.get("span_id")
        if (
            isinstance(tid, str) and isinstance(sid, str)
            and 0 < len(tid) <= 64 and 0 < len(sid) <= 64
        ):
            return cls(tid, sid)
        return None


class WallClock:
    """Fallback clock (monotonic seconds) for tracers outside a simulation."""

    __slots__ = ("_origin",)

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin


class Span:
    """One timed, attributed operation in a trace."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attributes",
        "events",
        "status",
        "status_detail",
        "_stack_key",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        start: float,
        attributes: dict[str, Any],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attributes = attributes
        self.events: list[tuple[float, str, dict[str, Any]]] = []
        self.status = "unset"  # "unset" | "ok" | "error"
        self.status_detail = ""
        self._stack_key: object = None

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def is_open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.span_id} ({self.name}) is still open")
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def adopt_context(self, parent: SpanContext) -> "Span":
        """Re-root this span under a context learned *after* it opened.

        The arrival case: the receiving server opens its admit span
        before it can decode the image that carries the sender's trace
        context.  Only valid while no child span has been started —
        children copy ``trace_id`` at creation time.
        """
        self.trace_id = parent.trace_id
        self.parent_id = parent.span_id
        return self

    def set_status(self, status: str, detail: str = "") -> "Span":
        if status not in ("unset", "ok", "error"):
            raise ValueError(f"unknown span status {status!r}")
        self.status = status
        self.status_detail = detail
        return self

    def event_names(self) -> list[str]:
        return [name for _, name, _ in self.events]

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "status_detail": self.status_detail,
            "attributes": dict(self.attributes),
            "events": [
                {"time": t, "name": n, "attributes": a} for t, n, a in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.is_open else f"{self.status}@{self.end:g}"
        return f"Span({self.name!r}, {self.span_id}, {state})"


class _SpanScope:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._span
        if exc is not None and span.status == "unset":
            span.set_status("error", f"{exc_type.__name__}: {exc}")
        self._tracer.end_span(span)


class Tracer:
    """Produces spans on one clock; owns every finished span it made.

    ``clock`` is anything with ``now() -> float`` — pass the simulation's
    :class:`~repro.util.clock.VirtualClock` (``testbed.clock``) so span
    times are kernel times; a :class:`WallClock` is used when omitted
    (benchmark tooling).
    """

    def __init__(self, clock: Any | None = None, service: str = "repro") -> None:
        self.clock = clock if clock is not None else WallClock()
        self.service = service
        self.finished: list[Span] = []
        self.annotations: list[tuple[float, str, str, dict[str, Any]]] = []
        self._open: dict[str, Span] = {}
        self._stacks: dict[object, list[Span]] = {}
        self._next_trace = 1
        self._next_span = 1

    # -- context -----------------------------------------------------------

    @staticmethod
    def _key() -> object:
        return threading.current_thread()

    def current_span(self) -> Span | None:
        """The innermost open span of the calling (OS) thread, if any."""
        stack = self._stacks.get(self._key())
        return stack[-1] if stack else None

    def current_context(self) -> SpanContext | None:
        span = self.current_span()
        return span.context if span is not None else None

    # -- span lifecycle ----------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = None,
        **attributes: Any,
    ) -> Span:
        """Open a span and make it the calling thread's current span.

        ``parent=None`` means "the calling thread's current span, or a
        fresh root trace if there is none".  Pass an explicit
        :class:`SpanContext` to continue a trace started elsewhere (the
        migration case).
        """
        if parent is None:
            current = self.current_span()
            parent_ctx = current.context if current is not None else None
        elif isinstance(parent, Span):
            parent_ctx = parent.context
        else:
            parent_ctx = parent
        if parent_ctx is None:
            trace_id = f"trace-{self._next_trace:04d}"
            self._next_trace += 1
            parent_id = None
        else:
            trace_id = parent_ctx.trace_id
            parent_id = parent_ctx.span_id
        span_id = f"span-{self._next_span:06d}"
        self._next_span += 1
        span = Span(
            trace_id, span_id, parent_id, name, self.clock.now(), attributes
        )
        key = self._key()
        span._stack_key = key
        self._stacks.setdefault(key, []).append(span)
        self._open[span_id] = span
        return span

    def end_span(self, span: Span, at: float | None = None) -> Span:
        """Close ``span`` (idempotent) and pop it off its thread's stack."""
        if span.end is not None:
            return span
        span.end = self.clock.now() if at is None else at
        if span.status == "unset":
            span.status = "ok"
        self._open.pop(span.span_id, None)
        stack = self._stacks.get(span._stack_key)
        if stack is not None:
            try:
                stack.remove(span)
            except ValueError:  # pragma: no cover - defensive
                pass
            if not stack:
                del self._stacks[span._stack_key]
        self.finished.append(span)
        return span

    def span(
        self,
        name: str,
        parent: "Span | SpanContext | None" = None,
        **attributes: Any,
    ) -> _SpanScope:
        """``with tracer.span("rpc.call", dst=...) as s: ...``

        On exception the span is closed with status ``error`` (detail =
        exception type and message) and the exception propagates.
        """
        return _SpanScope(self, self.start_span(name, parent, **attributes))

    # -- events and annotations -------------------------------------------

    def add_event(self, name: str, **attributes: Any) -> None:
        """Attach a timestamped event to the current span (no-op without one)."""
        span = self.current_span()
        if span is not None:
            span.events.append((self.clock.now(), name, attributes))

    def annotate(self, kind: str, detail: str = "", **attributes: Any) -> None:
        """Record a global, span-less annotation (e.g. an injected fault)."""
        self.annotations.append((self.clock.now(), kind, detail, attributes))

    # -- inspection --------------------------------------------------------

    def open_spans(self) -> list[Span]:
        """Spans started but never ended — the leak check's subject."""
        return list(self._open.values())

    def active_stacks(self) -> dict[object, list[Span]]:
        """Every thread's open-span stack, outermost first (copies).

        The sampling profiler's read surface: at each virtual-time tick
        it turns each stack into one flame sample.  Keys are the OS
        thread objects the stacks are keyed on; callers treat them as
        opaque identities.
        """
        return {key: list(stack) for key, stack in self._stacks.items() if stack}

    def spans(self, *, include_open: bool = False) -> list[Span]:
        out = list(self.finished)
        if include_open:
            out.extend(self._open.values())
        return out

    def trace_ids(self) -> list[str]:
        """Distinct trace ids, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.finished:
            seen.setdefault(span.trace_id, None)
        for span in self._open.values():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        self.finished.clear()
        self.annotations.clear()

    # -- export ------------------------------------------------------------

    def export_jsonl(self, path: str | None = None) -> str:
        """One JSON object per finished span, in end order."""
        text = "\n".join(json.dumps(s.to_dict(), sort_keys=True)
                         for s in self.finished)
        if text:
            text += "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    def export_chrome(self, path: str | None = None) -> dict[str, Any]:
        """Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

        Spans become complete ("X") events on a ``pid`` of their
        ``server`` attribute (falling back to the tracer's service name)
        and a ``tid`` of their trace id, so one agent's tour reads as one
        row per server.  Span events and global annotations become
        instant ("i") events; injected faults carry ``injected: true`` so
        post-mortems separate them from organic failures.
        """
        events: list[dict[str, Any]] = []
        for span in self.finished:
            pid = str(span.attributes.get("server", self.service))
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": ((span.end or span.start) - span.start) * 1e6,
                    "pid": pid,
                    "tid": span.trace_id,
                    "args": {
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "status": span.status,
                        "status_detail": span.status_detail,
                        **span.attributes,
                    },
                }
            )
            for t, name, attrs in span.events:
                events.append(
                    {
                        "name": f"{span.name}/{name}",
                        "cat": "event",
                        "ph": "i",
                        "ts": t * 1e6,
                        "s": "t",
                        "pid": pid,
                        "tid": span.trace_id,
                        "args": {"span_id": span.span_id, **attrs},
                    }
                )
        for t, kind, detail, attrs in self.annotations:
            events.append(
                {
                    "name": kind,
                    "cat": "annotation",
                    "ph": "i",
                    "ts": t * 1e6,
                    "s": "g",
                    "pid": "faults" if attrs.get("injected") else self.service,
                    "tid": "annotations",
                    "args": {"detail": detail, **attrs},
                }
            )
        doc = {"traceEvents": events, "displayTimeUnit": "ms"}
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
        return doc

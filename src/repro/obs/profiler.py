"""Continuous profiling on virtual time: deterministic flame stacks.

A wall-clock sampling profiler would tell us where the *host* CPU goes;
what the simulation needs to know is where **virtual time** goes — which
spans are open while the world's clock advances.  The
:class:`SamplingProfiler` rides a daemon kernel tick
(:meth:`~repro.sim.kernel.Kernel.every`): at each tick it reads every
thread's open-span stack from the tracer (:meth:`Tracer.active_stacks`)
and records one sample per stack, collapsed ``outer;inner`` — the exact
input format of flame-graph tooling.  A tick with *no* open span
anywhere records one ``(idle)`` sample, so the attribution ratio
(samples landing inside spans / all samples) is an honest coverage
measure: the O1 bench pins it ≥ 0.9 on a five-hop tour.

Because ticks fire at deterministic virtual times and span stacks are
bit-reproducible, the whole profile is reproducible run to run — no
statistical smoothing needed, ever.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.obs.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel, RepeatingEvent

__all__ = ["SamplingProfiler", "IDLE_STACK"]

# The collapsed-stack name recorded when no span is open at a tick.
IDLE_STACK = "(idle)"


class SamplingProfiler:
    """Deterministic virtual-time sampler over one tracer's span stacks."""

    def __init__(
        self, tracer: Tracer, kernel: "Kernel", period: float = 0.001
    ) -> None:
        if period <= 0:
            raise ReproError(f"profiler period must be positive: {period}")
        self.tracer = tracer
        self.kernel = kernel
        self.period = period
        # collapsed "outer;inner" stack -> sample count
        self.samples: dict[str, int] = {}
        self.ticks = 0
        self._ticker: "RepeatingEvent | None" = None

    # -- sampling ------------------------------------------------------------

    def sample(self) -> None:
        """Take one sample now (the tick action; callable directly too)."""
        self.ticks += 1
        stacks = self.tracer.active_stacks()
        if not stacks:
            self.samples[IDLE_STACK] = self.samples.get(IDLE_STACK, 0) + 1
            return
        for stack in stacks.values():
            key = ";".join(span.name for span in stack)
            self.samples[key] = self.samples.get(key, 0) + 1

    def start(self) -> "RepeatingEvent":
        """Begin periodic sampling (daemon tick: never keeps run() alive)."""
        if self._ticker is not None and not self._ticker.cancelled:
            raise ReproError("profiler is already running")
        self._ticker = self.kernel.every(self.period, self.sample, daemon=True)
        return self._ticker

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None

    def clear(self) -> None:
        self.samples.clear()
        self.ticks = 0

    # -- aggregates ----------------------------------------------------------

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    @property
    def attributed_samples(self) -> int:
        return self.total_samples - self.samples.get(IDLE_STACK, 0)

    @property
    def attribution_ratio(self) -> float:
        """Fraction of samples that landed inside an open span."""
        total = self.total_samples
        return self.attributed_samples / total if total else 0.0

    def flame_stacks(self) -> dict[str, int]:
        """Collapsed stack -> sample count (idle excluded)."""
        return {
            key: count
            for key, count in self.samples.items()
            if key != IDLE_STACK
        }

    def by_leaf(self) -> dict[str, int]:
        """Samples attributed to each *innermost* span name."""
        out: dict[str, int] = {}
        for key, count in self.flame_stacks().items():
            leaf = key.rsplit(";", 1)[-1]
            out[leaf] = out.get(leaf, 0) + count
        return out

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` hottest leaf span names, descending."""
        ranked = sorted(self.by_leaf().items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    # -- export --------------------------------------------------------------

    def render_collapsed(self, path: str | None = None) -> str:
        """Flame-graph collapsed format: ``outer;inner count`` per line.

        Feed straight to ``flamegraph.pl`` or speedscope; the idle bucket
        is included (as ``(idle)``) so the graph shows true coverage.
        """
        lines = [
            f"{key} {count}"
            for key, count in sorted(self.samples.items())
        ]
        text = "\n".join(lines) + ("\n" if lines else "")
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    def report(self) -> dict[str, Any]:
        return {
            "period": self.period,
            "ticks": self.ticks,
            "total_samples": self.total_samples,
            "attributed_samples": self.attributed_samples,
            "attribution_ratio": self.attribution_ratio,
            "distinct_stacks": len(self.flame_stacks()),
            "top": self.top(5),
        }

"""Agent credentials: the tamperproof owner↔agent↔creator binding.

Section 5.2: "Each agent carries a set of credentials, which associate the
agent's identity with those of its owner and creator, in a tamperproof
manner.  Apart from an identity (name), the credentials include the
owner's public key certificate.  The creator may delegate to the agent
only a limited set of privileges ... Such access restrictions are also
encoded in the credentials. ... the credentials could have an expiration
time so that stolen credentials cannot be misused indefinitely."

The owner signs the credential body; any relying server validates the
owner's certificate against a CA it trusts, then the signature, then the
validity window.  Verification requires no online authority — matching
the paper's constraint that "an on-line authentication service may not
always be available".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cert import Certificate
from repro.crypto.trust import TrustAnchor
from repro.crypto.keys import KeyPair
from repro.errors import CredentialError, CredentialExpiredError, SignatureError
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.util.serialization import canonical_digest, register_serializable

__all__ = ["Credentials"]


@dataclass(frozen=True, slots=True)
class Credentials:
    """A signed statement: *agent* acts for *owner*, within *rights*."""

    agent: URN
    owner: URN
    creator: URN
    owner_certificate: Certificate
    rights: Rights
    issued_at: float
    expires_at: float
    signature: bytes

    # -- construction --------------------------------------------------------

    @staticmethod
    def signed_body(
        agent: URN,
        owner: URN,
        creator: URN,
        owner_certificate: Certificate,
        rights: Rights,
        issued_at: float,
        expires_at: float,
    ) -> dict:
        return {
            "agent": agent,
            "owner": owner,
            "creator": creator,
            "owner_certificate": owner_certificate,
            "rights": rights,
            "issued_at": issued_at,
            "expires_at": expires_at,
        }

    @classmethod
    def issue(
        cls,
        *,
        agent: URN,
        owner: URN,
        creator: URN,
        owner_keys: KeyPair,
        owner_certificate: Certificate,
        rights: Rights,
        now: float,
        lifetime: float = 3600.0,
    ) -> "Credentials":
        """Owner mints credentials for a new agent."""
        if agent.kind != "agent":
            raise CredentialError(f"credentials subject must be an agent URN, got {agent}")
        if owner_certificate.subject != str(owner):
            raise CredentialError(
                f"owner certificate names {owner_certificate.subject!r}, not {owner}"
            )
        if lifetime <= 0:
            raise CredentialError("credential lifetime must be positive")
        body = cls.signed_body(
            agent, owner, creator, owner_certificate, rights, now, now + lifetime
        )
        signature = owner_keys.private.sign(canonical_digest(body))
        return cls(
            agent=agent,
            owner=owner,
            creator=creator,
            owner_certificate=owner_certificate,
            rights=rights,
            issued_at=now,
            expires_at=now + lifetime,
            signature=signature,
        )

    # -- validation ------------------------------------------------------------

    def body(self) -> dict:
        return self.signed_body(
            self.agent,
            self.owner,
            self.creator,
            self.owner_certificate,
            self.rights,
            self.issued_at,
            self.expires_at,
        )

    def digest(self) -> bytes:
        """Canonical digest of the signed body (anchors delegation links)."""
        return canonical_digest(self.body())

    def verify(self, trust_anchor: TrustAnchor, now: float) -> None:
        """Full validation; raises a :class:`CredentialError` subclass on failure."""
        if not (self.issued_at <= now <= self.expires_at):
            raise CredentialExpiredError(
                f"credentials for {self.agent} expired "
                f"(window [{self.issued_at}, {self.expires_at}], now {now})"
            )
        if self.owner_certificate.subject != str(self.owner):
            raise CredentialError("owner certificate subject mismatch")
        trust_anchor.validate(self.owner_certificate)
        try:
            self.owner_certificate.public_key.verify(self.digest(), self.signature)
        except SignatureError as exc:
            raise CredentialError(
                f"credentials for {self.agent} have an invalid owner signature"
            ) from exc

    # -- serialization -----------------------------------------------------------

    def to_state(self) -> dict:
        state = self.body()
        state["signature"] = self.signature
        return state

    @classmethod
    def from_state(cls, state: dict) -> "Credentials":
        return cls(
            agent=state["agent"],
            owner=state["owner"],
            creator=state["creator"],
            owner_certificate=state["owner_certificate"],
            rights=state["rights"],
            issued_at=float(state["issued_at"]),
            expires_at=float(state["expires_at"]),
            signature=state["signature"],
        )


register_serializable(Credentials, intern=True)

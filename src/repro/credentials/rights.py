"""The rights algebra: what a principal may do, and how grants attenuate.

A *permission* is a dotted string, by convention
``<resource-class-or-name>.<method>`` for application resources
(``Buffer.get``) and ``system.<op>`` for host-level operations mediated by
the security manager (``system.thread_create``).

:class:`Rights` is a set of glob patterns plus optional per-permission
usage quotas.  Delegation composes rights *conjunctively*
(:class:`CompositeRights`): an operation is permitted only if **every**
link in the chain permits it, and its quota is the **minimum** over the
chain.  This gives the attenuation guarantee the paper requires — "the
creator may delegate to the agent only a limited set of privileges"
(section 5.2) — by construction, for any chain shape.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fnmatch import translate as _glob_translate
from functools import lru_cache

from repro.errors import CredentialError
from repro.util.serialization import register_serializable

__all__ = ["Rights", "CompositeRights", "compiled_matcher"]


def _validate_pattern(pattern: str) -> str:
    if not isinstance(pattern, str) or not pattern:
        raise CredentialError(f"invalid permission pattern {pattern!r}")
    return pattern


@lru_cache(maxsize=8192)
def compiled_matcher(pattern: str):
    """``fnmatchcase`` pre-compiled: returns an anchored ``re`` matcher.

    Permission and policy-subject patterns recur across rules, rights and
    calls; compiling once per distinct pattern takes glob matching off the
    authorization hot path (the cache is process-wide and bounded).
    """
    return re.compile(_glob_translate(pattern)).match


@dataclass(frozen=True, slots=True)
class Rights:
    """A grant: glob patterns over permissions, with optional quotas.

    ``allow`` patterns use ``fnmatch`` syntax (``*`` matches within and
    across dots; matching is case-sensitive).  ``quotas`` maps a pattern
    to a maximum number of uses; a permission's quota is the minimum over
    all matching quota patterns (None = unlimited).
    """

    allow: frozenset[str]
    quotas: tuple[tuple[str, int], ...] = ()

    @classmethod
    def of(cls, *patterns: str, quotas: dict[str, int] | None = None) -> "Rights":
        """Convenience constructor: ``Rights.of("Buffer.get", "Buffer.size")``."""
        quota_items = tuple(sorted((quotas or {}).items()))
        for pattern, limit in quota_items:
            _validate_pattern(pattern)
            if limit < 0:
                raise CredentialError(f"negative quota for {pattern!r}")
        return cls(
            allow=frozenset(_validate_pattern(p) for p in patterns),
            quotas=quota_items,
        )

    @classmethod
    def all(cls) -> "Rights":
        """The unrestricted grant."""
        return cls(allow=frozenset({"*"}))

    @classmethod
    def none(cls) -> "Rights":
        """The empty grant (permits nothing)."""
        return cls(allow=frozenset())

    def permits(self, permission: str) -> bool:
        return any(
            compiled_matcher(pattern)(permission) for pattern in self.allow
        )

    def quota_for(self, permission: str) -> int | None:
        """Max uses of ``permission`` under this grant (None = unlimited)."""
        limits = [
            limit
            for pattern, limit in self.quotas
            if compiled_matcher(pattern)(permission)
        ]
        return min(limits) if limits else None

    def restricted_to(self, other: "Rights") -> "CompositeRights":
        """This grant further attenuated by ``other``."""
        return CompositeRights(links=(self, other))

    def to_state(self) -> dict:
        return {
            "allow": sorted(self.allow),
            "quotas": [list(q) for q in self.quotas],
        }

    @classmethod
    def from_state(cls, state: dict) -> "Rights":
        return cls.of(
            *state["allow"],
            quotas={p: int(n) for p, n in state.get("quotas", [])},
        )


register_serializable(Rights, intern=True)


@dataclass(frozen=True, slots=True)
class CompositeRights:
    """Conjunction of grants: permitted iff every link permits.

    The algebraic form of a delegation chain.  Monotonicity invariant
    (property-tested): for any permission ``p`` and any extra link ``r``,
    ``CompositeRights(links + (r,)).permits(p)`` implies
    ``CompositeRights(links).permits(p)``.
    """

    links: tuple["Rights | CompositeRights", ...]

    def permits(self, permission: str) -> bool:
        # An empty chain is a deny-all, not a vacuous allow-all: a missing
        # grant must fail closed.
        if not self.links:
            return False
        return all(link.permits(permission) for link in self.links)

    def quota_for(self, permission: str) -> int | None:
        limits = [
            q
            for link in self.links
            if (q := link.quota_for(permission)) is not None
        ]
        return min(limits) if limits else None

    def restricted_to(self, other: "Rights | CompositeRights") -> "CompositeRights":
        return CompositeRights(links=self.links + (other,))

    def to_state(self) -> list:
        return list(self.links)

    @classmethod
    def from_state(cls, state: list) -> "CompositeRights":
        for link in state:
            if not isinstance(link, (Rights, CompositeRights)):
                raise CredentialError("composite rights links must be Rights")
        return cls(links=tuple(state))


register_serializable(CompositeRights)

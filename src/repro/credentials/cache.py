"""Memoized credential identity and a bounded verification cache.

The paper's amortization argument (section 5.4) front-loads authorization
into binding — but full chain verification is RSA work per link, and in a
busy server the *same* chain arrives again and again: once at admission,
then once per resource binding, then again on the next visit.  Signature
validity is a pure function of the signed bytes, so a chain verified once
need never have its signatures re-checked; only the *time-dependent*
conditions (credential windows, link expirations, certificate windows)
must be re-tested, and those are float comparisons.

Two facilities live here:

* :func:`credential_fingerprint` — the canonical-bytes digest of a
  delegation chain, memoized per credential object.  It is the immutable
  identity that keys every authorization cache in the system (grant
  caches, verification cache).
* :class:`CredentialVerificationCache` — a bounded LRU mapping
  ``(fingerprint, trust anchor, anchor version)`` to the chain's validity
  window.  A hit replays only the cheap freshness checks; a miss (or an
  out-of-window hit) falls through to the full
  :meth:`~repro.credentials.delegation.DelegatedCredentials.verify`, so
  every failure mode raises exactly the error the uncached path would.

Trust anchors that can *lose* trust (e.g.
:class:`~repro.crypto.trust.TrustStore.remove_anchor`) expose a monotonic
``trust_version``; it is part of the cache key, so revoking an authority
instantly orphans every verdict reached under the old trust set.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache

from repro.credentials.delegation import DelegatedCredentials
from repro.crypto.trust import TrustAnchor

__all__ = [
    "credential_fingerprint",
    "CredentialVerificationCache",
    "verify_credentials",
]


@lru_cache(maxsize=4096)
def credential_fingerprint(credentials: DelegatedCredentials) -> bytes:
    """Canonical digest of the whole chain, memoized per credential.

    Credentials are frozen value objects, so the digest is computed once
    per distinct chain and shared by every cache keyed on it.
    """
    return credentials.chain_digest()


class CredentialVerificationCache:
    """Bounded LRU of verified chains with cheap freshness re-checks."""

    __slots__ = ("_entries", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        # key -> (anchor, valid_from, valid_until); the anchor is held
        # strongly so a recycled id() can never alias a dead anchor.
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def verify(
        self,
        credentials: DelegatedCredentials,
        trust_anchor: TrustAnchor,
        now: float,
    ) -> None:
        """Like ``credentials.verify(trust_anchor, now)``, but cached.

        Raises exactly what the uncached verification would raise: any
        condition the cached window cannot vouch for falls through to the
        full check.
        """
        version = getattr(trust_anchor, "trust_version", None)
        key = (credential_fingerprint(credentials), id(trust_anchor), version)
        entry = self._entries.get(key)
        if entry is not None:
            anchor, valid_from, valid_until = entry
            if anchor is trust_anchor and valid_from <= now <= valid_until:
                self._entries.move_to_end(key)
                self.hits += 1
                return
        self.misses += 1
        credentials.verify(trust_anchor, now)
        window = _validity_window(credentials, trust_anchor)
        self._entries[key] = (trust_anchor, *window)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}


def _validity_window(
    credentials: DelegatedCredentials, trust_anchor: TrustAnchor
) -> tuple[float, float]:
    """The time span over which a verified chain stays verified.

    Intersects every time-dependent condition full verification checks:
    the base credential window, each link's expiry, every certificate's
    validity window, and (when the anchor exposes one) the anchor set's
    own window.  Signatures and chain digests are time-independent.
    """
    base = credentials.base
    valid_from = max(base.issued_at, base.owner_certificate.not_before)
    valid_until = min(base.expires_at, base.owner_certificate.not_after)
    for link in credentials.links:
        cert = link.delegator_certificate
        valid_from = max(valid_from, cert.not_before)
        valid_until = min(valid_until, link.expires_at, cert.not_after)
    anchor_window = getattr(trust_anchor, "anchor_validity_window", None)
    if callable(anchor_window):
        lo, hi = anchor_window()
        valid_from = max(valid_from, lo)
        valid_until = min(valid_until, hi)
    return valid_from, valid_until


_default_cache = CredentialVerificationCache()


def verify_credentials(
    credentials: DelegatedCredentials,
    trust_anchor: TrustAnchor,
    now: float,
    *,
    cache: CredentialVerificationCache | None = None,
) -> None:
    """Module-level convenience over a shared default cache."""
    (cache if cache is not None else _default_cache).verify(
        credentials, trust_anchor, now
    )

"""Principals and groups.

Section 2: "A principal is an entity which has a unique identity in the
system. ... a set of principals may be aggregated together in a group to
represent a common role.  Membership in such a group would represent some
common authorization and privileges."

Groups may nest; :class:`GroupDirectory` resolves transitive membership
(with cycle tolerance) so security policies can grant to roles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.cert import Certificate
from repro.errors import NamingError
from repro.naming.urn import URN

__all__ = ["Principal", "Group", "GroupDirectory"]


@dataclass(frozen=True, slots=True)
class Principal:
    """An identity: a global name plus (optionally) its certificate."""

    name: URN
    certificate: Certificate | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, URN):
            raise NamingError("principal name must be a URN")

    def __str__(self) -> str:
        return str(self.name)


@dataclass(slots=True)
class Group:
    """A named set of member principals (or nested groups)."""

    name: URN
    members: set[URN] = field(default_factory=set)

    def add(self, member: URN) -> None:
        self.members.add(member)

    def remove(self, member: URN) -> None:
        self.members.discard(member)

    def __contains__(self, member: URN) -> bool:
        return member in self.members


class GroupDirectory:
    """Resolves (transitive) group membership for policy evaluation."""

    def __init__(self) -> None:
        self._groups: dict[URN, Group] = {}

    def add_group(self, group: Group) -> None:
        if group.name in self._groups:
            raise NamingError(f"group {group.name} already exists")
        self._groups[group.name] = group

    def group(self, name: URN) -> Group:
        try:
            return self._groups[name]
        except KeyError:
            raise NamingError(f"unknown group {name}") from None

    def is_member(self, principal: URN, group_name: URN) -> bool:
        """Transitive membership test (nested groups; cycles tolerated)."""
        seen: set[URN] = set()
        stack = [group_name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            group = self._groups.get(current)
            if group is None:
                continue
            if principal in group.members:
                return True
            stack.extend(m for m in group.members if m in self._groups)
        return False

    def groups_of(self, principal: URN) -> set[URN]:
        """All groups the principal belongs to, transitively."""
        return {
            name for name in self._groups if self.is_member(principal, name)
        }

"""Principals and groups.

Section 2: "A principal is an entity which has a unique identity in the
system. ... a set of principals may be aggregated together in a group to
represent a common role.  Membership in such a group would represent some
common authorization and privileges."

Groups may nest; :class:`GroupDirectory` resolves transitive membership
(with cycle tolerance) so security policies can grant to roles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.cert import Certificate
from repro.errors import NamingError
from repro.naming.urn import URN

__all__ = ["Principal", "Group", "GroupDirectory", "membership_epoch"]

# Monotonic counter bumped by every group/membership mutation in the
# process.  Cached policy decisions embed the epoch in their key, so a
# membership change can never leave a stale grant servable (section 5.1's
# dynamic policy requirement).  A single global counter makes invalidation
# O(1) at mutation time and at lookup time; the cost is that *any* group
# change invalidates *all* grant caches — sound, and group churn is rare
# next to binding traffic.
_membership_epoch = 0


def membership_epoch() -> int:
    """The current process-wide group-membership version."""
    return _membership_epoch


def _bump_membership_epoch() -> None:
    global _membership_epoch
    _membership_epoch += 1


@dataclass(frozen=True, slots=True)
class Principal:
    """An identity: a global name plus (optionally) its certificate."""

    name: URN
    certificate: Certificate | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, URN):
            raise NamingError("principal name must be a URN")

    def __str__(self) -> str:
        return str(self.name)


@dataclass(slots=True)
class Group:
    """A named set of member principals (or nested groups)."""

    name: URN
    members: set[URN] = field(default_factory=set)

    def add(self, member: URN) -> None:
        self.members.add(member)
        _bump_membership_epoch()

    def remove(self, member: URN) -> None:
        self.members.discard(member)
        _bump_membership_epoch()

    def __contains__(self, member: URN) -> bool:
        return member in self.members


class GroupDirectory:
    """Resolves (transitive) group membership for policy evaluation."""

    def __init__(self) -> None:
        self._groups: dict[URN, Group] = {}

    def add_group(self, group: Group) -> None:
        if group.name in self._groups:
            raise NamingError(f"group {group.name} already exists")
        self._groups[group.name] = group
        _bump_membership_epoch()

    def group(self, name: URN) -> Group:
        try:
            return self._groups[name]
        except KeyError:
            raise NamingError(f"unknown group {name}") from None

    def is_member(self, principal: URN, group_name: URN) -> bool:
        """Transitive membership test (nested groups; cycles tolerated)."""
        seen: set[URN] = set()
        stack = [group_name]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            group = self._groups.get(current)
            if group is None:
                continue
            if principal in group.members:
                return True
            stack.extend(m for m in group.members if m in self._groups)
        return False

    def groups_of(self, principal: URN) -> set[URN]:
        """All groups the principal belongs to, transitively."""
        return {
            name for name in self._groups if self.is_member(principal, name)
        }

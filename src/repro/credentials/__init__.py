"""Principals, rights, and tamperproof agent credentials (section 5.2).

An agent carries :class:`~repro.credentials.credentials.Credentials`
binding its identity to its **owner** (the human it represents) and its
**creator** (the application or agent that launched it), signed with the
owner's key and carrying the owner's public-key certificate.  Rights the
owner delegates to the agent are encoded as a
:class:`~repro.credentials.rights.Rights` restriction; servers forwarding
an agent can attenuate further via cascaded
:class:`~repro.credentials.delegation.DelegationLink` entries (Sollins-
style cascaded authentication — a delegate can never *gain* rights).
"""

from repro.credentials.principal import (
    Group,
    GroupDirectory,
    Principal,
    membership_epoch,
)
from repro.credentials.rights import CompositeRights, Rights
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials, DelegationLink
from repro.credentials.cache import (
    CredentialVerificationCache,
    credential_fingerprint,
    verify_credentials,
)

__all__ = [
    "Principal",
    "Group",
    "GroupDirectory",
    "membership_epoch",
    "Rights",
    "CompositeRights",
    "Credentials",
    "DelegationLink",
    "DelegatedCredentials",
    "CredentialVerificationCache",
    "credential_fingerprint",
    "verify_credentials",
]

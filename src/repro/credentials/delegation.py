"""Cascaded delegation: servers re-delegating an agent with fewer rights.

Section 5.2: "A server may also need to forward an agent to another
server (like a subcontract) granting it some additional privileges or
restricting some of its existing ones.  In the past, several protocols
have been proposed ... for delegating rights to proxies [Sollins'
cascaded authentication]."

Each :class:`DelegationLink` is signed by the delegator over the digest of
*everything before it* in the chain, so links cannot be reordered,
dropped, or spliced between chains.  Effective rights are the conjunction
of the base credential rights and every link's restriction
(:class:`~repro.credentials.rights.CompositeRights`), which guarantees
attenuation: a delegate can never end up with more authority than any
principal earlier in the chain granted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cert import Certificate
from repro.crypto.trust import TrustAnchor
from repro.crypto.keys import KeyPair
from repro.credentials.credentials import Credentials
from repro.credentials.rights import CompositeRights, Rights
from repro.errors import CredentialError, CredentialExpiredError, SignatureError
from repro.naming.urn import URN
from repro.util.serialization import canonical_digest, register_serializable

__all__ = ["DelegationLink", "DelegatedCredentials"]


@dataclass(frozen=True, slots=True)
class DelegationLink:
    """One step of a cascade: *delegator* attenuates the chain so far."""

    delegator: URN
    delegator_certificate: Certificate
    restriction: Rights
    expires_at: float
    prev_digest: bytes  # digest of the base credentials + earlier links
    signature: bytes

    @staticmethod
    def signed_body(
        delegator: URN,
        delegator_certificate: Certificate,
        restriction: Rights,
        expires_at: float,
        prev_digest: bytes,
    ) -> dict:
        return {
            "delegator": delegator,
            "delegator_certificate": delegator_certificate,
            "restriction": restriction,
            "expires_at": expires_at,
            "prev_digest": prev_digest,
        }

    def body(self) -> dict:
        return self.signed_body(
            self.delegator,
            self.delegator_certificate,
            self.restriction,
            self.expires_at,
            self.prev_digest,
        )

    def digest(self) -> bytes:
        return canonical_digest(self.body())

    def to_state(self) -> dict:
        state = self.body()
        state["signature"] = self.signature
        return state

    @classmethod
    def from_state(cls, state: dict) -> "DelegationLink":
        return cls(
            delegator=state["delegator"],
            delegator_certificate=state["delegator_certificate"],
            restriction=state["restriction"],
            expires_at=float(state["expires_at"]),
            prev_digest=state["prev_digest"],
            signature=state["signature"],
        )


register_serializable(DelegationLink, intern=True)


@dataclass(frozen=True, slots=True)
class DelegatedCredentials:
    """Base credentials plus zero or more cascaded delegation links."""

    base: Credentials
    links: tuple[DelegationLink, ...] = ()

    @classmethod
    def wrap(cls, base: Credentials) -> "DelegatedCredentials":
        return cls(base=base, links=())

    @property
    def agent(self) -> URN:
        return self.base.agent

    @property
    def owner(self) -> URN:
        return self.base.owner

    # -- chain growth ---------------------------------------------------------

    def chain_digest(self) -> bytes:
        """Digest covering the base and every link, in order."""
        return canonical_digest(
            [self.base.digest()] + [link.digest() for link in self.links]
        )

    def fingerprint(self) -> bytes:
        """The chain digest, memoized — the chain's immutable cache identity."""
        from repro.credentials.cache import credential_fingerprint

        return credential_fingerprint(self)

    def extend(
        self,
        *,
        delegator: URN,
        delegator_keys: KeyPair,
        delegator_certificate: Certificate,
        restriction: Rights,
        now: float,
        lifetime: float = 3600.0,
    ) -> "DelegatedCredentials":
        """A delegator (typically a forwarding server) adds a restriction."""
        if delegator_certificate.subject != str(delegator):
            raise CredentialError(
                f"delegator certificate names {delegator_certificate.subject!r},"
                f" not {delegator}"
            )
        if lifetime <= 0:
            raise CredentialError("delegation lifetime must be positive")
        prev = self.chain_digest()
        body = DelegationLink.signed_body(
            delegator, delegator_certificate, restriction, now + lifetime, prev
        )
        link = DelegationLink(
            delegator=delegator,
            delegator_certificate=delegator_certificate,
            restriction=restriction,
            expires_at=now + lifetime,
            prev_digest=prev,
            signature=delegator_keys.private.sign(canonical_digest(body)),
        )
        return DelegatedCredentials(base=self.base, links=self.links + (link,))

    # -- validation --------------------------------------------------------------

    def verify(self, trust_anchor: TrustAnchor, now: float) -> None:
        """Validate the base and every link against the trust anchor."""
        self.base.verify(trust_anchor, now)
        running = DelegatedCredentials(base=self.base, links=())
        for index, link in enumerate(self.links):
            if now > link.expires_at:
                raise CredentialExpiredError(
                    f"delegation link {index} by {link.delegator} expired"
                )
            expected_prev = running.chain_digest()
            if link.prev_digest != expected_prev:
                raise CredentialError(
                    f"delegation link {index} does not chain to its predecessors"
                )
            if link.delegator_certificate.subject != str(link.delegator):
                raise CredentialError(
                    f"delegation link {index} certificate subject mismatch"
                )
            trust_anchor.validate(link.delegator_certificate)
            try:
                link.delegator_certificate.public_key.verify(
                    canonical_digest(link.body()), link.signature
                )
            except SignatureError as exc:
                raise CredentialError(
                    f"delegation link {index} by {link.delegator} has an"
                    f" invalid signature"
                ) from exc
            running = DelegatedCredentials(
                base=self.base, links=running.links + (link,)
            )

    # -- authority ---------------------------------------------------------------

    def effective_rights(self) -> CompositeRights:
        """Conjunction of the base grant and every link's restriction."""
        return CompositeRights(
            links=(self.base.rights,) + tuple(l.restriction for l in self.links)
        )

    # -- serialization --------------------------------------------------------------

    def to_state(self) -> dict:
        return {"base": self.base, "links": list(self.links)}

    @classmethod
    def from_state(cls, state: dict) -> "DelegatedCredentials":
        return cls(base=state["base"], links=tuple(state["links"]))


register_serializable(DelegatedCredentials, intern=True)

"""``python -m repro`` — self-demonstration and telemetry tooling.

With no arguments: builds a one-server world, runs the paper's
bounded-buffer scenario with a restricted proxy, and prints what
happened.  A smoke test for fresh installs.

``python -m repro telemetry …`` works on *files* — saved snapshots and
trace exports — with no testbed or kernel required:

* ``telemetry print SNAP.json`` — pretty-print a scrape (a
  :class:`~repro.obs.aggregate.MetricSnapshot` JSON or a plain
  flattened-scrape dict);
* ``telemetry diff OLD.json NEW.json`` — what moved between two
  snapshots of the same origin (counter deltas with restart handling,
  gauge was/now, histogram observation deltas);
* ``telemetry chrome TRACE.jsonl [-o OUT.json]`` — convert a span JSONL
  export to Chrome trace-event JSON (``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any


def demo() -> None:
    import repro
    from repro import (
        Agent,
        PolicyRule,
        Rights,
        SecurityPolicy,
        Testbed,
        URN,
        register_trusted_agent_class,
    )
    from repro.apps.buffer import Buffer
    from repro.errors import MethodDisabledError

    print(f"repro {repro.__version__} — Ajanta protected resource access "
          f"(Tripathi & Karnik, ICPP 1998)\n")

    bed = Testbed(n_servers=1)
    mailbox = Buffer(
        URN.parse("urn:resource:site0.net/demo"),
        URN.parse("urn:principal:site0.net/owner"),
        SecurityPolicy(rules=[
            PolicyRule("any", "*", Rights.of("Buffer.put", "Buffer.size")),
        ]),
        capacity=4,
    )
    bed.home.install_resource(mailbox)

    @register_trusted_agent_class
    class DemoAgent(Agent):
        def run(self):
            proxy = self.host.get_resource("urn:resource:site0.net/demo")
            proxy.put("it works")
            try:
                proxy.get()
            except MethodDisabledError:
                self.host.log("get() correctly denied")
            self.complete()

    image = bed.launch(DemoAgent(), rights=Rights.of("Buffer.*"))
    bed.run()

    status = bed.home.resident_status(image.name)
    print(f"server:        {bed.home.name}")
    print(f"agent:         {image.name} -> {status['status']}")
    print(f"buffer holds:  {mailbox.get()!r}")
    denied = bed.home.audit.records(operation="proxy.invoke", allowed=False)
    print(f"denied calls:  {[r.target for r in denied]}")
    print("\neverything working. next: python examples/quickstart.py")


# ---------------------------------------------------------------------------
# telemetry subcommands (file-based; no testbed)
# ---------------------------------------------------------------------------


def _load_snapshot(path: str):
    from repro.obs.aggregate import MetricSnapshot

    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    data = json.loads(text)
    if isinstance(data, dict) and "counters" in data and "origin" in data:
        return MetricSnapshot.from_json(text)
    return data  # a plain flattened-scrape dict


def telemetry_print(path: str, out=None) -> int:
    from repro.obs.aggregate import MetricSnapshot
    from repro.obs.metrics import render_scrape

    out = out if out is not None else sys.stdout
    loaded = _load_snapshot(path)
    if isinstance(loaded, MetricSnapshot):
        out.write(f"# origin={loaded.origin} "
                  f"captured_at={loaded.captured_at:g}\n")
        out.write(render_scrape(loaded.scrape()))
    else:
        out.write(render_scrape(loaded))
    return 0


def telemetry_diff(old_path: str, new_path: str, out=None) -> int:
    from repro.obs.aggregate import MetricSnapshot, snapshot_delta

    out = out if out is not None else sys.stdout
    old = _load_snapshot(old_path)
    new = _load_snapshot(new_path)
    if not isinstance(old, MetricSnapshot) or not isinstance(new, MetricSnapshot):
        print("telemetry diff needs two MetricSnapshot JSON files",
              file=sys.stderr)
        return 2
    delta = snapshot_delta(old, new)
    out.write(json.dumps(delta, sort_keys=True, indent=2, default=str) + "\n")
    return 0


def chrome_from_jsonl(lines) -> dict[str, Any]:
    """Span-JSONL records -> a Chrome trace-event document.

    Mirrors :meth:`repro.obs.trace.Tracer.export_chrome`, but from the
    serialized form — so traces exported on one machine convert on
    another with nothing but this CLI.
    """
    events: list[dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        span = json.loads(line)
        attributes = span.get("attributes", {})
        pid = str(attributes.get("server", "repro"))
        start = float(span["start"])
        end = float(span["end"] if span.get("end") is not None else start)
        events.append(
            {
                "name": span["name"],
                "cat": span["name"].split(".", 1)[0],
                "ph": "X",
                "ts": start * 1e6,
                "dur": (end - start) * 1e6,
                "pid": pid,
                "tid": span["trace_id"],
                "args": {
                    "span_id": span["span_id"],
                    "parent_id": span.get("parent_id"),
                    "status": span.get("status"),
                    "status_detail": span.get("status_detail", ""),
                    **attributes,
                },
            }
        )
        for ev in span.get("events", ()):
            events.append(
                {
                    "name": f"{span['name']}/{ev['name']}",
                    "cat": "event",
                    "ph": "i",
                    "ts": float(ev["time"]) * 1e6,
                    "s": "t",
                    "pid": pid,
                    "tid": span["trace_id"],
                    "args": dict(ev.get("attributes", {})),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def telemetry_chrome(path: str, out_path: str | None) -> int:
    with open(path, encoding="utf-8") as fh:
        doc = chrome_from_jsonl(fh)
    if out_path is None:
        stem = path[:-6] if path.endswith(".jsonl") else path
        out_path = stem + ".chrome.json"
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    print(f"{len(doc['traceEvents'])} events -> {out_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="repro demo and telemetry file tools",
    )
    sub = parser.add_subparsers(dest="command")
    tel = sub.add_parser("telemetry", help="inspect saved telemetry files")
    telsub = tel.add_subparsers(dest="telemetry_command", required=True)

    p = telsub.add_parser("print", help="pretty-print a snapshot/scrape JSON")
    p.add_argument("snapshot", help="MetricSnapshot JSON or scrape-dict JSON")

    d = telsub.add_parser("diff", help="what moved between two snapshots")
    d.add_argument("old", help="earlier MetricSnapshot JSON")
    d.add_argument("new", help="later MetricSnapshot JSON")

    c = telsub.add_parser("chrome", help="span JSONL -> Chrome trace JSON")
    c.add_argument("trace", help="JSONL file from Tracer.export_jsonl")
    c.add_argument("-o", "--output", default=None,
                   help="output path (default: <trace>.chrome.json)")

    args = parser.parse_args(argv)
    if args.command is None:
        demo()
        return 0
    if args.telemetry_command == "print":
        return telemetry_print(args.snapshot)
    if args.telemetry_command == "diff":
        return telemetry_diff(args.old, args.new)
    if args.telemetry_command == "chrome":
        return telemetry_chrome(args.trace, args.output)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())

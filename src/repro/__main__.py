"""``python -m repro`` — a 10-second self-demonstration.

Builds a one-server world, runs the paper's bounded-buffer scenario with
a restricted proxy, and prints what happened.  A smoke test for fresh
installs.
"""

from __future__ import annotations


def main() -> None:
    import repro
    from repro import (
        Agent,
        PolicyRule,
        Rights,
        SecurityPolicy,
        Testbed,
        URN,
        register_trusted_agent_class,
    )
    from repro.apps.buffer import Buffer
    from repro.errors import MethodDisabledError

    print(f"repro {repro.__version__} — Ajanta protected resource access "
          f"(Tripathi & Karnik, ICPP 1998)\n")

    bed = Testbed(n_servers=1)
    mailbox = Buffer(
        URN.parse("urn:resource:site0.net/demo"),
        URN.parse("urn:principal:site0.net/owner"),
        SecurityPolicy(rules=[
            PolicyRule("any", "*", Rights.of("Buffer.put", "Buffer.size")),
        ]),
        capacity=4,
    )
    bed.home.install_resource(mailbox)

    @register_trusted_agent_class
    class DemoAgent(Agent):
        def run(self):
            proxy = self.host.get_resource("urn:resource:site0.net/demo")
            proxy.put("it works")
            try:
                proxy.get()
            except MethodDisabledError:
                self.host.log("get() correctly denied")
            self.complete()

    image = bed.launch(DemoAgent(), rights=Rights.of("Buffer.*"))
    bed.run()

    status = bed.home.resident_status(image.name)
    print(f"server:        {bed.home.name}")
    print(f"agent:         {image.name} -> {status['status']}")
    print(f"buffer holds:  {mailbox.get()!r}")
    denied = bed.home.audit.records(operation="proxy.invoke", allowed=False)
    print(f"denied calls:  {[r.target for r in denied]}")
    print("\neverything working. next: python examples/quickstart.py")


if __name__ == "__main__":
    main()

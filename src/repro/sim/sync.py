"""Synchronization primitives for simulated threads.

All wake-ups are scheduled as kernel events, preserving determinism.  All
primitives support interruption: an interrupted thread is removed from the
waiter list before its interrupt fires, so no token or item is lost.
"""

from __future__ import annotations

import collections
from typing import Any

from repro.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.sim.threads import SimThread

__all__ = ["SimEvent", "Semaphore", "Mutex", "BlockingQueue"]


def _require_current(kernel: Kernel, op: str) -> SimThread:
    current = kernel.current_thread()
    if current is None:
        raise SimulationError(f"{op} must be called from a simulated thread")
    return current


class SimEvent:
    """A one-shot broadcast event, optionally carrying a payload."""

    def __init__(self, kernel: Kernel) -> None:
        self._kernel = kernel
        self._set = False
        self._payload: Any = None
        self._waiters: list[SimThread] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, payload: Any = None) -> None:
        """Trigger the event, waking all waiters (FIFO)."""
        if self._set:
            return
        self._set = True
        self._payload = payload
        waiters, self._waiters = self._waiters, []
        for thread in waiters:
            self._kernel.schedule(0.0, self._kernel._transfer_to, thread)

    def wait(self) -> Any:
        """Block until the event is set; returns the payload."""
        if not self._set:
            current = _require_current(self._kernel, "SimEvent.wait")
            self._waiters.append(current)
            current._block(self)
        return self._payload

    def _remove_waiter(self, thread: SimThread) -> None:
        if thread in self._waiters:
            self._waiters.remove(thread)


class Semaphore:
    """Counting semaphore with direct hand-off (no barging).

    On release, a waiting thread receives the token directly, so wake-up
    order is strictly FIFO and independent of scheduling accidents.
    """

    def __init__(self, kernel: Kernel, tokens: int = 1) -> None:
        if tokens < 0:
            raise ValueError("token count must be non-negative")
        self._kernel = kernel
        self._tokens = tokens
        self._waiters: collections.deque[SimThread] = collections.deque()

    @property
    def tokens(self) -> int:
        return self._tokens

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def try_acquire(self) -> bool:
        if self._tokens > 0:
            self._tokens -= 1
            return True
        return False

    def acquire(self) -> None:
        if self._tokens > 0:
            self._tokens -= 1
            return
        current = _require_current(self._kernel, "Semaphore.acquire")
        self._waiters.append(current)
        current._block(self)

    def release(self) -> None:
        if self._waiters:
            thread = self._waiters.popleft()
            # Token passes straight to the waiter; count stays 0.
            self._kernel.schedule(0.0, self._kernel._transfer_to, thread)
        else:
            self._tokens += 1

    def _remove_waiter(self, thread: SimThread) -> None:
        try:
            self._waiters.remove(thread)
        except ValueError:
            pass

    def __enter__(self) -> "Semaphore":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class Mutex(Semaphore):
    """Binary semaphore with ownership checking."""

    def __init__(self, kernel: Kernel) -> None:
        super().__init__(kernel, tokens=1)
        self._owner: SimThread | None = None

    def acquire(self) -> None:
        super().acquire()
        self._owner = self._kernel.current_thread()

    def try_acquire(self) -> bool:
        if super().try_acquire():
            self._owner = self._kernel.current_thread()
            return True
        return False

    def release(self) -> None:
        current = self._kernel.current_thread()
        if self._owner is not current:
            raise SimulationError("mutex released by non-owner")
        # Next owner is determined when its acquire() resumes.
        self._owner = None
        super().release()

    @property
    def owner(self) -> SimThread | None:
        return self._owner


class _GetWaiter:
    """A parked consumer; the producer deposits the item here."""

    __slots__ = ("thread", "item", "filled")

    def __init__(self, thread: SimThread) -> None:
        self.thread = thread
        self.item: Any = None
        self.filled = False


class BlockingQueue:
    """Bounded FIFO queue with blocking ``put``/``get``.

    The semantics of the paper's bounded buffer (Fig. 4): ``put`` blocks
    when full, ``get`` blocks when empty.  Items hand off directly to a
    waiting consumer when one exists.
    """

    def __init__(self, kernel: Kernel, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be at least 1 (or None for unbounded)")
        self._kernel = kernel
        self._capacity = capacity
        self._items: collections.deque[Any] = collections.deque()
        self._getters: collections.deque[_GetWaiter] = collections.deque()
        self._putters: collections.deque[tuple[SimThread, Any]] = collections.deque()

    # -- inspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> int | None:
        return self._capacity

    @property
    def full(self) -> bool:
        return self._capacity is not None and len(self._items) >= self._capacity

    # -- producing ---------------------------------------------------------

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False when the queue is full."""
        if self._getters:
            waiter = self._getters.popleft()
            waiter.item = item
            waiter.filled = True
            self._kernel.schedule(0.0, self._kernel._transfer_to, waiter.thread)
            return True
        if self.full:
            return False
        self._items.append(item)
        return True

    def put(self, item: Any) -> None:
        """Blocking put."""
        if self.try_put(item):
            return
        current = _require_current(self._kernel, "BlockingQueue.put")
        self._putters.append((current, item))
        current._block(self)

    # -- consuming ---------------------------------------------------------

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        if self._putters:
            # capacity reached with consumers absent: take straight
            # from the oldest blocked producer.
            thread, item = self._putters.popleft()
            self._kernel.schedule(0.0, self._kernel._transfer_to, thread)
            return True, item
        return False, None

    def get(self) -> Any:
        """Blocking get."""
        ok, item = self.try_get()
        if ok:
            return item
        current = _require_current(self._kernel, "BlockingQueue.get")
        waiter = _GetWaiter(current)
        self._getters.append(waiter)
        current._block(_QueueGetTarget(self, waiter))
        if not waiter.filled:
            raise SimulationError("queue get resumed without an item")
        return waiter.item

    def _admit_putter(self) -> None:
        """A slot opened up: move the oldest blocked producer's item in."""
        if self._putters and not self.full:
            thread, item = self._putters.popleft()
            self._items.append(item)
            self._kernel.schedule(0.0, self._kernel._transfer_to, thread)

    # -- interruption support -------------------------------------------------

    def _remove_waiter(self, thread: SimThread) -> None:
        for i, (t, _item) in enumerate(self._putters):
            if t is thread:
                del self._putters[i]
                return


class _QueueGetTarget:
    """Wait target for a parked consumer."""

    __slots__ = ("_queue", "_waiter")

    def __init__(self, queue: BlockingQueue, waiter: _GetWaiter) -> None:
        self._queue = queue
        self._waiter = waiter

    def _remove_waiter(self, thread: SimThread) -> None:
        try:
            self._queue._getters.remove(self._waiter)
        except ValueError:
            pass

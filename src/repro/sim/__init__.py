"""Deterministic discrete-event simulation kernel.

The substrate under the simulated network and the agent servers.  Two
execution styles share one virtual clock and one event queue:

* **callback events** — cheap, used by protocol machinery (message
  delivery, timers);
* **simulated threads** (:class:`~repro.sim.threads.SimThread`) — real OS
  threads run one-at-a-time under a baton-passing discipline, so agent
  code can be ordinary *blocking* Python (sleep, queue get/put, join)
  while the whole simulation stays deterministic.  These simulated
  threads are what Ajanta's thread-groups-as-protection-domains
  (section 5.3) are built from.
"""

from repro.sim.kernel import EventHandle, Kernel
from repro.sim.threads import SimThread, ThreadState
from repro.sim.sync import BlockingQueue, Mutex, Semaphore, SimEvent
from repro.sim.monitor import Counter, Series, Tally, TimeWeighted

__all__ = [
    "Kernel",
    "EventHandle",
    "SimThread",
    "ThreadState",
    "SimEvent",
    "Semaphore",
    "Mutex",
    "BlockingQueue",
    "Counter",
    "Series",
    "Tally",
    "TimeWeighted",
]

"""Statistics collection for simulations and benchmarks.

Small, allocation-light accumulators.  ``Tally`` uses Welford's online
algorithm so long benchmark runs do not lose precision; ``TimeWeighted``
integrates a piecewise-constant signal (queue length, resident agents)
over virtual time.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["Counter", "Tally", "TimeWeighted", "Series"]


class Counter:
    """Named monotonically increasing counters, with computed aliases.

    An *alias* is a read-only name whose value is the sum of other
    counters — the escape hatch for splitting an overloaded stat into
    distinct causes without breaking every reader of the old name
    (e.g. ``transfers_failed = transfers_failed_breaker +
    transfers_failed_exhausted``).  Aliases appear in :meth:`as_dict`
    and cannot be bumped directly.
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._aliases: dict[str, tuple[str, ...]] = {}

    def add(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        if name in self._aliases:
            raise ValueError(
                f"{name!r} is a computed alias of {self._aliases[name]}; "
                "bump its parts instead"
            )
        self._counts[name] = self._counts.get(name, 0) + amount

    def alias(self, name: str, *parts: str) -> None:
        """Define ``name`` as the computed sum of ``parts``."""
        if not parts:
            raise ValueError("an alias needs at least one part")
        if name in self._counts:
            raise ValueError(f"{name!r} already exists as a real counter")
        self._aliases[name] = parts

    def get(self, name: str) -> int:
        parts = self._aliases.get(name)
        if parts is not None:
            return sum(self.get(part) for part in parts)
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        out = dict(self._counts)
        for name in self._aliases:
            out[name] = self.get(name)
        return out

    def __getitem__(self, name: str) -> int:
        return self.get(name)


class Tally:
    """Streaming mean/variance/min/max of observed samples (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "total": self.total,
        }


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal."""

    def __init__(self, start_time: float = 0.0, initial: float = 0.0) -> None:
        self._last_time = start_time
        self._value = initial
        self._area = 0.0
        self._start = start_time

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError("time moved backwards")
        self._area += self._value * (time - self._last_time)
        self._last_time = time
        self._value = value

    def average(self, now: float | None = None) -> float:
        """Time-weighted mean from start to ``now`` (default: last update)."""
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("now precedes last update")
        area = self._area + self._value * (end - self._last_time)
        span = end - self._start
        return area / span if span > 0 else self._value

    @property
    def current(self) -> float:
        return self._value


class Series:
    """A recorded (time, value) series, with light analysis helpers."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[Any] = []

    def record(self, time: float, value: Any) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("series times must be non-decreasing")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def last(self) -> tuple[float, Any]:
        if not self.times:
            raise IndexError("empty series")
        return self.times[-1], self.values[-1]

"""The discrete-event kernel: virtual clock + ordered event queue.

Events fire in ``(time, priority, insertion order)`` order, which makes
every simulation run bit-reproducible.  Simulated threads
(:mod:`repro.sim.threads`) piggyback on the same queue: "resume thread T"
is just an event action.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SchedulingError, SimulationError
from repro.util.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.threads import SimThread

__all__ = ["Kernel", "EventHandle"]


class EventHandle:
    """A scheduled event; may be cancelled before it fires."""

    __slots__ = ("time", "priority", "seq", "_action", "_args", "_cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[..., Any],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self._action = action
        self._args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self._cancelled = True
        self._action = None  # type: ignore[assignment]
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )


class Kernel:
    """Event queue, virtual clock, and the simulated-thread scheduler."""

    def __init__(self) -> None:
        self.clock = VirtualClock()
        self._queue: list[EventHandle] = []
        self._seq = itertools.count()
        self._baton = threading.Event()  # set by a sim thread yielding control
        self._current: "SimThread | None" = None
        self._threads: list["SimThread"] = []
        self._running = False
        self._thread_failures: list["SimThread"] = []

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        return self.clock.now()

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``action(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"cannot schedule event {delay}s in the past")
        handle = EventHandle(
            self.now() + delay, priority, next(self._seq), action, args
        )
        heapq.heappush(self._queue, handle)
        return handle

    def schedule_at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``action(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self.now(), action, *args, priority=priority)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.set(event.time)
            event._action(*event._args)
            self._raise_thread_failures()
            return True
        return False

    def run(self, until: float | None = None, *, detect_deadlock: bool = True) -> float:
        """Run events until the queue empties (or virtual time ``until``).

        Raises :class:`SimulationError` if, at quiescence, simulated
        threads are still blocked with nothing left that could wake them
        (a deadlock), unless ``detect_deadlock=False``.

        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("kernel.run() re-entered")
        self._running = True
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(self._queue)
                self.clock.set(head.time)
                head._action(*head._args)
                self._raise_thread_failures()
            if until is not None and self.now() < until:
                self.clock.set(until)
        finally:
            self._running = False
        if detect_deadlock and not self._queue:
            blocked = [t for t in self._threads if t.is_blocked]
            if blocked:
                names = ", ".join(t.name for t in blocked)
                raise SimulationError(f"deadlock: threads still blocked: {names}")
        return self.now()

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    # -- simulated-thread support (used by repro.sim.threads) ---------------

    def current_thread(self) -> "SimThread | None":
        """The simulated thread currently holding the baton, if any."""
        return self._current

    def _register_thread(self, thread: "SimThread") -> None:
        self._threads.append(thread)

    def _transfer_to(self, thread: "SimThread") -> None:
        """Event action: hand the baton to ``thread`` until it yields back."""
        previous = self._current
        self._current = thread
        self._baton.clear()
        thread._resume.set()
        self._baton.wait()
        self._current = previous

    def _note_thread_failure(self, thread: "SimThread") -> None:
        self._thread_failures.append(thread)

    def _raise_thread_failures(self) -> None:
        if not self._thread_failures:
            return
        thread = self._thread_failures.pop(0)
        exc = thread.exception
        assert exc is not None
        raise SimulationError(
            f"unhandled exception in simulated thread {thread.name!r}: {exc!r}"
        ) from exc

    def threads(self) -> list["SimThread"]:
        """All simulated threads ever registered with this kernel."""
        return list(self._threads)

"""The discrete-event kernel: virtual clock + ordered event queue.

Events fire in ``(time, priority, insertion order)`` order, which makes
every simulation run bit-reproducible.  Simulated threads
(:mod:`repro.sim.threads`) piggyback on the same queue: "resume thread T"
is just an event action.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import SchedulingError, SimulationError
from repro.util.clock import VirtualClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.threads import SimThread

__all__ = ["Kernel", "EventHandle", "RepeatingEvent"]


class EventHandle:
    """A scheduled event; may be cancelled before it fires.

    A *daemon* event (``daemon=True``) never keeps the simulation alive:
    :meth:`Kernel.run` stops once only daemon events remain in the
    queue.  Periodic background machinery — telemetry scrapers, profiler
    ticks, SLO sweeps — schedules itself as daemon so a world that has
    finished its real work still quiesces.
    """

    __slots__ = (
        "time", "priority", "seq", "daemon", "_action", "_args", "_cancelled",
        "_kernel",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[..., Any],
        args: tuple[Any, ...],
        daemon: bool = False,
        kernel: "Kernel | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.daemon = daemon
        self._action = action
        self._args = args
        self._cancelled = False
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        if self._cancelled:
            return
        self._cancelled = True
        self._action = None  # type: ignore[assignment]
        self._args = ()
        if not self.daemon and self._kernel is not None:
            # Reconcile the foreground count eagerly: a cancelled
            # timeout deep in the queue must not keep run() (or its
            # daemon ticks) alive until the clock reaches its slot.
            self._kernel._nondaemon_queued -= 1
            self.daemon = True  # _note_pop must not decrement again

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )


class RepeatingEvent:
    """A self-rescheduling periodic event (see :meth:`Kernel.every`).

    ``cancel()`` stops the cycle; the currently queued firing is
    cancelled too, so no further ticks run.
    """

    __slots__ = ("_kernel", "_interval", "_action", "_args", "_priority",
                 "_daemon", "_handle", "_cancelled", "fired")

    def __init__(
        self,
        kernel: "Kernel",
        interval: float,
        action: Callable[..., Any],
        args: tuple[Any, ...],
        priority: int,
        daemon: bool,
    ) -> None:
        if interval <= 0:
            raise SchedulingError(f"repeat interval must be positive: {interval}")
        self._kernel = kernel
        self._interval = interval
        self._action = action
        self._args = args
        self._priority = priority
        self._daemon = daemon
        self._cancelled = False
        self.fired = 0
        self._handle = self._schedule_next()

    def _schedule_next(self) -> EventHandle:
        return self._kernel.schedule(
            self._interval, self._fire,
            priority=self._priority, daemon=self._daemon,
        )

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        try:
            self._action(*self._args)
        finally:
            if not self._cancelled:
                self._handle = self._schedule_next()

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Kernel:
    """Event queue, virtual clock, and the simulated-thread scheduler."""

    def __init__(self) -> None:
        self.clock = VirtualClock()
        self._queue: list[EventHandle] = []
        # Queued events that are *not* daemon (cancelled ones included —
        # they are reconciled lazily when popped).  run() stops when this
        # reaches zero: daemon ticks alone never keep the world alive.
        self._nondaemon_queued = 0
        self._seq = itertools.count()
        self._baton = threading.Event()  # set by a sim thread yielding control
        self._current: "SimThread | None" = None
        self._threads: list["SimThread"] = []
        self._running = False
        self._thread_failures: list["SimThread"] = []
        # Non-cancelled events executed, ever.  Deterministic under a
        # fixed seed, which makes it the noise-free work metric for
        # benches (wall-clock ratios of ms-scale runs are scheduler
        # jitter on shared hardware).
        self.events_processed = 0

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        return self.clock.now()

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        daemon: bool = False,
    ) -> EventHandle:
        """Schedule ``action(*args)`` to run ``delay`` seconds from now.

        ``daemon=True`` marks a background event that must not keep
        :meth:`run` alive once all foreground work has drained.
        """
        if delay < 0:
            raise SchedulingError(f"cannot schedule event {delay}s in the past")
        handle = EventHandle(
            self.now() + delay, priority, next(self._seq), action, args,
            daemon, kernel=self,
        )
        heapq.heappush(self._queue, handle)
        if not daemon:
            self._nondaemon_queued += 1
        return handle

    def schedule_at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``action(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self.now(), action, *args, priority=priority)

    def every(
        self,
        interval: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        daemon: bool = True,
    ) -> RepeatingEvent:
        """Run ``action(*args)`` every ``interval`` virtual seconds.

        The periodic tick hook behind continuous telemetry: metric
        scrape rounds, profiler samples and SLO sweeps all ride this.
        Daemon by default — a repeating foreground event would make
        ``run()`` non-terminating; pass ``daemon=False`` only together
        with ``run(until=...)``.
        """
        return RepeatingEvent(self, interval, action, args, priority, daemon)

    def _note_pop(self, event: EventHandle) -> None:
        if not event.daemon:
            self._nondaemon_queued -= 1
        # Once popped the event is out of the foreground count; a late
        # cancel() (e.g. a timeout cleaned up after it already fired)
        # must not reconcile a second time.
        event._kernel = None

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            self._note_pop(event)
            if event.cancelled:
                continue
            self.clock.set(event.time)
            event._action(*event._args)
            self._raise_thread_failures()
            return True
        return False

    def run(self, until: float | None = None, *, detect_deadlock: bool = True) -> float:
        """Run events until the queue empties (or virtual time ``until``).

        Raises :class:`SimulationError` if, at quiescence, simulated
        threads are still blocked with nothing left that could wake them
        (a deadlock), unless ``detect_deadlock=False``.

        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("kernel.run() re-entered")
        self._running = True
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    self._note_pop(head)
                    continue
                if until is not None and head.time > until:
                    break
                if until is None and self._nondaemon_queued == 0:
                    # Only daemon events (periodic telemetry ticks)
                    # remain and no time bound was given: the world's
                    # real work has drained.  With an explicit ``until``
                    # the daemon ticks keep firing up to the bound.
                    break
                heapq.heappop(self._queue)
                self._note_pop(head)
                self.clock.set(head.time)
                self.events_processed += 1
                head._action(*head._args)
                self._raise_thread_failures()
            if until is not None and self.now() < until:
                self.clock.set(until)
        finally:
            self._running = False
        exhausted = not self._queue or (
            until is None and self._nondaemon_queued == 0
        )
        if detect_deadlock and exhausted:
            blocked = [t for t in self._threads if t.is_blocked]
            if blocked:
                names = ", ".join(t.name for t in blocked)
                raise SimulationError(f"deadlock: threads still blocked: {names}")
        return self.now()

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    # -- simulated-thread support (used by repro.sim.threads) ---------------

    def current_thread(self) -> "SimThread | None":
        """The simulated thread currently holding the baton, if any."""
        return self._current

    def _register_thread(self, thread: "SimThread") -> None:
        self._threads.append(thread)

    def _transfer_to(self, thread: "SimThread") -> None:
        """Event action: hand the baton to ``thread`` until it yields back."""
        previous = self._current
        self._current = thread
        self._baton.clear()
        thread._resume.set()
        self._baton.wait()
        self._current = previous

    def _note_thread_failure(self, thread: "SimThread") -> None:
        self._thread_failures.append(thread)

    def _raise_thread_failures(self) -> None:
        if not self._thread_failures:
            return
        thread = self._thread_failures.pop(0)
        exc = thread.exception
        assert exc is not None
        raise SimulationError(
            f"unhandled exception in simulated thread {thread.name!r}: {exc!r}"
        ) from exc

    def threads(self) -> list["SimThread"]:
        """All simulated threads ever registered with this kernel."""
        return list(self._threads)

"""Simulated threads: plain blocking Python under a deterministic scheduler.

Each :class:`SimThread` is a real OS thread, but *exactly one* thread (the
kernel's or one simulated thread) runs at any instant; control moves via a
baton (a pair of ``threading.Event`` handshakes).  Blocking operations —
``sleep``, synchronization primitives in :mod:`repro.sim.sync`, ``join`` —
park the thread and schedule its wake-up as an ordinary kernel event, so
execution order is a pure function of the event queue and is reproducible
run-to-run.

This is the substrate for Ajanta's protection-domain identification: the
server runs every visiting agent in its own (group of) simulated threads,
and the security manager asks "which thread group is the current thread
in?" to decide which protection domain a request comes from (section 5.3).
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable, Protocol

from repro.errors import AgentStateError, SimulationError
from repro.sim.kernel import Kernel

__all__ = ["SimThread", "ThreadState", "Interrupted", "WaitTarget"]


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    KILLED = "killed"


class Interrupted(SimulationError):
    """Raised inside a simulated thread that was interrupted while blocked."""


class WaitTarget(Protocol):
    """Something a blocked thread can be waiting on (for interruption)."""

    def _remove_waiter(self, thread: "SimThread") -> None: ...


class _SleepTarget:
    """Wait target for ``sleep``: cancelling the wake-up event suffices."""

    __slots__ = ("_handle",)

    def __init__(self, handle: Any) -> None:
        self._handle = handle

    def _remove_waiter(self, thread: "SimThread") -> None:
        self._handle.cancel()


class SimThread:
    """A deterministically scheduled thread of control.

    Parameters
    ----------
    kernel:
        The owning simulation kernel.
    target:
        Callable executed in the thread; its return value becomes
        :attr:`result`.
    name:
        Diagnostic name.
    on_error:
        ``"raise"`` (default): an uncaught exception aborts the simulation
        at the kernel level.  ``"store"``: the exception is kept on
        :attr:`exception` for a joiner to collect (used for agent threads,
        whose failures are a normal, handled occurrence).
    context:
        Arbitrary metadata slot; the sandbox layer stores the thread's
        thread-group here.
    """

    def __init__(
        self,
        kernel: Kernel,
        target: Callable[[], Any],
        name: str = "thread",
        *,
        on_error: str = "raise",
        context: dict[str, Any] | None = None,
    ) -> None:
        if on_error not in ("raise", "store"):
            raise ValueError(f"on_error must be 'raise' or 'store', not {on_error!r}")
        self.kernel = kernel
        self.name = name
        self.state = ThreadState.NEW
        self.result: Any = None
        self.exception: BaseException | None = None
        self.context: dict[str, Any] = context if context is not None else {}
        self._target = target
        self._on_error = on_error
        self._resume = threading.Event()
        self._interrupt_exc: BaseException | None = None
        self._waiting_on: WaitTarget | None = None
        self._joiners: list["SimThread"] = []
        self._os_thread = threading.Thread(
            target=self._bootstrap, name=f"sim:{name}", daemon=True
        )
        kernel._register_thread(self)

    # -- lifecycle ------------------------------------------------------------

    def start(self, delay: float = 0.0) -> "SimThread":
        """Schedule the thread to begin running ``delay`` seconds from now."""
        if self.state is not ThreadState.NEW:
            raise AgentStateError(f"thread {self.name!r} already started")
        self.state = ThreadState.READY
        self._os_thread.start()
        self.kernel.schedule(delay, self.kernel._transfer_to, self)
        return self

    def _bootstrap(self) -> None:
        self._resume.wait()
        self._resume.clear()
        self.state = ThreadState.RUNNING
        try:
            self.result = self._target()
        except _Kill:
            self.state = ThreadState.KILLED
        except BaseException as exc:  # noqa: BLE001 - report, don't swallow
            self.exception = exc
            self.state = ThreadState.FAILED
            if self._on_error == "raise":
                self.kernel._note_thread_failure(self)
        else:
            self.state = ThreadState.DONE
        finally:
            self._wake_joiners()
            self.kernel._baton.set()

    def _wake_joiners(self) -> None:
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            self.kernel.schedule(0.0, self.kernel._transfer_to, joiner)

    # -- blocking (called from inside the thread itself) ------------------------

    def _block(self, waiting_on: WaitTarget | None = None) -> None:
        """Park this thread and give the baton back to the kernel.

        Only callable from the thread itself.  Something must already have
        arranged a future wake-up (scheduled event or waiter-list entry).
        """
        assert self.kernel.current_thread() is self, "block called off-thread"
        self.state = ThreadState.BLOCKED
        self._waiting_on = waiting_on
        self.kernel._baton.set()
        self._resume.wait()
        self._resume.clear()
        self._waiting_on = None
        self.state = ThreadState.RUNNING
        if self._interrupt_exc is not None:
            exc, self._interrupt_exc = self._interrupt_exc, None
            raise exc

    def sleep(self, duration: float) -> None:
        """Block for ``duration`` seconds of virtual time."""
        handle = self.kernel.schedule(duration, self.kernel._transfer_to, self)
        self._block(_SleepTarget(handle))

    def join(self, *, reraise: bool = True) -> Any:
        """Block until this thread finishes; return its result.

        With ``reraise=True`` (default) a failure in the joined thread is
        re-raised in the joiner.
        """
        current = self.kernel.current_thread()
        if current is None:
            raise SimulationError("join() must be called from a simulated thread")
        if current is self:
            raise SimulationError("thread cannot join itself")
        if self.state in (ThreadState.NEW, ThreadState.READY, ThreadState.RUNNING,
                          ThreadState.BLOCKED):
            self._joiners.append(current)
            current._block(_JoinTarget(self))
        if self.state is ThreadState.FAILED and reraise:
            assert self.exception is not None
            raise self.exception
        return self.result

    # -- external control --------------------------------------------------------

    def interrupt(self, exc: BaseException | None = None) -> None:
        """Wake a blocked thread with an exception (default Interrupted).

        Used for agent control commands (section 4: "issuing control
        commands to them").  No effect on finished threads; interrupting a
        thread that is READY but not yet blocked marks the interrupt as
        pending — it fires at the thread's next blocking point.
        """
        if self.state in (ThreadState.DONE, ThreadState.FAILED, ThreadState.KILLED):
            return
        self._interrupt_exc = exc if exc is not None else Interrupted(
            f"thread {self.name!r} interrupted"
        )
        if self.state is ThreadState.BLOCKED and self._waiting_on is not None:
            # Cancel the original wake-up and schedule our own.  When a
            # second interrupt lands before the first resume runs (e.g. a
            # watchdog deadline followed by a kill), ``_waiting_on`` is
            # already None and a wake-up is already scheduled — replacing
            # the pending exception suffices; scheduling another resume
            # would hand the baton to a thread that has since finished.
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
            self.kernel.schedule(0.0, self.kernel._transfer_to, self)

    def kill(self) -> None:
        """Terminate the thread at its next blocking point."""
        self.interrupt(_Kill())

    # -- introspection ------------------------------------------------------------

    @property
    def is_blocked(self) -> bool:
        return self.state is ThreadState.BLOCKED

    @property
    def is_alive(self) -> bool:
        return self.state in (
            ThreadState.READY,
            ThreadState.RUNNING,
            ThreadState.BLOCKED,
        )

    @property
    def finished(self) -> bool:
        return self.state in (ThreadState.DONE, ThreadState.FAILED, ThreadState.KILLED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimThread({self.name!r}, {self.state.value})"


class _JoinTarget:
    """Wait target for ``join``: drop the joiner from the joinee's list."""

    __slots__ = ("_thread",)

    def __init__(self, thread: SimThread) -> None:
        self._thread = thread

    def _remove_waiter(self, thread: SimThread) -> None:
        if thread in self._thread._joiners:
            self._thread._joiners.remove(thread)


class _Kill(BaseException):
    """Internal sentinel raised to terminate a thread; never escapes."""

"""The agent environment: what a visiting agent sees of its host.

Fig. 1: "Each agent server has an agent environment component, which acts
as the interface between visiting agents and the server."  The server
injects an :class:`AgentEnvironment` as the agent's ``host`` reference on
arrival (section 4).

This facade is the *only* object connecting agent code to the server.
Its internals are underscore-prefixed (unreachable from verified agent
code), and every method either performs a safe read or funnels into a
mediated path: ``get_resource`` runs the Fig. 6 binding protocol (so the
agent gets proxies, never resources), ``register_resource`` passes the
security manager's ``resource_register`` check, and identity for all of
it derives from the calling thread's protection domain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.agents.mailbox import AgentMailbox, mailbox_name_of
from repro.core.policy import SecurityPolicy
from repro.core.resource import Resource, ResourceImpl
from repro.errors import AgentStateError, UnknownNameError
from repro.naming.urn import URN
from repro.sandbox.threadgroup import wrap_in_group
from repro.sim.threads import SimThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.sandbox.domain import ProtectionDomain
    from repro.server.agent_server import AgentServer

__all__ = ["AgentEnvironment", "AgentThread"]


class AgentThread:
    """Handle to a worker thread an agent spawned inside its own group.

    Section 5.3: "All threads created by the agent belong to the same
    thread group" — the handle exposes join/alive only; the underlying
    simulated thread stays private.
    """

    def __init__(self, thread: SimThread) -> None:
        self._thread = thread

    def join(self) -> object:
        """Wait for the worker; returns its result (re-raises its error)."""
        return self._thread.join()

    def alive(self) -> bool:
        return self._thread.is_alive


class AgentEnvironment:
    """Per-resident facade over one :class:`AgentServer`."""

    def __init__(
        self,
        server: "AgentServer",
        domain: "ProtectionDomain",
        home_site: str,
    ) -> None:
        self._server = server
        self._domain = domain
        self._home_site = home_site
        self._mailbox: AgentMailbox | None = None

    # -- orientation ----------------------------------------------------------

    def server_name(self) -> str:
        """The global name of the hosting server."""
        return self._server.name

    def home_site(self) -> str:
        return self._home_site

    def now(self) -> float:
        """Current (virtual) time at this host."""
        return self._server.clock.now()

    # -- time ----------------------------------------------------------------------

    def sleep(self, seconds: float) -> None:
        """Suspend the calling agent thread for ``seconds``."""
        thread = self._server.kernel.current_thread()
        if thread is None:
            raise AgentStateError("sleep() outside a simulated thread")
        thread.sleep(seconds)

    # -- telemetry (read-only, for touring collector agents) ---------------------------

    def telemetry_snapshot(self) -> dict | None:
        """This host's metrics as a snapshot wire dict (None if unserved).

        A safe read: the snapshot is a copy, carries no live references,
        and exposes exactly what the host already serves any
        authenticated peer over ``telemetry.scrape``.  Touring
        collector agents (:class:`repro.obs.aggregate.CollectorAgent`)
        accumulate these per hop.
        """
        unit = getattr(self._server, "telemetry", None)
        if unit is None:
            return None
        return unit.snapshot().to_wire()

    # -- resources (the paper's primitives, section 4) ---------------------------------

    def get_resource(self, name: "URN | str", token: Any | None = None) -> Resource:
        """Obtain a proxy for a named resource (Fig. 6, steps 2-6).

        ``token`` — a capability token (or its wire bytes) saved from a
        previous proxy's ``capability_token()``, typically carried across
        a migration hop: a fresh token re-binds in O(1) without a policy
        consult, a stale one transparently re-runs full authorization.
        """
        if isinstance(name, str):
            name = URN.parse(name)
        return self._server.binding.get_resource(name, token=token)

    def register_resource(self, resource: ResourceImpl) -> None:
        """Install a resource on this server (section 5.5; mediated)."""
        self._server.binding.register_resource(resource)

    def resources_available(self) -> list[str]:
        """Names of resources currently registered here."""
        return [str(n) for n in self._server.registry.names()]

    # -- awareness of co-located agents ----------------------------------------------

    def co_located_agents(self) -> list[str]:
        """Names of other agents currently resident on this server."""
        me = self._domain.domain_id
        return [
            str(record.agent)
            for record in self._server.domain_db.residents()
            if record.domain_id != me
        ]

    # -- agent-to-agent communication (sections 5.5 / 6) -------------------------------

    def create_mailbox(self, policy: SecurityPolicy) -> str:
        """Register this agent as a resource: an inbox under its name.

        ``policy`` decides which other agents may ``deliver``.  Returns
        the mailbox's global name (share it, or let peers derive it with
        :func:`~repro.agents.mailbox.mailbox_name_of`).  The registration
        is ephemeral: it disappears when this agent departs or retires.
        """
        if self._mailbox is not None:
            raise AgentStateError("agent already has a mailbox here")
        assert self._domain.credentials is not None
        mailbox = AgentMailbox(
            self._domain.credentials.agent, policy, self._server.kernel
        )
        self._server.registry.register_for(
            mailbox, self._domain.domain_id, ephemeral=True
        )
        self._mailbox = mailbox
        return str(mailbox.resource_name())

    def mailbox_of(self, agent_name: str) -> str:
        """The well-known mailbox resource name of another agent."""
        return str(mailbox_name_of(URN.parse(agent_name)))

    def receive(self) -> tuple[str, object]:
        """Blocking read from this agent's own mailbox: (sender, message)."""
        if self._mailbox is None:
            raise AgentStateError("create_mailbox() first")
        return self._mailbox.receive()

    def try_receive(self) -> tuple[bool, object]:
        if self._mailbox is None:
            raise AgentStateError("create_mailbox() first")
        return self._mailbox.try_receive()

    # -- co-location (section 4's "co-location with named objects") --------------------

    def locate(self, name: "URN | str") -> str | None:
        """Where the name service last saw ``name`` (None if unknown)."""
        if self._server.name_service is None:
            return None
        if isinstance(name, str):
            name = URN.parse(name)
        try:
            return self._server.name_service.lookup(name).location
        except UnknownNameError:
            return None

    # -- worker threads (section 5.3: threads stay in the agent's group) ---------------

    def spawn_thread(self, target, name: str = "worker") -> AgentThread:
        """Run ``target`` concurrently inside this agent's thread group."""
        self._server.security_manager.check_thread_create(self._domain.thread_group)
        thread = SimThread(
            self._server.kernel,
            wrap_in_group(self._domain.thread_group, target),
            name=f"{self._domain.domain_id}/{name}",
            on_error="store",
        )
        # Group-wide control (terminate, runaway containment) must reach
        # workers too, so the group tracks its members.
        self._domain.thread_group.adopt(thread)
        thread.start()
        return AgentThread(thread)

    # -- child agents (section 4: creating, monitoring, controlling) -------------------

    def launch_child(self, image) -> str:
        """Launch a carried agent image on this server.

        Section 2 distinguishes an agent's *creator* from its owner: "The
        agent itself may be created by another entity — such as an
        application program, or another agent."  The child image must
        carry its own owner-signed credentials (typically minted at home
        and carried in the parent's state); it passes the same admission
        checks as any arriving agent.  Returns the child's domain id.
        """
        from repro.agents.transfer import AgentImage

        if not isinstance(image, AgentImage):
            raise AgentStateError("launch_child expects an AgentImage")
        self._server.audit.record(
            self._domain.domain_id, "agent.launch_child", str(image.name), True
        )
        return self._server.launch(image)

    def agent_status(self, agent_name: "URN | str") -> dict:
        """Status of an agent resident on *this* server (child monitoring)."""
        if isinstance(agent_name, str):
            agent_name = URN.parse(agent_name)
        return self._server.resident_status(agent_name)

    def terminate_child(self, agent_name: "URN | str") -> bool:
        """Issue a terminate control command to a child on this server.

        Section 4: agents may issue "control commands" to their children.
        Only the recorded *creator* of the target may do this; anyone else
        gets a PrivilegeError (audited).
        """
        from repro.errors import PrivilegeError

        if isinstance(agent_name, str):
            agent_name = URN.parse(agent_name)
        record = self._server.domain_db.by_agent(agent_name)
        assert self._domain.credentials is not None
        me = self._domain.credentials.agent
        if record.creator != me:
            self._server.audit.record(
                self._domain.domain_id, "agent.terminate_child",
                str(agent_name), False, "caller is not the creator",
            )
            raise PrivilegeError(
                f"{me} is not the creator of {agent_name}"
            )
        self._server.audit.record(
            self._domain.domain_id, "agent.terminate_child",
            str(agent_name), True, "",
        )
        killed = self._server.terminate_resident(record.domain_id)
        if killed:
            self._server.stats.add("agents_terminated_by_creator")
        return killed

    # -- reporting --------------------------------------------------------------------

    def report_home(self, payload: Any) -> None:
        """Send a status/result report to the agent's home site."""
        self._server.send_agent_report(self._domain, self._home_site, payload)

    def log(self, message: str) -> None:
        """Leave a note in the server's audit trail (benign, always allowed)."""
        self._server.audit.record(
            self._domain.domain_id, "agent.log", "", True, message
        )

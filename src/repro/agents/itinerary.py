"""Itineraries: higher-level travel plans over the ``go`` primitive.

Section 4: "Higher-level abstractions such as co-location with named
objects, or specification of itineraries are implemented on top of the
``go`` primitive."  An :class:`Itinerary` is ordinary serializable agent
state — it travels with the agent and the agent advances it at each stop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AgentStateError
from repro.util.serialization import register_serializable

__all__ = ["Stop", "Itinerary"]


@dataclass(frozen=True, slots=True)
class Stop:
    """One leg of the journey: a server and the method to run there."""

    server: str
    method: str = "run"

    def to_state(self) -> dict:
        return {"server": self.server, "method": self.method}

    @classmethod
    def from_state(cls, state: dict) -> "Stop":
        return cls(server=state["server"], method=state["method"])


register_serializable(Stop)


class Itinerary:
    """An ordered list of stops with a progress cursor."""

    def __init__(self, stops: list[Stop], position: int = 0) -> None:
        if position < 0 or position > len(stops):
            raise AgentStateError(f"itinerary position {position} out of range")
        self._stops = list(stops)
        self._position = position

    @classmethod
    def tour(
        cls,
        servers: list[str],
        method: str = "run",
        *,
        home: str | None = None,
        home_method: str = "report",
    ) -> "Itinerary":
        """Visit each server with ``method``, optionally ending at home."""
        stops = [Stop(server=s, method=method) for s in servers]
        if home is not None:
            stops.append(Stop(server=home, method=home_method))
        return cls(stops)

    # -- progress ------------------------------------------------------------

    @property
    def position(self) -> int:
        return self._position

    @property
    def finished(self) -> bool:
        return self._position >= len(self._stops)

    def current(self) -> Stop:
        if self.finished:
            raise AgentStateError("itinerary is finished")
        return self._stops[self._position]

    def advance(self) -> "Stop | None":
        """Move past the current stop; returns the next one (None at end)."""
        if self.finished:
            raise AgentStateError("itinerary is finished")
        self._position += 1
        return None if self.finished else self._stops[self._position]

    def divert(self, server: str, method: str = "run") -> Stop:
        """Insert an unplanned stop before the remaining legs.

        Used by failure handling: an agent whose transfer exhausted its
        retries can divert to its home site (or a fallback replica) and
        still keep the rest of the plan intact.
        """
        stop = Stop(server=server, method=method)
        self._stops.insert(self._position, stop)
        return stop

    def remaining(self) -> list[Stop]:
        return self._stops[self._position :]

    def __len__(self) -> int:
        return len(self._stops)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Itinerary)
            and self._stops == other._stops
            and self._position == other._position
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Itinerary({self._position}/{len(self._stops)})"

    # -- serialization ----------------------------------------------------------

    def to_state(self) -> dict:
        return {"stops": list(self._stops), "position": self._position}

    @classmethod
    def from_state(cls, state: dict) -> "Itinerary":
        return cls(stops=state["stops"], position=int(state["position"]))


register_serializable(Itinerary)

"""Itineraries: higher-level travel plans over the ``go`` primitive.

Section 4: "Higher-level abstractions such as co-location with named
objects, or specification of itineraries are implemented on top of the
``go`` primitive."  An :class:`Itinerary` is ordinary serializable agent
state — it travels with the agent and the agent advances it at each stop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.mac import HmacKey
from repro.errors import AgentStateError, SerializationError
from repro.util.serialization import canonical_digest, register_serializable

__all__ = ["Stop", "Itinerary", "ItineraryCommitment"]


@dataclass(frozen=True, slots=True)
class Stop:
    """One leg of the journey: a server and the method to run there."""

    server: str
    method: str = "run"

    def to_state(self) -> dict:
        return {"server": self.server, "method": self.method}

    @classmethod
    def from_state(cls, state: dict) -> "Stop":
        return cls(server=state["server"], method=state["method"])


register_serializable(Stop, intern=True)


class Itinerary:
    """An ordered list of stops with a progress cursor."""

    def __init__(self, stops: list[Stop], position: int = 0) -> None:
        if position < 0 or position > len(stops):
            raise AgentStateError(f"itinerary position {position} out of range")
        self._stops = list(stops)
        self._position = position

    @classmethod
    def tour(
        cls,
        servers: list[str],
        method: str = "run",
        *,
        home: str | None = None,
        home_method: str = "report",
    ) -> "Itinerary":
        """Visit each server with ``method``, optionally ending at home."""
        stops = [Stop(server=s, method=method) for s in servers]
        if home is not None:
            stops.append(Stop(server=home, method=home_method))
        return cls(stops)

    # -- progress ------------------------------------------------------------

    @property
    def stops(self) -> tuple[Stop, ...]:
        """The full planned route, visited and remaining."""
        return tuple(self._stops)

    @property
    def position(self) -> int:
        return self._position

    @property
    def finished(self) -> bool:
        return self._position >= len(self._stops)

    def current(self) -> Stop:
        if self.finished:
            raise AgentStateError("itinerary is finished")
        return self._stops[self._position]

    def advance(self) -> "Stop | None":
        """Move past the current stop; returns the next one (None at end)."""
        if self.finished:
            raise AgentStateError("itinerary is finished")
        self._position += 1
        return None if self.finished else self._stops[self._position]

    def divert(self, server: str, method: str = "run") -> Stop:
        """Insert an unplanned stop before the remaining legs.

        Used by failure handling: an agent whose transfer exhausted its
        retries can divert to its home site (or a fallback replica) and
        still keep the rest of the plan intact.
        """
        stop = Stop(server=server, method=method)
        self._stops.insert(self._position, stop)
        return stop

    def remaining(self) -> list[Stop]:
        return self._stops[self._position :]

    def __len__(self) -> int:
        return len(self._stops)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Itinerary)
            and self._stops == other._stops
            and self._position == other._position
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Itinerary({self._position}/{len(self._stops)})"

    # -- serialization ----------------------------------------------------------

    def to_state(self) -> dict:
        return {"stops": list(self._stops), "position": self._position}

    @classmethod
    def from_state(cls, state: dict) -> "Itinerary":
        return cls(stops=state["stops"], position=int(state["position"]))


register_serializable(Itinerary)


@dataclass(frozen=True, slots=True)
class ItineraryCommitment:
    """A home-sealed record of the tour an agent was launched with.

    The cryptographic itinerary of the integrity layer
    (:mod:`repro.agents.integrity`): at launch the home server MACs the
    planned stops under a key that never leaves it, and on the agent's
    return it re-appraises the completed tour against this record.  A
    malicious host can read the plan (the itinerary is plain agent
    state) but cannot mint, alter or substitute a commitment — any
    forgery fails the MAC check at home, and a stop the chain shows
    visited that the commitment does not name is an itinerary violation.
    """

    agent: str
    home: str
    stops: tuple[tuple[str, str], ...]  # (server, method) per planned leg
    issued_at: float
    mac: bytes

    def body(self) -> dict:
        return {
            "agent": self.agent,
            "home": self.home,
            "stops": self.stops,
            "issued_at": self.issued_at,
        }

    @classmethod
    def issue(
        cls,
        key: HmacKey,
        *,
        agent: str,
        home: str,
        stops: tuple[tuple[str, str], ...],
        issued_at: float,
    ) -> "ItineraryCommitment":
        unsealed = cls(
            agent=agent, home=home, stops=stops, issued_at=issued_at, mac=b""
        )
        return cls(
            agent=agent,
            home=home,
            stops=stops,
            issued_at=issued_at,
            mac=key.digest(canonical_digest(unsealed.body())),
        )

    def verify(self, key: HmacKey) -> bool:
        return key.verify(canonical_digest(self.body()), self.mac)

    def to_state(self) -> dict:
        state = self.body()
        state["mac"] = self.mac
        return state

    @classmethod
    def from_state(cls, state: dict) -> "ItineraryCommitment":
        agent = state["agent"]
        home = state["home"]
        stops = state["stops"]
        issued_at = state["issued_at"]
        mac = state["mac"]
        if (
            not isinstance(agent, str)
            or not (0 < len(agent) <= 512)
            or not isinstance(home, str)
            or not (0 < len(home) <= 512)
            or not isinstance(stops, tuple)
            or len(stops) > 1024
            or not all(
                isinstance(s, tuple)
                and len(s) == 2
                and all(isinstance(part, str) and len(part) <= 512 for part in s)
                for s in stops
            )
            or not isinstance(issued_at, float)
            or not isinstance(mac, bytes)
            or not (0 < len(mac) <= 64)
        ):
            raise SerializationError("malformed itinerary commitment")
        return cls(
            agent=agent, home=home, stops=stops, issued_at=issued_at, mac=mac
        )


register_serializable(ItineraryCommitment, intern=True)

"""The ``Agent`` base class and its control-flow signals.

An application defines agents "by extending the system-defined Agent
class" (section 4).  Mobility is *weak*: ``go`` raises
:class:`Departure`, the hosting machinery captures the agent's state,
ships it, and the destination server invokes the named entry method on a
fresh instance — the same model Ajanta used, since the JVM could not
serialize live stacks.

Two kinds of agents exist, mirroring trusted-classpath vs downloaded
code in the Java model:

* **trusted** agent classes are registered in-process with
  :func:`register_trusted_agent_class` (the "local classpath"); their
  images carry no source;
* **untrusted** agents carry their class source, which every receiving
  server pushes through the code verifier and loads into a fresh,
  isolated namespace.

Agent state is every public (non-underscore) instance attribute holding
serializable values.  The names ``host`` and ``name`` are reserved (the
server injects them on arrival).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import AgentStateError, MigrationError
from repro.naming.urn import URN

if TYPE_CHECKING:  # pragma: no cover
    from repro.agents.environment import AgentEnvironment

__all__ = [
    "Agent",
    "Departure",
    "Completion",
    "register_trusted_agent_class",
    "trusted_agent_class",
    "RESERVED_AGENT_ATTRS",
]

RESERVED_AGENT_ATTRS = frozenset({"host", "name"})


class Departure(BaseException):
    """Raised by ``go``: end here, resume at ``destination.method()``.

    Derives from BaseException so agent code that catches ``Exception``
    (legitimately, for its own error handling) cannot swallow the
    migration signal.
    """

    def __init__(self, destination: str, method: str) -> None:
        super().__init__(f"go({destination!r}, {method!r})")
        self.destination = destination
        self.method = method


class Completion(BaseException):
    """Raised by ``complete``: the agent is done; report the result."""

    def __init__(self, result: Any = None) -> None:
        super().__init__("agent completed")
        self.result = result


class Agent:
    """Base class for all agents."""

    # Injected by the hosting server before any entry method runs.
    host: "AgentEnvironment"
    name: URN

    # -- primitives (section 4) ------------------------------------------------

    def go(self, destination: str, method: str = "run") -> None:
        """Migrate to ``destination`` and resume at ``method`` (never returns)."""
        if not isinstance(destination, str) or not destination:
            raise MigrationError(f"invalid destination {destination!r}")
        raise Departure(destination, method)

    def complete(self, result: Any = None) -> None:
        """Finish the agent's mission (never returns)."""
        raise Completion(result)

    def co_locate(self, name: "URN | str", method: str = "run") -> None:
        """Move to wherever the named object currently is (section 4).

        A higher-level abstraction over ``go``: the name service resolves
        the current location of an agent or resource; if it is this very
        server, the call returns and execution simply continues here.
        """
        where = self.host.locate(name)
        if where is None:
            raise MigrationError(f"cannot locate {name}")
        if where != self.host.server_name():
            raise Departure(where, method)

    # -- state capture -------------------------------------------------------------

    def capture_state(self) -> dict[str, Any]:
        """The serializable state that travels with the agent."""
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith("_") and key not in RESERVED_AGENT_ATTRS
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        for key, value in state.items():
            if key.startswith("_") or key in RESERVED_AGENT_ATTRS:
                raise AgentStateError(f"illegal state key {key!r}")
            setattr(self, key, value)


# ---------------------------------------------------------------------------
# The trusted-class registry (the "local classpath")
# ---------------------------------------------------------------------------

_TRUSTED_CLASSES: dict[str, type] = {}


def register_trusted_agent_class(cls: type, name: str | None = None) -> type:
    """Register an agent class available on every server's "classpath".

    Usable as a decorator.  Trusted images name their class instead of
    carrying source.
    """
    if not issubclass(cls, Agent):
        raise AgentStateError(f"{cls!r} is not an Agent subclass")
    key = name or cls.__name__
    existing = _TRUSTED_CLASSES.get(key)
    if existing is not None and existing is not cls:
        raise AgentStateError(f"trusted agent class name {key!r} already taken")
    _TRUSTED_CLASSES[key] = cls
    return cls


def trusted_agent_class(name: str) -> type:
    try:
        return _TRUSTED_CLASSES[name]
    except KeyError:
        raise AgentStateError(f"no trusted agent class {name!r}") from None

"""The agent programming model (section 4).

Agents are *weakly mobile* active objects, as in Ajanta (whose Java base
could not capture live stacks either): calling
:meth:`~repro.agents.agent.Agent.go` ends execution at the current server
and names the method to invoke on arrival at the destination.  An agent
is shipped as an :class:`~repro.agents.transfer.AgentImage` — code
(source, for untrusted agents), serializable state, credentials, entry
method and trace — over an authenticated secure channel.

- :mod:`repro.agents.agent` — the ``Agent`` base class and the
  ``Departure`` / ``Completion`` control signals.
- :mod:`repro.agents.itinerary` — itinerary abstractions layered on the
  ``go`` primitive.
- :mod:`repro.agents.environment` — the ``host`` facade an agent sees
  (Fig. 1's agent environment): ``get_resource``, ``register_resource``,
  ``sleep``, ``report_home``, ...
- :mod:`repro.agents.transfer` — the wire format and image capture.
"""

from repro.agents.agent import (
    Agent,
    Completion,
    Departure,
    register_trusted_agent_class,
    trusted_agent_class,
)
from repro.agents.itinerary import Itinerary, Stop
from repro.agents.patterns import ItineraryAgent
from repro.agents.transfer import AgentImage
from repro.agents.environment import AgentEnvironment

__all__ = [
    "Agent",
    "Departure",
    "Completion",
    "register_trusted_agent_class",
    "trusted_agent_class",
    "Itinerary",
    "Stop",
    "ItineraryAgent",
    "AgentImage",
    "AgentEnvironment",
]

"""Agent mailboxes: secure communication between co-located agents.

Section 5.5: "An agent can make itself available to other agents in
similar fashion, by registering itself as a resource."  Section 6: "This
same scheme is also used for controlled binding between agents co-located
at a server, allowing them to securely communicate with each other."

An :class:`AgentMailbox` is a resource owned by one agent.  Other agents
bind to it through the ordinary six-step protocol, so the owner's
*policy* decides who may ``deliver`` — and a sender's identity is taken
from its protection domain (its verified credentials), not from anything
the sender writes into the message.
"""

from __future__ import annotations

from typing import Any

from repro.core.access_protocol import AccessProtocol
from repro.core.policy import SecurityPolicy
from repro.core.resource import ResourceImpl, export
from repro.naming.urn import URN
from repro.sandbox.domain import current_domain
from repro.sim.kernel import Kernel
from repro.sim.sync import BlockingQueue

__all__ = ["AgentMailbox", "mailbox_name_of"]


def mailbox_name_of(agent: URN) -> URN:
    """The well-known resource name of an agent's mailbox."""
    return URN(kind="resource", authority=agent.authority,
               local=f"{agent.local}/mailbox")


class AgentMailbox(ResourceImpl, AccessProtocol):
    """One agent's inbox, exported under its well-known name."""

    def __init__(
        self,
        owner_agent: URN,
        policy: SecurityPolicy,
        kernel: Kernel,
    ) -> None:
        ResourceImpl.__init__(self, mailbox_name_of(owner_agent), owner_agent)
        self.init_access_protocol(policy)
        self._queue = BlockingQueue(kernel)  # unbounded inbox

    # -- the exported (sender-facing) interface ---------------------------------

    @export
    def deliver(self, message: Any) -> bool:
        """Leave a message; the sender identity is attached server-side."""
        domain = current_domain()
        if domain is not None and domain.credentials is not None:
            sender = str(domain.credentials.agent)
        elif domain is not None:
            sender = domain.domain_id
        else:
            sender = "<unknown>"
        return self._queue.try_put((sender, message))

    @export
    def pending(self) -> int:
        """Messages waiting in the inbox."""
        return len(self._queue)

    # -- the owner-side interface (reached via the agent environment, not
    #    via proxies; other agents never hold a direct reference) -------------------

    def receive(self) -> tuple[str, Any]:
        """Blocking read; returns ``(sender_agent_name, message)``."""
        return self._queue.get()

    def try_receive(self) -> tuple[bool, Any]:
        return self._queue.try_get()

"""Tamper-evident agent integrity: hash-chained per-hop state appraisal.

The paper's threat model protects *hosts* from agents; this module adds
the converse guarantee from the related work (Zwierko & Kotulski's
integrity-protection concept): agents protected from **malicious hosts**.
The secure channel already rules out wire tampering, so the adversary
here is a hosting server itself — one that rewrites the agent's
accumulated state before forwarding it, edits the travel history, or
replays yesterday's image.

The mechanism is an appraisal chain carried in the agent image's
attributes: at every ``depart`` the sending host seals an
:class:`AppraisalLink` covering

* a digest of the captured state (and code identity) it is forwarding,
* the hop index and the origin/destination server URNs,
* the kernel timestamp,
* the **previous link's tag** — making the record a hash chain anchored
  in a genesis tag derived from the agent's identity and home site,

and signs the link's tag with its host key, vouched for by its
certificate (which travels in the link, so any server in the federation
can verify against its trust anchor).  A host can refuse to append a
link, but it cannot rewrite what earlier hosts sealed, insert or delete
hops, or transplant a chain onto a different agent — every such edit
breaks a tag, a signature, or the trace correspondence, and the next
honest server's :class:`IntegrityAuthority` rejects the arrival with a
typed :class:`~repro.errors.AgentIntegrityError` and quarantines the
offending upstream host (by name *and* by sealing-key fingerprint, so
re-registering under a fresh name does not lift the ban).

Cryptographic itineraries (:class:`~repro.agents.itinerary
.ItineraryCommitment`) complement the chain: the home server seals the
planned tour under a private MAC key at launch and re-appraises the
whole journey when the agent returns — a completed tour is verifiable
end-to-end against the agent's home trust anchor.
"""

from __future__ import annotations

import collections
import dataclasses
import functools
import random
from dataclasses import dataclass
from repro.agents.itinerary import Itinerary, ItineraryCommitment
from repro.agents.transfer import AgentImage
from repro.crypto.cert import Certificate
from repro.crypto.keys import KeyPair
from repro.crypto.mac import HmacKey
from repro.crypto.trust import TrustAnchor
from repro.errors import (
    AgentIntegrityError,
    CredentialError,
    CredentialExpiredError,
    SerializationError,
    SignatureError,
)
from repro.sim.monitor import Counter
from repro.util.clock import Clock
from repro.util.serialization import canonical_digest, register_serializable

__all__ = [
    "APPRAISAL_ATTRIBUTE",
    "COMMITMENT_ATTRIBUTE",
    "AppraisalLink",
    "HostQuarantine",
    "IntegrityAuthority",
    "genesis_tag",
    "state_digest",
]

# Attribute keys under which the integrity records travel.
APPRAISAL_ATTRIBUTE = "appraisal"
COMMITMENT_ATTRIBUTE = "itinerary_commitment"

_MAX_URN = 512  # bound on wire-decoded link fields
_MAX_TAG = 64


def state_digest(image: AgentImage) -> bytes:
    """The digest of everything a relay host could silently rewrite.

    Covers identity, credentials, code identity, captured state, entry
    method and the home site.  Credentials matter: each delegation link
    is self-certifying, but *stripping* a restriction link wholesale
    yields a chain that still verifies — with more authority than the
    sender forwarded (delegation abuse); sealing the credentials at
    departure makes that a state-tamper.  The trace is covered
    separately (link origins must match it, entry by entry) and the
    attributes are not — they carry the chain itself plus per-transfer
    bookkeeping (``transfer_id``, ``trace_ctx``) that legitimately
    changes between retries.
    """
    return canonical_digest(
        {
            "name": str(image.name),
            "credentials": _credentials_digest(image.credentials),
            "class_name": image.class_name,
            "source": image.source,
            "entry_method": image.entry_method,
            "home_site": image.home_site,
            "state": image.state,
        }
    )


@functools.lru_cache(maxsize=1024)
def _credentials_digest(credentials: object) -> bytes:
    """Digest of a (frozen, value-hashable) credentials object.

    Credentials dominate the encoding cost of :func:`state_digest` (they
    carry certificates with full public keys) and are immutable between
    the hops that re-digest them, so the sub-digest is memoized by value.
    """
    return canonical_digest(credentials)


def genesis_tag(agent: str, home_site: str) -> bytes:
    """The chain anchor: binds link 0 to one agent's identity and home.

    Without it, a valid chain could be transplanted wholesale onto a
    different agent's image (the links themselves never name the agent).
    """
    return canonical_digest({"genesis": agent, "home": home_site})


@dataclass(frozen=True, slots=True)
class AppraisalLink:
    """One sealed hop: what ``origin`` vouched it sent to ``destination``."""

    hop: int
    origin: str
    destination: str
    state_digest: bytes
    timestamp: float
    prev_tag: bytes
    certificate: Certificate
    signature: bytes

    def body(self) -> dict:
        """The fields the tag (and therefore the signature) covers."""
        return {
            "hop": self.hop,
            "origin": self.origin,
            "destination": self.destination,
            "state_digest": self.state_digest,
            "timestamp": self.timestamp,
            "prev_tag": self.prev_tag,
        }

    def tag(self) -> bytes:
        """The link's chain tag: a digest of the sealed body."""
        return _link_tag(self)

    def to_state(self) -> dict:
        state = self.body()
        state["certificate"] = self.certificate
        state["signature"] = self.signature
        return state

    @classmethod
    def from_state(cls, state: dict) -> "AppraisalLink":
        hop = state["hop"]
        origin = state["origin"]
        destination = state["destination"]
        digest = state["state_digest"]
        timestamp = state["timestamp"]
        prev_tag = state["prev_tag"]
        certificate = state["certificate"]
        signature = state["signature"]
        if (
            not isinstance(hop, int)
            or isinstance(hop, bool)
            or not (0 <= hop < 2**20)
            or not isinstance(origin, str)
            or not (0 < len(origin) <= _MAX_URN)
            or not isinstance(destination, str)
            or not (0 < len(destination) <= _MAX_URN)
            or not isinstance(digest, bytes)
            or not (0 < len(digest) <= _MAX_TAG)
            or not isinstance(timestamp, float)
            or not isinstance(prev_tag, bytes)
            or not (0 < len(prev_tag) <= _MAX_TAG)
            or not isinstance(certificate, Certificate)
            or not isinstance(signature, bytes)
            or not (0 < len(signature) <= 4096)
        ):
            raise SerializationError("malformed appraisal link")
        return cls(
            hop=hop,
            origin=origin,
            destination=destination,
            state_digest=digest,
            timestamp=timestamp,
            prev_tag=prev_tag,
            certificate=certificate,
            signature=signature,
        )


register_serializable(AppraisalLink, intern=True)


@functools.lru_cache(maxsize=4096)
def _link_tag(link: AppraisalLink) -> bytes:
    """Memoized chain tag.

    A link's tag is recomputed many times over its life — once per chain
    walk at every downstream hop, once under every signature check, once
    when the next link extends it — and the link is a frozen value type,
    so the digest is cached by value.
    """
    return canonical_digest(link.body())


@functools.lru_cache(maxsize=4096)
def _link_signature_ok(link: AppraisalLink) -> bool:
    """Memoized signature verdict for one (immutable) link.

    Signature math is time-independent: the same link value verifies the
    same way forever, and every server along a tour re-checks every link
    it carries.  Both verdicts are cached — a forged link stays forged.
    """
    try:
        link.certificate.public_key.verify(link.tag(), link.signature)
    except SignatureError:
        return False
    return True


class HostQuarantine:
    """Hosts this server refuses transfers from, with expiry.

    Entries are keyed two ways: by the peer's server name *and* by the
    fingerprint of the key that sealed the offending appraisal link.
    The second key is what defeats quarantine-evasion by identity
    rotation — a banned host re-registering under a fresh name still
    presents (and must present, for its links to verify) the same
    sealing key.
    """

    def __init__(self, clock: Clock, *, duration: float = 3600.0) -> None:
        self.clock = clock
        self.duration = duration
        self._names: dict[str, float] = {}
        self._fingerprints: dict[str, float] = {}
        self.quarantined_total = 0

    def add(self, name: str, fingerprint: str | None = None) -> None:
        until = self.clock.now() + self.duration
        self._names[name] = until
        if fingerprint is not None:
            self._fingerprints[fingerprint] = until
        self.quarantined_total += 1

    def _live(self, table: dict[str, float], key: str) -> bool:
        until = table.get(key)
        if until is None:
            return False
        if until <= self.clock.now():
            del table[key]
            return False
        return True

    def blocked_name(self, name: str) -> bool:
        return self._live(self._names, name)

    def blocked_fingerprint(self, fingerprint: str) -> bool:
        return self._live(self._fingerprints, fingerprint)

    def active(self) -> tuple[list[str], list[str]]:
        """Currently quarantined (names, fingerprints) — for reports."""
        now = self.clock.now()
        return (
            sorted(n for n, t in self._names.items() if t > now),
            sorted(f for f, t in self._fingerprints.items() if t > now),
        )


class IntegrityAuthority:
    """One server's view of the agent-integrity protocol.

    Owns the host's sealing identity (its key pair + certificate), the
    home-side itinerary MAC key, the replay record of chain tips this
    server already admitted, and the host quarantine.
    """

    def __init__(
        self,
        *,
        name: str,
        keys: KeyPair,
        certificate: Certificate,
        trust_anchor: TrustAnchor,
        clock: Clock,
        rng: random.Random,
        quarantine_duration: float = 3600.0,
        replay_capacity: int = 4096,
        commitment_capacity: int = 4096,
    ) -> None:
        self.name = name
        self.keys = keys
        self.certificate = certificate
        self.trust_anchor = trust_anchor
        self.clock = clock
        self.quarantine = HostQuarantine(clock, duration=quarantine_duration)
        self.stats = Counter()
        # Home-side itinerary commitments are sealed under a key that
        # never leaves this server; remembering which agents were
        # committed is what catches a host *stripping* the record.
        self._itinerary_key = HmacKey(rng.getrandbits(256).to_bytes(32, "big"))
        self._committed: collections.OrderedDict[str, bytes] = (
            collections.OrderedDict()
        )
        self._commitment_capacity = commitment_capacity
        # Chain tips already admitted here: a bounded LRU standing in for
        # a stable-storage record.  A structurally perfect image offered
        # twice (under a fresh transfer id, so dedup cannot see it) is a
        # replayed agent.
        self._seen_tips: collections.OrderedDict[bytes, float] = (
            collections.OrderedDict()
        )
        self._replay_capacity = replay_capacity
        # Signature-checked certificates (a federation has few sealing
        # hosts, so the same certificates recur in every chain).  The
        # validity window and the trust anchor's version are re-checked
        # on every hit — only the signature math is cached.
        self._validated_certs: set[Certificate] = set()
        self._validated_under = getattr(trust_anchor, "trust_version", 0)

    def _validate_certificate(self, certificate: Certificate) -> None:
        """``trust_anchor.validate`` with the RSA work memoized.

        Raises :class:`~repro.errors.CredentialError` exactly as the
        anchor would; a cache hit still re-checks the validity window
        (time moves) and is discarded wholesale when the anchor's trust
        version changes (anchors can be added or removed).
        """
        version = getattr(self.trust_anchor, "trust_version", 0)
        if version != self._validated_under:
            self._validated_certs.clear()
            self._validated_under = version
        if certificate in self._validated_certs:
            now = self.clock.now()
            if not (certificate.not_before <= now <= certificate.not_after):
                raise CredentialExpiredError(
                    f"certificate for {certificate.subject!r} not valid at "
                    f"t={now} (window [{certificate.not_before}, "
                    f"{certificate.not_after}])"
                )
            return
        self.trust_anchor.validate(certificate)
        if len(self._validated_certs) >= 256:
            self._validated_certs.clear()
        self._validated_certs.add(certificate)

    # -- sealing (sender side) ---------------------------------------------

    def seal_departure(self, image: AgentImage, destination: str) -> AgentImage:
        """Append this host's link for the hop ``self.name → destination``.

        Called with the fully captured outgoing image (state, trace and
        per-transfer attributes already stamped); the appended link is
        the chain tip the receiver verifies against the wire image.
        """
        chain = image.attributes.get(APPRAISAL_ATTRIBUTE) or ()
        prev = (
            chain[-1].tag()
            if chain
            else genesis_tag(str(image.name), image.home_site)
        )
        link = self._seal(
            hop=len(chain),
            destination=destination,
            digest=state_digest(image),
            prev_tag=prev,
        )
        self.stats.add("links_sealed")
        return image.with_attributes(**{APPRAISAL_ATTRIBUTE: chain + (link,)})

    def reseal_tip(self, image: AgentImage, destination: str) -> AgentImage:
        """Redirect an already-sealed departure to a new ``destination``.

        Crash recovery re-offers the journaled image verbatim; when the
        original destination stays unreachable the agent goes home
        instead — a *different* hop, so the tip link this host sealed is
        replaced (same hop index, fresh timestamp, new destination).
        Only this host's own tip may be rewritten.
        """
        chain = image.attributes.get(APPRAISAL_ATTRIBUTE) or ()
        if not chain or chain[-1].origin != self.name:
            # Nothing of ours to rewrite (chain-less image, or a tip some
            # other host sealed): leave the image alone — the receiver's
            # verdict is its own business.
            return image
        tip = chain[-1]
        link = self._seal(
            hop=tip.hop,
            destination=destination,
            digest=tip.state_digest,
            prev_tag=tip.prev_tag,
        )
        self.stats.add("links_resealed")
        return image.with_attributes(
            **{APPRAISAL_ATTRIBUTE: chain[:-1] + (link,)}
        )

    def _seal(
        self, *, hop: int, destination: str, digest: bytes, prev_tag: bytes
    ) -> AppraisalLink:
        unsigned = AppraisalLink(
            hop=hop,
            origin=self.name,
            destination=destination,
            state_digest=digest,
            timestamp=self.clock.now(),
            prev_tag=prev_tag,
            certificate=self.certificate,
            signature=b"",
        )
        return dataclasses.replace(
            unsigned, signature=self.keys.private.sign(unsigned.tag())
        )

    # -- verification (receiver side) --------------------------------------

    def verify_arrival(self, image: AgentImage, peer: str) -> bytes:
        """Appraise an image arriving from authenticated ``peer``.

        Returns the verified chain-tip tag (the caller records it via
        :meth:`remember` once the agent is actually admitted, so a
        refused-for-other-reasons image never poisons the replay record).
        Raises :class:`AgentIntegrityError` with a ``reason`` naming the
        first failed check.
        """
        agent = str(image.name)

        def reject(reason: str, detail: str, **extra: object) -> AgentIntegrityError:
            self.stats.add("appraisals_failed")
            self.stats.add(f"appraisal_reject_{reason.replace('-', '_')}")
            return AgentIntegrityError(
                f"agent {agent} from {peer}: {detail}",
                reason=reason, peer=peer, agent=agent, **extra,
            )

        chain = image.attributes.get(APPRAISAL_ATTRIBUTE)
        if not isinstance(chain, tuple) or not chain or not all(
            isinstance(link, AppraisalLink) for link in chain
        ):
            raise reject("missing-chain", "no appraisal chain on the image")
        if len(chain) != len(image.trace):
            raise reject(
                "trace-mismatch",
                f"{len(chain)} appraisal link(s) for {len(image.trace)} hop(s)",
            )
        tip = chain[-1]
        fingerprint = tip.certificate.public_key.fingerprint()
        # Quarantine-evasion check: the sealing key is banned even if the
        # peer re-registered under a new name.
        if self.quarantine.blocked_fingerprint(fingerprint):
            self.stats.add("quarantine_evasions_blocked")
            raise reject(
                "quarantine-evasion",
                f"sealing key {fingerprint} is quarantined",
                fingerprint=fingerprint,
            )
        prev = genesis_tag(agent, image.home_site)
        last_ts = float("-inf")
        for i, link in enumerate(chain):
            if link.hop != i:
                raise reject(
                    "hop-mismatch",
                    f"link {i} claims hop index {link.hop}",
                    fingerprint=fingerprint,
                )
            if link.origin != image.trace[i]:
                raise reject(
                    "trace-mismatch",
                    f"link {i} sealed by {link.origin} but trace says "
                    f"{image.trace[i]}",
                    fingerprint=fingerprint,
                )
            if link.prev_tag != prev:
                raise reject(
                    "chain-broken",
                    f"link {i} does not extend its predecessor's tag",
                    fingerprint=fingerprint,
                )
            if link.timestamp < last_ts:
                raise reject(
                    "chain-broken",
                    f"link {i} timestamp runs backwards",
                    fingerprint=fingerprint,
                )
            last_ts = link.timestamp
            prev = link.tag()
        # Hop-to-hop linkage: each sealed destination must be the next
        # sealer (the last one is this server, checked below).  A pair of
        # colluding hosts that diverts an agent off its sealed path is
        # caught at the first honest server downstream.
        for i in range(len(chain) - 1):
            if chain[i].destination != chain[i + 1].origin:
                raise reject(
                    "route-violation",
                    f"link {i} was sealed for {chain[i].destination} but "
                    f"link {i + 1} was sealed by {chain[i + 1].origin}",
                    fingerprint=fingerprint,
                )
        if tip.destination != self.name:
            raise reject(
                "misdirected",
                f"tip link was sealed for {tip.destination}, not this server",
                fingerprint=fingerprint,
            )
        if tip.origin != peer:
            raise reject(
                "origin-spoof",
                f"tip link sealed by {tip.origin} but delivered by {peer}",
                fingerprint=fingerprint,
            )
        if tip.state_digest != state_digest(image):
            raise reject(
                "state-tampered",
                "arriving state does not match the sealed digest",
                fingerprint=fingerprint,
            )
        for i, link in enumerate(chain):
            if link.certificate.subject != link.origin:
                raise reject(
                    "impostor-cert",
                    f"link {i} certificate names {link.certificate.subject}, "
                    f"not {link.origin}",
                    fingerprint=fingerprint,
                )
            try:
                self._validate_certificate(link.certificate)
            except CredentialError as exc:
                raise reject(
                    "untrusted-cert",
                    f"link {i} certificate failed validation: {exc}",
                    fingerprint=fingerprint,
                ) from exc
            if not _link_signature_ok(link):
                raise reject(
                    "bad-signature",
                    f"link {i} signature does not verify",
                    fingerprint=fingerprint,
                )
        tip_tag = prev  # loop left ``prev`` at the tip's tag
        if tip_tag in self._seen_tips:
            raise reject(
                "replayed",
                "this sealed image was already admitted here",
                fingerprint=fingerprint,
            )
        self.stats.add("appraisals_verified")
        return tip_tag

    def remember(self, tip_tag: bytes) -> None:
        """Record an admitted chain tip for replay detection."""
        self._seen_tips[tip_tag] = self.clock.now()
        self._seen_tips.move_to_end(tip_tag)
        while len(self._seen_tips) > self._replay_capacity:
            self._seen_tips.popitem(last=False)

    # -- itinerary commitments (home side) ---------------------------------

    def commit_itinerary(self, image: AgentImage) -> AgentImage:
        """Seal the launched agent's planned tour under the home MAC key.

        No-op unless the agent carries an :class:`Itinerary` in its state
        and no commitment yet.  The commitment travels with the agent
        (hosts can read the plan — it was theirs to see anyway) but only
        this server can mint or verify one.
        """
        itinerary = image.state.get("itinerary")
        if not isinstance(itinerary, Itinerary):
            return image
        if COMMITMENT_ATTRIBUTE in image.attributes:
            return image
        commitment = ItineraryCommitment.issue(
            self._itinerary_key,
            agent=str(image.name),
            home=self.name,
            stops=tuple((s.server, s.method) for s in itinerary.stops),
            issued_at=self.clock.now(),
        )
        self._committed[str(image.name)] = commitment.mac
        self._committed.move_to_end(str(image.name))
        while len(self._committed) > self._commitment_capacity:
            self._committed.popitem(last=False)
        self.stats.add("itineraries_committed")
        return image.with_attributes(**{COMMITMENT_ATTRIBUTE: commitment})

    def verify_return(self, image: AgentImage, peer: str) -> None:
        """Home-side re-appraisal: the completed tour against the plan.

        Called when an agent arrives back at its home site.  Verifies the
        commitment MAC (only this server's key can have minted it), that
        it names this agent, and that every server the appraisal chain
        shows the agent visiting was part of the committed plan (the home
        site itself is always legitimate — failure handling diverts
        agents home).  Also catches a host *stripping* the commitment:
        agents this server committed at launch must still carry it.
        """
        agent = str(image.name)
        commitment = image.attributes.get(COMMITMENT_ATTRIBUTE)
        expected_mac = self._committed.get(agent)
        if commitment is None:
            if expected_mac is not None:
                self.stats.add("appraisals_failed")
                self.stats.add("appraisal_reject_itinerary_stripped")
                raise AgentIntegrityError(
                    f"agent {agent} from {peer}: itinerary commitment "
                    "stripped in transit",
                    reason="itinerary-stripped", peer=peer, agent=agent,
                )
            return
        if not isinstance(commitment, ItineraryCommitment):
            raise AgentIntegrityError(
                f"agent {agent} from {peer}: malformed itinerary commitment",
                reason="itinerary-forged", peer=peer, agent=agent,
            )

        def reject(reason: str, detail: str) -> AgentIntegrityError:
            self.stats.add("appraisals_failed")
            self.stats.add(f"appraisal_reject_{reason.replace('-', '_')}")
            return AgentIntegrityError(
                f"agent {agent} from {peer}: {detail}",
                reason=reason, peer=peer, agent=agent,
            )

        if commitment.home != self.name or not commitment.verify(
            self._itinerary_key
        ):
            raise reject(
                "itinerary-forged",
                "itinerary commitment MAC does not verify under the home key",
            )
        if expected_mac is not None and commitment.mac != expected_mac:
            raise reject(
                "itinerary-forged",
                "itinerary commitment is not the one sealed at launch",
            )
        if commitment.agent != agent:
            raise reject(
                "itinerary-forged",
                f"itinerary commitment names {commitment.agent}",
            )
        planned = {server for server, _ in commitment.stops}
        planned.add(self.name)
        visited = set(image.trace)
        off_plan = sorted(visited - planned)
        if off_plan:
            raise reject(
                "itinerary-violation",
                f"tour visited server(s) outside the committed plan: "
                f"{', '.join(off_plan)}",
            )
        self.stats.add("itineraries_verified")

    def report(self) -> dict:
        """Operator summary (quarantine state + counters)."""
        names, fingerprints = self.quarantine.active()
        return {
            "quarantined_hosts": names,
            "quarantined_fingerprints": fingerprints,
            "appraisals_verified": self.stats["appraisals_verified"],
            "appraisals_failed": self.stats["appraisals_failed"],
            "links_sealed": self.stats["links_sealed"],
        }

"""The agent wire format.

An :class:`AgentImage` is everything that travels when an agent migrates:
identity and credentials, code (source for untrusted agents, a trusted
class name otherwise), captured state, the entry method for the next
stop, the home site, and the trace of servers visited.

The image is serialized with the canonical codec and shipped over a
mutually authenticated secure channel (:mod:`repro.net.secure_channel`),
which provides the transfer protocol's confidentiality and integrity
(section 2).  Validation on arrival — credential verification, code
verification, size limits — is the admission control in
:mod:`repro.server.admission`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.credentials.delegation import DelegatedCredentials
from repro.errors import AgentAttributeError, TransferError
from repro.naming.urn import URN
from repro.util.serialization import encode, register_serializable

if TYPE_CHECKING:  # pragma: no cover
    from repro.agents.agent import Agent

__all__ = ["AgentImage", "capture_image"]

DEFAULT_MAX_IMAGE_BYTES = 1024 * 1024

# Bounds :meth:`AgentImage.from_attributes` enforces on wire-decoded
# attribute payloads (attacker-controlled input, validated before any
# deeper admission work touches it).
MAX_ATTRIBUTE_KEYS = 32
MAX_ATTRIBUTE_KEY_CHARS = 64
MAX_ATTRIBUTE_SCALAR_BYTES = 4096
MAX_APPRAISAL_LINKS = 64


@dataclass(frozen=True, slots=True)
class AgentImage:
    """A migrating agent, at rest."""

    name: URN
    credentials: DelegatedCredentials
    class_name: str
    source: str  # "" for trusted classes
    state: dict[str, Any]
    entry_method: str
    home_site: str
    trace: tuple[str, ...] = ()
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def is_trusted_code(self) -> bool:
        return self.source == ""

    def with_hop(self, server: str) -> "AgentImage":
        return replace(self, trace=self.trace + (server,))

    def with_state(self, state: dict[str, Any], entry_method: str) -> "AgentImage":
        return replace(self, state=state, entry_method=entry_method)

    def with_attributes(self, **attributes: Any) -> "AgentImage":
        """A copy with ``attributes`` merged in (a fresh dict — images
        share attribute dicts after ``replace``, so never mutate)."""
        return replace(self, attributes={**self.attributes, **attributes})

    @property
    def transfer_id(self) -> str | None:
        """The exactly-once handoff id the sender stamped, if any."""
        tid = self.attributes.get("transfer_id") if isinstance(
            self.attributes, dict
        ) else None
        return tid if isinstance(tid, str) else None

    def wire_size(self) -> int:
        """Bytes this image occupies on the wire (for benchmarks)."""
        return len(encode(self))

    @classmethod
    def from_attributes(cls, attributes: Any) -> dict[str, Any]:
        """Validate a wire-decoded attribute mapping against the whitelist.

        Attributes ride outside the signed/sealed parts of the image, so
        a peer can stuff anything here; this is the one place their
        shape is enforced.  Reserved keys (``transfer_id``,
        ``trace_ctx``, ``ns_token``, ``returned_home``, ``appraisal``,
        ``itinerary_commitment``) must have exactly the type the
        protocol stamps; any other key may only carry a bounded scalar.
        Returns the mapping unchanged on success; raises
        :class:`~repro.errors.AgentAttributeError` naming the offending
        key otherwise.  (Duplicate wire keys never reach this point —
        the canonical decoder rejects non-canonical dict encodings.)
        """
        if not isinstance(attributes, dict):
            raise AgentAttributeError("agent image attributes must be a mapping")
        if len(attributes) > MAX_ATTRIBUTE_KEYS:
            raise AgentAttributeError(
                f"{len(attributes)} attribute keys exceed the "
                f"{MAX_ATTRIBUTE_KEYS}-key limit"
            )
        # Local import: integrity builds on the image type, not vice versa.
        from repro.agents.integrity import AppraisalLink
        from repro.agents.itinerary import ItineraryCommitment

        for key, value in attributes.items():
            if not isinstance(key, str) or not (
                0 < len(key) <= MAX_ATTRIBUTE_KEY_CHARS
            ):
                raise AgentAttributeError(
                    f"invalid attribute key {key!r}", key=str(key)[:80]
                )
            if key == "transfer_id":
                ok = isinstance(value, str) and 0 < len(value) <= 128
            elif key == "trace_ctx":
                ok = (
                    isinstance(value, dict)
                    and len(value) <= 8
                    and all(
                        isinstance(k, str)
                        and len(k) <= 64
                        and isinstance(v, str)
                        and len(v) <= 128
                        for k, v in value.items()
                    )
                )
            elif key == "ns_token":
                ok = isinstance(value, str) and 0 < len(value) <= 256
            elif key == "returned_home":
                ok = isinstance(value, bool)
            elif key == "appraisal":
                ok = (
                    isinstance(value, tuple)
                    and 0 < len(value) <= MAX_APPRAISAL_LINKS
                    and all(isinstance(link, AppraisalLink) for link in value)
                )
            elif key == "itinerary_commitment":
                ok = isinstance(value, ItineraryCommitment)
            elif isinstance(value, (str, bytes)):
                ok = len(value) <= MAX_ATTRIBUTE_SCALAR_BYTES
            else:
                ok = value is None or isinstance(value, (bool, int, float))
            if not ok:
                raise AgentAttributeError(
                    f"attribute {key!r} violates the wire whitelist", key=key
                )
        return attributes

    def to_state(self) -> dict:
        return {
            "name": self.name,
            "credentials": self.credentials,
            "class_name": self.class_name,
            "source": self.source,
            "state": self.state,
            "entry_method": self.entry_method,
            "home_site": self.home_site,
            "trace": self.trace,
            "attributes": self.attributes,
        }

    @classmethod
    def from_state(cls, state: dict) -> "AgentImage":
        return cls(
            name=state["name"],
            credentials=state["credentials"],
            class_name=state["class_name"],
            source=state["source"],
            state=state["state"],
            entry_method=state["entry_method"],
            home_site=state["home_site"],
            trace=tuple(state["trace"]),
            attributes=state["attributes"],
        )


register_serializable(AgentImage)


def capture_image(
    agent: "Agent",
    *,
    credentials: DelegatedCredentials,
    entry_method: str,
    home_site: str,
    source: str = "",
    trace: tuple[str, ...] = (),
    attributes: dict[str, Any] | None = None,
) -> AgentImage:
    """Build the wire image of a live agent instance."""
    if not hasattr(type(agent), entry_method):
        raise TransferError(
            f"{type(agent).__name__} has no entry method {entry_method!r}"
        )
    return AgentImage(
        name=credentials.agent,
        credentials=credentials,
        class_name=type(agent).__name__,
        source=source,
        state=agent.capture_state(),
        entry_method=entry_method,
        home_site=home_site,
        trace=trace,
        attributes=dict(attributes or {}),
    )

"""Reusable agent travel patterns over the ``go`` primitive.

Section 4: higher-level abstractions like itineraries are "implemented on
top of the ``go`` primitive".  :class:`ItineraryAgent` packages the loop
every touring agent otherwise hand-rolls — advance the itinerary, migrate,
invoke a per-stop hook, survive unreachable stops — so application agents
only write *what to do at each stop*:

    @register_trusted_agent_class
    class PriceCollector(ItineraryAgent):
        def visit(self, stop):
            shop = self.host.get_resource(...)
            self.prices.append(shop.quote("camera"))

        def finish(self):
            self.host.report_home({"prices": self.prices})
            self.complete()

Unreachable or refusing stops are *skipped* (recorded in ``self.skipped``
with the reason) rather than fatal, via the ``transfer_failed`` hook.
"""

from __future__ import annotations

from repro.agents.agent import Agent
from repro.agents.itinerary import Itinerary, Stop
from repro.errors import AgentStateError

__all__ = ["ItineraryAgent"]


class ItineraryAgent(Agent):
    """Drives ``self.itinerary`` automatically; subclasses hook per stop.

    Hooks:

    * ``visit(stop)`` — called exactly once at each stop the agent
      reaches, with the agent already resident at ``stop.server``.
    * ``finish()`` — called after the last stop (or after the last stop
      was skipped).  The default completes the agent with a summary.

    ``self.skipped`` accumulates ``[destination, reason]`` pairs for
    stops that could not be reached (server down, transfer refused).

    Setting ``home_on_failure = True`` changes the failure policy: the
    first unreachable stop aborts the tour and the agent diverts
    straight home (via :meth:`Itinerary.divert`) to finish there, rather
    than pressing on with a partial route.
    """

    home_on_failure = False

    def __init__(self) -> None:
        self.itinerary: Itinerary | None = None
        self.skipped: list[list[str]] = []

    # -- hooks for subclasses ------------------------------------------------

    def visit(self, stop: Stop) -> None:
        """Per-stop work; default does nothing."""

    def finish(self) -> None:
        """End-of-tour; default completes with a summary."""
        self.complete({"visited": self.visited_count(), "skipped": self.skipped})

    # -- bookkeeping -----------------------------------------------------------

    def visited_count(self) -> int:
        assert self.itinerary is not None
        return self.itinerary.position - len(self.skipped)

    # -- the driver --------------------------------------------------------------

    def run(self) -> None:
        if not isinstance(self.itinerary, Itinerary):
            raise AgentStateError("ItineraryAgent needs self.itinerary set")
        self._travel()

    def _travel(self) -> None:
        itinerary = self.itinerary
        while not itinerary.finished:
            stop = itinerary.current()
            if stop.server != self.host.server_name():
                self.go(stop.server, "run")  # resumes in run() on arrival
            self.visit(stop)
            itinerary.advance()
        self.finish()
        # A finish() override that neither migrates nor completes falls
        # through to an implicit completion (the hosting server treats a
        # normal return as Completion(None)).

    def transfer_failed(self, destination: str, reason: str) -> None:
        """Skip an unreachable stop and keep touring (or abort home)."""
        self.skipped.append([destination, reason])
        assert self.itinerary is not None
        self.itinerary.advance()
        if self.home_on_failure:
            home = self.host.home_site()
            if destination != home and self.host.server_name() != home:
                # Abandon the remaining legs; finish the tour at home.
                while not self.itinerary.finished:
                    self.itinerary.advance()
                self.itinerary.divert(home, "run")
        self._travel()

"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`.  Security
violations — the paper's central concern — derive from
:class:`SecurityException`, mirroring the ``java.lang.SecurityException``
that Ajanta's proxies and security manager throw.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SecurityException",
    "AccessDeniedError",
    "MethodDisabledError",
    "ProxyRevokedError",
    "ProxyExpiredError",
    "CapabilityConfinementError",
    "TokenInvalidError",
    "PrivilegeError",
    "QuotaExceededError",
    "CredentialError",
    "CredentialExpiredError",
    "AuthenticationError",
    "IntegrityError",
    "AgentIntegrityError",
    "ReplayError",
    "CodeVerificationError",
    "NamespaceError",
    "ExecutionBudgetExceeded",
    "SupervisionError",
    "ResourceOverloadedError",
    "ResourceQuarantinedError",
    "ResourceFaultError",
    "InvocationDeadlineError",
    "NamingError",
    "UnknownNameError",
    "DuplicateNameError",
    "SerializationError",
    "NetworkError",
    "UnreachableError",
    "ChannelClosedError",
    "CircuitOpenError",
    "RetryExhaustedError",
    "TransferError",
    "TransferRetryExhaustedError",
    "AgentAttributeError",
    "AgentError",
    "AgentStateError",
    "MigrationError",
    "SimulationError",
    "SchedulingError",
    "CryptoError",
    "SignatureError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Every error accepts keyword *context* — structured facts about the
    failure (``resource=``, ``domain=``, ``method=``, ``deadline=``,
    ``limit=``, ...) kept on :attr:`context`.  Supervisor audit records
    and tests read these fields instead of parsing message strings.
    """

    def __init__(self, *args: object, **context: object) -> None:
        super().__init__(*args)
        self.context: dict[str, object] = context


# ---------------------------------------------------------------------------
# Security violations (Ajanta: SecurityException)
# ---------------------------------------------------------------------------


class SecurityException(ReproError):
    """An operation was denied by a security mechanism.

    Raised by proxies, the security manager, the code verifier, the
    credential layer and the secure transport when a principal attempts
    something its protection domain does not permit.
    """


class AccessDeniedError(SecurityException):
    """The security policy denies this principal access to the resource."""


class MethodDisabledError(AccessDeniedError):
    """A proxy method outside the caller's enabled set was invoked (Fig. 5)."""


class ProxyRevokedError(SecurityException):
    """The proxy (or one of its methods) was revoked by the resource manager."""


class ProxyExpiredError(SecurityException):
    """The proxy's expiration time has passed (section 5.5)."""


class CapabilityConfinementError(SecurityException):
    """A proxy was invoked from a protection domain other than its grantee's.

    Proxies act as identity-based capabilities; propagating one to another
    agent must not propagate the authority (section 5.5).
    """


class TokenInvalidError(SecurityException):
    """A capability token failed authentication (bad MAC, malformed wire).

    Distinct from a merely *stale* token (epoch moved, ttl elapsed) —
    staleness falls back to the full authorization path, but a token
    whose tag does not verify is evidence of tampering and fails closed.
    """


class PrivilegeError(SecurityException):
    """A privileged operation was attempted from an unprivileged domain."""


class QuotaExceededError(SecurityException):
    """A usage limit recorded in the domain database was exhausted."""


class CredentialError(SecurityException):
    """A credential failed validation (bad signature, malformed, untrusted)."""


class CredentialExpiredError(CredentialError):
    """The credential's expiration time has passed (section 5.2)."""


class AuthenticationError(SecurityException):
    """Mutual authentication between agent and server failed."""


class IntegrityError(SecurityException):
    """Message data was modified in transit (active attack detected)."""


class AgentIntegrityError(SecurityException):
    """An arriving agent's appraisal chain failed verification.

    The malicious-host analogue of :class:`IntegrityError`: not a bit
    flipped on the wire (the secure channel already rules that out), but
    a *hosting server* that rewrote the agent's state, forged its travel
    history, replayed an old image, or evaded a quarantine.  ``context``
    carries ``reason`` (the failed check), ``peer`` (the upstream host),
    ``agent`` and, when a chain link was parsed, ``fingerprint`` (the
    sealing key, so quarantine survives identity rotation).
    """


class ReplayError(SecurityException):
    """A previously seen message was replayed on a secure channel."""


class CodeVerificationError(SecurityException):
    """Shipped agent code was rejected by the code verifier.

    Analogue of the Java byte-code verifier refusing unsafe classes.
    """


class NamespaceError(SecurityException):
    """Illegal name-space operation (e.g. installing an impostor class)."""


class ExecutionBudgetExceeded(SecurityException):
    """Untrusted code exhausted its loop-iteration budget.

    The in-code analogue of Telescript permits: bounds CPU-bound spins
    that the virtual-time lifetime limit cannot see.
    """


# ---------------------------------------------------------------------------
# Resource supervision (leases, bulkheads, quarantine, watchdog)
# ---------------------------------------------------------------------------


class SupervisionError(ReproError):
    """Base class for resource-supervision interventions.

    Raised when the supervision layer refuses or aborts an otherwise
    authorized proxy invocation to keep the server healthy — these are
    availability decisions, not security denials, so they deliberately
    do *not* derive from :class:`SecurityException`.
    """


class ResourceOverloadedError(SupervisionError):
    """A bulkhead or admission quota is full: the invocation was shed.

    Over-limit calls fail fast instead of queueing unboundedly; the
    caller may back off and retry.  ``context`` carries ``resource``,
    ``domain`` and ``limit``.
    """


class ResourceQuarantinedError(SupervisionError):
    """The resource is quarantined by the health supervisor.

    Repeated failures or deadline overruns opened the resource's
    breaker; calls fail fast until a recovery probe succeeds.
    """


class ResourceFaultError(SupervisionError):
    """An injected resource fault made this invocation fail.

    The supervision analogue of a link fault: raised by the guard when a
    :meth:`~repro.net.faults.FaultInjector.resource_fault` window is
    active on the invoked method.
    """


class InvocationDeadlineError(SupervisionError):
    """A proxy invocation exceeded the supervisor's per-call deadline.

    Delivered by interrupting the invoking thread at its blocking point;
    a well-behaved agent can catch it and move on, while repeated
    overruns mark the agent as a runaway.
    """


# ---------------------------------------------------------------------------
# Naming
# ---------------------------------------------------------------------------


class NamingError(ReproError):
    """Base class for errors in the global naming subsystem."""


class UnknownNameError(NamingError):
    """Lookup of a name that is not registered."""


class DuplicateNameError(NamingError):
    """Registration under a name that is already bound."""


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


class SerializationError(ReproError):
    """Encoding or decoding of structured values failed."""


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class UnreachableError(NetworkError):
    """No route exists between the two nodes."""


class ChannelClosedError(NetworkError):
    """Operation on a channel that has been closed."""


class CircuitOpenError(NetworkError):
    """A per-destination circuit breaker is open: the destination has
    failed repeatedly and new attempts are refused without touching the
    network until the breaker's reset timeout elapses."""


class RetryExhaustedError(NetworkError):
    """An operation failed on every attempt a retry policy allowed.

    Carries the attempt count and the last underlying error so callers
    can distinguish "gave up" from a single hard failure.
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 last_error: "BaseException | None" = None) -> None:
        super().__init__(message, attempts=attempts)
        self.attempts = attempts
        self.last_error = last_error


class TransferError(NetworkError):
    """The agent transfer protocol failed (refused, lost, or corrupted)."""


class TransferRetryExhaustedError(TransferError, RetryExhaustedError):
    """An agent transfer failed on every allowed attempt.

    The terminal outcome of the exactly-once handoff: the sender keeps
    the agent (``transfer_failed`` hook / return-to-home), never having
    retired its domain without a positive ``accepted`` ack.
    """


class AgentAttributeError(TransferError):
    """An agent image's attribute payload violated the wire whitelist.

    Attributes are attacker-controlled input decoded before admission;
    oversized values, too many keys, or a reserved key of the wrong type
    are refused here, before any deeper validation spends work on them.
    ``context`` carries ``key`` where one attribute is to blame.
    """


# ---------------------------------------------------------------------------
# Agents
# ---------------------------------------------------------------------------


class AgentError(ReproError):
    """Base class for agent lifecycle errors."""


class AgentStateError(AgentError):
    """Operation invalid for the agent's current lifecycle state."""


class MigrationError(AgentError):
    """The ``go`` primitive could not complete."""


# ---------------------------------------------------------------------------
# Simulation
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event kernel errors."""


class SchedulingError(SimulationError):
    """Invalid scheduling request (e.g. event in the past)."""


# ---------------------------------------------------------------------------
# Cryptography
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError, SecurityException):
    """A digital signature failed to verify."""

"""The Remote Evaluation baseline (Stamos & Gifford, cited in section 1).

"The client sends its own procedure code to a remote server and requests
the server to execute it and return the results."  Code travels once per
(client, server) interaction; only the (usually small) result returns.

Shipped code goes through the same safety machinery as agent code: the
AST verifier, then execution in an isolated namespace whose only trusted
bindings are the *exports* the server chose to offer.  REV is thus "an
agent that cannot move on": one hop, no persistent state, no itinerary.
"""

from __future__ import annotations

from typing import Any

from repro.errors import NetworkError, ReproError
from repro.sandbox.namespace import AgentNamespace
from repro.sandbox.verifier import VerifierPolicy
from repro.server.agent_server import AgentServer
from repro.util.ids import IdGenerator
from repro.util.serialization import decode, encode

__all__ = ["RevService", "RevClient"]

_APP_KIND = "rev.eval"


class RevService:
    """Server side: verify, load, execute, reply."""

    def __init__(
        self,
        server: AgentServer,
        exports: dict[str, Any],
        *,
        verifier_policy: VerifierPolicy | None = None,
    ) -> None:
        self._server = server
        self._exports = dict(exports)
        self._policy = verifier_policy or VerifierPolicy()
        self._ns_ids = IdGenerator(f"rev:{server.name}")
        server.secure.bind_app(_APP_KIND, self._on_eval)

    def _on_eval(self, peer: str, body: bytes) -> bytes:
        try:
            request = decode(body)
            namespace = AgentNamespace(
                self._ns_ids.next(), trusted=self._exports, policy=self._policy
            )
            namespace.load(request["source"])
            function = namespace.get(request["func"])
            result = function(*request["args"])
            return encode({"result": result})
        except ReproError as exc:
            return encode({"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - shipped-code bugs stay contained
            return encode({"error": f"evaluation raised: {exc!r}"})


class RevClient:
    """Client side: ship source, get the result back."""

    def __init__(self, server: AgentServer) -> None:
        self._server = server

    def evaluate(
        self,
        destination: str,
        source: str,
        func: str,
        *args: Any,
        timeout: float | None = 120.0,
    ) -> Any:
        channel = self._server.secure.connect(destination)
        raw = channel.call(
            _APP_KIND,
            encode({"source": source, "func": func, "args": list(args)}),
            timeout=timeout,
        )
        reply = decode(raw)
        if "error" in reply:
            raise NetworkError(f"REV at {destination}: {reply['error']}")
        return reply["result"]

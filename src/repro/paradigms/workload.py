"""The distributed-search workload comparing RPC, REV and mobile agents.

Scenario (the paper's intro scenarios, made concrete): ``n`` servers each
hold a catalog of records; a fraction (*selectivity*) are "hot".  The
client wants the minimum price and the count over all hot records on all
servers.

Three strategies on byte-identical data and topology:

* **rpc** — query each server; every matching record (blob included)
  crosses the network to the client, which aggregates locally;
* **rev** — ship an aggregate function to each server; only the small
  partial result returns, but the client still drives one round trip per
  server;
* **agent** — one agent carries the code *and* the running aggregate
  server-to-server, then reports a single result home.

Reported per run: the answer (all three must agree), makespan (virtual
seconds until the client holds the answer), total bytes on the wire, and
bytes crossing the client's own links — the quantity Harrison et al.'s
claim is about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.database import QueryStore
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.errors import ReproError
from repro.naming.urn import URN
from repro.paradigms.rev import RevClient, RevService
from repro.paradigms.rpc import RpcClient, RpcService
from repro.server.agent_server import AgentServer
from repro.server.testbed import Testbed
from repro.sim.threads import SimThread
from repro.util.rng import make_rng

__all__ = ["ParadigmResult", "build_search_world", "run_search", "STRATEGIES"]

STRATEGIES = ("rpc", "rev", "agent")

OWNER = URN.parse("urn:principal:store.com/admin")

REV_SOURCE = """
def search():
    best = None
    count = 0
    for key, value in store_query("hot-*"):
        count = count + 1
        price = value["price"]
        if best is None or price < best:
            best = price
    return {"min_price": best, "count": count}
"""

AGENT_SOURCE = """
class Searcher(Agent):
    def run(self):
        here = self.host.server_name()
        if here in self.stores:
            store = self.host.get_resource(self.stores[here])
            for key, value in store.query("hot-*"):
                self.count = self.count + 1
                price = value["price"]
                if self.best is None or price < self.best:
                    self.best = price
        if self.remaining:
            nxt = self.remaining[0]
            self.remaining = self.remaining[1:]
            self.go(nxt, "run")
        self.host.report_home({"min_price": self.best, "count": self.count})
        self.complete()
"""


@dataclass(frozen=True, slots=True)
class ParadigmResult:
    strategy: str
    answer: dict
    makespan: float
    total_bytes: int
    client_link_bytes: int
    n_servers: int
    selectivity: float
    blob_size: int


@dataclass(slots=True)
class SearchWorld:
    bed: Testbed
    client: AgentServer
    data_servers: list[AgentServer]
    stores: dict[str, str]  # server name -> store URN string
    expected: dict  # ground-truth answer
    selectivity: float = 0.0
    blob_size: int = 0


def build_search_world(
    *,
    n_servers: int = 4,
    records_per_server: int = 100,
    selectivity: float = 0.1,
    blob_size: int = 64,
    seed: int = 7,
    latency: float = 0.005,
    bandwidth: float = 1e6,
) -> SearchWorld:
    """Identical data + topology for every strategy."""
    bed = Testbed(
        n_servers + 1,
        seed=seed,
        topology="full",
        latency=latency,
        bandwidth=bandwidth,
    )
    client, data_servers = bed.servers[0], bed.servers[1:]
    rng = make_rng(seed, "records")
    stores: dict[str, str] = {}
    best: float | None = None
    count = 0
    hot_per_server = max(1, round(records_per_server * selectivity))
    for index, server in enumerate(data_servers):
        records: dict[str, dict] = {}
        for i in range(records_per_server):
            hot = i < hot_per_server
            key = f"{'hot' if hot else 'cold'}-{index}-{i:05d}"
            price = round(rng.uniform(10.0, 100.0), 2)
            records[key] = {"price": price, "blob": "x" * blob_size}
            if hot:
                count += 1
                if best is None or price < best:
                    best = price
        authority = server.name.split(":")[2].split("/")[0]
        name = URN.parse(f"urn:resource:{authority}/catalog")
        store = QueryStore(
            name, OWNER, SecurityPolicy.allow_all(), initial=records
        )
        server.install_resource(store)
        stores[server.name] = str(name)
        RpcService(server).register("query", store.query)
        RevService(server, exports={"store_query": store.query})
    return SearchWorld(
        bed=bed,
        client=client,
        data_servers=data_servers,
        stores=stores,
        expected={"min_price": best, "count": count},
        selectivity=selectivity,
        blob_size=blob_size,
    )


def run_search(strategy: str, world: SearchWorld | None = None, **world_kw) -> ParadigmResult:
    """Execute one strategy; builds a fresh world unless one is supplied."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}")
    if world is None:
        world = build_search_world(**world_kw)
    bed, client = world.bed, world.client
    outcome: dict = {}

    if strategy == "rpc":

        def client_body() -> None:
            rpc = RpcClient(client)
            best, count = None, 0
            for server in world.data_servers:
                rows = rpc.call(server.name, "query", "hot-*")
                for _key, value in rows:
                    count += 1
                    price = value["price"]
                    if best is None or price < best:
                        best = price
            outcome["answer"] = {"min_price": best, "count": count}
            outcome["done_at"] = bed.clock.now()

        SimThread(bed.kernel, client_body, "rpc-client").start()
        bed.run()

    elif strategy == "rev":

        def client_body() -> None:
            rev = RevClient(client)
            best, count = None, 0
            for server in world.data_servers:
                partial = rev.evaluate(server.name, REV_SOURCE, "search")
                count += partial["count"]
                price = partial["min_price"]
                if price is not None and (best is None or price < best):
                    best = price
            outcome["answer"] = {"min_price": best, "count": count}
            outcome["done_at"] = bed.clock.now()

        SimThread(bed.kernel, client_body, "rev-client").start()
        bed.run()

    else:  # agent
        # The agent starts at the client (its home), hops out to every
        # catalog server carrying code + running aggregate, and a single
        # small report crosses back to the client at the end.
        stops = [s.name for s in world.data_servers]
        bed.launch_source(
            AGENT_SOURCE,
            "Searcher",
            Rights.all(),
            at=client,
            state={
                "stores": world.stores,
                "remaining": stops,
                "best": None,
                "count": 0,
            },
            entry_method="run",
        )
        bed.run()
        if not client.reports:
            raise ReproError("agent strategy produced no report")
        report = client.reports[-1]
        outcome["answer"] = report["payload"]
        outcome["done_at"] = report["received_at"]

    answer = outcome["answer"]
    if answer != world.expected:
        raise ReproError(
            f"{strategy} computed {answer}, expected {world.expected}"
        )
    client_bytes = 0
    for server in world.data_servers:
        for a, b in ((client.name, server.name), (server.name, client.name)):
            try:
                client_bytes += bed.network.link(a, b).stats["bytes"]
            except ReproError:
                pass
    return ParadigmResult(
        strategy=strategy,
        answer=answer,
        makespan=outcome["done_at"],
        total_bytes=bed.network.total_bytes_on_wire(),
        client_link_bytes=client_bytes,
        n_servers=len(world.data_servers),
        selectivity=world.selectivity,
        blob_size=world.blob_size,
    )

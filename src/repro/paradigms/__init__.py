"""The three distributed-computing paradigms of the paper's introduction.

Section 1 frames mobile agents against RPC and Remote Evaluation (Stamos
& Gifford): "in RPC, data is transmitted between the client and server in
both directions whereas in REV, code is sent from the client to the
server, and data is returned ... The mobile agent paradigm is an
extension of this concept, in that both code and data are transmitted
from node to node."  Harrison et al.'s cited advantages — less
client↔server communication, more asynchrony — are *measurable* here:

- :mod:`repro.paradigms.rpc` — request/response procedure calls over
  secure channels.
- :mod:`repro.paradigms.rev` — shipping verified function source for
  one-shot remote execution.
- :mod:`repro.paradigms.workload` — the distributed-search scenario that
  runs all three strategies (RPC / REV / mobile agent) on identical data
  and reports bytes-on-wire, client-link bytes and makespan
  (benchmark C1).
"""

from repro.paradigms.rpc import RpcClient, RpcService
from repro.paradigms.rev import RevClient, RevService
from repro.paradigms.workload import (
    ParadigmResult,
    build_search_world,
    run_search,
)

__all__ = [
    "RpcClient",
    "RpcService",
    "RevClient",
    "RevService",
    "ParadigmResult",
    "build_search_world",
    "run_search",
]

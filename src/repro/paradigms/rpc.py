"""The RPC baseline: synchronous request/response over secure channels.

"The RPC model is usually synchronous, i.e., the client suspends itself
after sending a request to the server, waiting for the results of the
call" (section 1).  Arguments and results are full serialized values, so
large result sets pay their full size on every link between client and
server — the cost profile the mobile-agent paradigm attacks.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import NetworkError, ReproError
from repro.server.agent_server import AgentServer
from repro.util.serialization import decode, encode

__all__ = ["RpcService", "RpcClient"]

_APP_KIND = "rpc.call"


class RpcService:
    """Server side: a registry of named procedures."""

    def __init__(self, server: AgentServer) -> None:
        self._server = server
        self._procs: dict[str, Callable[..., Any]] = {}
        server.secure.bind_app(_APP_KIND, self._on_call)

    def register(self, name: str, procedure: Callable[..., Any]) -> None:
        if name in self._procs:
            raise NetworkError(f"procedure {name!r} already registered")
        self._procs[name] = procedure

    def _on_call(self, peer: str, body: bytes) -> bytes:
        try:
            request = decode(body)
            procedure = self._procs.get(request["proc"])
            if procedure is None:
                return encode({"error": f"no procedure {request['proc']!r}"})
            result = procedure(*request["args"])
            return encode({"result": result})
        except ReproError as exc:
            return encode({"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - report, don't kill the server
            return encode({"error": f"procedure raised: {exc!r}"})


class RpcClient:
    """Client side: blocking calls from a simulated thread."""

    def __init__(self, server: AgentServer) -> None:
        self._server = server

    def call(self, destination: str, proc: str, *args: Any,
             timeout: float | None = 120.0) -> Any:
        channel = self._server.secure.connect(destination)
        raw = channel.call(
            _APP_KIND, encode({"proc": proc, "args": list(args)}), timeout=timeout
        )
        reply = decode(raw)
        if "error" in reply:
            raise NetworkError(f"RPC {proc!r} at {destination}: {reply['error']}")
        return reply["result"]

"""Resource supervision: leases, bulkheads, quarantine, runaway kills.

The paper's proxy mechanism assumes resources stay healthy and agents
behave; its expiration/revocation extensions (section 5.5) are the hooks
for the opposite case.  This module is the server-side layer that pulls
those hooks when things go wrong, so one wedged resource method or one
runaway visiting agent degrades a corner of the server instead of
wedging all of it:

* **Leases** — every grant's expiration time becomes a renewable lease.
  Holders renew through the proxy (:meth:`ResourceProxy.renew_lease`);
  a lapsed lease is automatic revocation, and
  :meth:`ResourceSupervisor.sweep_leases` (run on server restart)
  re-validates unexpired leases from the domain database and revokes
  expired ones.
* **Bulkheads + load shedding** — per-resource concurrency caps
  (:class:`Bulkhead`) and per-domain admission/in-flight quotas.  Over
  the limit, invocations fail fast with
  :class:`~repro.errors.ResourceOverloadedError` instead of queueing.
* **Health tracking + quarantine** — :class:`ResourceHealth` scores each
  resource from proxy-invocation outcomes (errors, deadline overruns,
  injected faults) on a :class:`~repro.util.retry.CircuitBreaker`:
  ``healthy → degraded → quarantined``, with a single-probe recovery
  path once the breaker half-opens.
* **Runaway containment** — a watchdog arms a kernel timer per
  supervised invocation.  Deadline overruns interrupt the offending
  thread; enough strikes (or a blown metered budget) kill the agent's
  whole thread group, revoke its proxies through the per-domain
  revocation index, finalize its meters and audit the kill.

Everything keys off the virtual clock and plain counters, so supervised
runs stay deterministic under seeded stress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import (
    InvocationDeadlineError,
    ReproError,
    ResourceFaultError,
    ResourceOverloadedError,
    ResourceQuarantinedError,
)
from repro.obs import runtime as _obs
from repro.sandbox.threadgroup import enter_group
from repro.sim.monitor import Counter
from repro.util.retry import CircuitBreaker

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.proxy import ResourceProxy
    from repro.core.resource import ResourceImpl
    from repro.server.agent_server import AgentServer
    from repro.sim.threads import SimThread

__all__ = [
    "SupervisorConfig",
    "Bulkhead",
    "ResourceFault",
    "ResourceHealth",
    "ResourceGuard",
    "ResourceSupervisor",
]


@dataclass(frozen=True, slots=True)
class SupervisorConfig:
    """The supervision layer's knobs (``None`` disables a mechanism)."""

    #: Default lease on grants whose policy rule gives no lifetime.
    lease_duration: float | None = 600.0
    #: Per-invocation wall (virtual) deadline enforced by the watchdog.
    invoke_deadline: float | None = 30.0
    #: Default per-resource concurrent-invocation cap (bulkhead width).
    resource_concurrency: int | None = 64
    #: Per-domain concurrent supervised invocations, across resources.
    domain_inflight_quota: int | None = 16
    #: Per-domain live grants of one resource (admission quota).
    domain_grant_quota: int | None = None
    #: Consecutive failures before a resource reads as "degraded".
    degraded_after: int = 2
    #: Consecutive failures before quarantine (breaker threshold).
    quarantine_after: int = 5
    #: Quarantine dwell before a single recovery probe is admitted.
    probe_after: float = 30.0
    #: Deadline overruns before an agent is killed as a runaway.
    runaway_strikes: int = 3
    #: Accrued charges that mark a metered agent as a runaway.
    runaway_budget: float | None = None


class Bulkhead:
    """Per-resource concurrency cap: admit or shed, never queue."""

    __slots__ = ("resource", "limit", "in_flight", "peak", "shed")

    def __init__(self, resource: str, limit: int | None) -> None:
        self.resource = resource
        self.limit = limit
        self.in_flight = 0
        self.peak = 0
        self.shed = 0

    def try_acquire(self) -> bool:
        if self.limit is not None and self.in_flight >= self.limit:
            self.shed += 1
            return False
        self.in_flight += 1
        if self.in_flight > self.peak:
            self.peak = self.in_flight
        return True

    def release(self) -> None:
        if self.in_flight > 0:
            self.in_flight -= 1


@dataclass(slots=True)
class ResourceFault:
    """An injected degradation window on one resource (see
    :meth:`~repro.net.faults.FaultInjector.resource_fault`)."""

    mode: str  # "error" | "wedge"
    method: str | None = None  # None = every method
    wedge_for: float = 60.0


class ResourceHealth:
    """One resource's health state machine on a circuit breaker.

    ``healthy`` — breaker closed, few consecutive failures.
    ``degraded`` — breaker still closed but consecutive failures reached
    ``degraded_after`` (an early-warning state: calls still pass).
    ``quarantined`` — breaker open (or half-open): calls fail fast,
    except a single in-flight recovery probe once ``probe_after``
    virtual seconds have passed.  A successful probe closes the breaker.
    """

    __slots__ = ("resource", "breaker", "_degraded_after", "_probing",
                 "faults", "_last_state", "_on_transition")

    def __init__(
        self,
        resource: str,
        clock,
        *,
        degraded_after: int,
        quarantine_after: int,
        probe_after: float,
        on_transition=None,
    ) -> None:
        self.resource = resource
        self.breaker = CircuitBreaker(
            clock,
            failure_threshold=quarantine_after,
            reset_timeout=probe_after,
        )
        self._degraded_after = degraded_after
        self._probing = False
        self.faults: list[ResourceFault] = []
        self._last_state = "healthy"
        self._on_transition = on_transition

    @property
    def state(self) -> str:
        if self.breaker.state in ("open", "half_open"):
            return "quarantined"
        if self.breaker.consecutive_failures >= self._degraded_after:
            return "degraded"
        return "healthy"

    def admit(self) -> tuple[bool, bool]:
        """``(admitted, is_probe)`` for a would-be invocation.

        While quarantined, only one probe may be in flight at a time
        (concurrent callers during the half-open window fail fast rather
        than stampeding a barely recovered resource).
        """
        bstate = self.breaker.state
        if bstate == "closed":
            return True, False
        if bstate == "half_open" and not self._probing:
            self._probing = True
            return True, True
        return False, False

    def record_success(self, *, probe: bool = False) -> None:
        if probe:
            self._probing = False
        self.breaker.record_success()
        self._note_transition()

    def record_failure(self, *, probe: bool = False) -> None:
        if probe:
            self._probing = False
        self.breaker.record_failure()
        self._note_transition()

    def _note_transition(self) -> None:
        state = self.state
        if state != self._last_state:
            old, self._last_state = self._last_state, state
            if self._on_transition is not None:
                self._on_transition(self.resource, old, state)

    # -- injected faults ----------------------------------------------------

    def active_fault(self, method: str) -> ResourceFault | None:
        for fault in self.faults:
            if fault.method is None or fault.method == method:
                return fault
        return None


class _InvocationTicket:
    """Book-keeping for one supervised invocation in flight."""

    __slots__ = ("guard", "domain_id", "method", "thread", "started",
                 "deadline_handle", "epoch", "done", "expired", "probe")

    def __init__(
        self,
        guard: "ResourceGuard",
        domain_id: str,
        method: str,
        thread: "SimThread | None",
        started: float,
        epoch: int,
        probe: bool,
    ) -> None:
        self.guard = guard
        self.domain_id = domain_id
        self.method = method
        self.thread = thread
        self.started = started
        self.deadline_handle = None
        self.epoch = epoch
        self.done = False
        self.expired = False  # the watchdog fired on this invocation
        self.probe = probe


class _DomainWatch:
    """Per-domain runaway accounting (in-flight count + strike record)."""

    __slots__ = ("in_flight", "strikes", "killed")

    def __init__(self) -> None:
        self.in_flight = 0
        self.strikes = 0
        self.killed = False


class ResourceGuard:
    """The per-resource object supervised proxies report through.

    Installed on the resource at registration; proxies issued afterwards
    carry a reference and route invocations through
    :meth:`begin`/:meth:`finish`.  Lives in ``server/`` so ``core`` has
    no import edge back to the supervisor — proxies talk to it
    duck-typed.
    """

    __slots__ = ("supervisor", "resource", "health", "bulkhead")

    def __init__(
        self, supervisor: "ResourceSupervisor", resource: str
    ) -> None:
        self.supervisor = supervisor
        self.resource = resource
        config = supervisor.config
        self.health = ResourceHealth(
            resource,
            supervisor.clock,
            degraded_after=config.degraded_after,
            quarantine_after=config.quarantine_after,
            probe_after=config.probe_after,
            on_transition=supervisor._on_health_transition,
        )
        self.bulkhead = Bulkhead(resource, config.resource_concurrency)

    # -- lease defaults -----------------------------------------------------

    @property
    def lease_duration(self) -> float | None:
        return self.supervisor.config.lease_duration

    # -- admission (grant issue time) ---------------------------------------

    def admit_grant(self, domain_id: str, held: int) -> None:
        """Per-domain admission quota check at proxy-issue time."""
        quota = self.supervisor.config.domain_grant_quota
        if quota is not None and held >= quota:
            self.supervisor.stats.add("grants_shed")
            if _obs.METRICS_ON:
                _obs.METRICS.inc(
                    "supervisor_grants_shed", resource=self.resource
                )
            raise ResourceOverloadedError(
                f"domain {domain_id} already holds {held} grants of"
                f" {self.resource} (quota {quota})",
                resource=self.resource,
                domain=domain_id,
                limit=quota,
            )

    # -- the invocation path ------------------------------------------------

    def begin(self, domain_id: str, method: str) -> _InvocationTicket:
        """Admit one invocation; raises the typed shed/quarantine errors.

        Runs on the invoking agent's thread, after the proxy's security
        pre-check (security still decides first; supervision only sheds
        calls that were authorized).
        """
        supervisor = self.supervisor
        config = supervisor.config
        watch = supervisor.watch(domain_id)
        quota = config.domain_inflight_quota
        if quota is not None and watch.in_flight >= quota:
            supervisor.stats.add("invocations_shed_domain")
            self._note_shed(method, "domain_quota")
            raise ResourceOverloadedError(
                f"domain {domain_id} has {watch.in_flight} invocations in"
                f" flight (quota {quota})",
                resource=self.resource,
                domain=domain_id,
                method=method,
                limit=quota,
            )
        admitted, probe = self.health.admit()
        if not admitted:
            supervisor.stats.add("invocations_shed_quarantine")
            self._note_shed(method, "quarantined")
            raise ResourceQuarantinedError(
                f"{self.resource} is quarantined (state"
                f" {self.health.state}, {self.health.breaker.consecutive_failures}"
                f" consecutive failures)",
                resource=self.resource,
                domain=domain_id,
                method=method,
            )
        if not self.bulkhead.try_acquire():
            if probe:
                self.health._probing = False
            supervisor.stats.add("invocations_shed_overload")
            self._note_shed(method, "bulkhead")
            raise ResourceOverloadedError(
                f"{self.resource} is at its concurrency cap"
                f" ({self.bulkhead.limit})",
                resource=self.resource,
                domain=domain_id,
                method=method,
                limit=self.bulkhead.limit,
            )
        watch.in_flight += 1
        ticket = _InvocationTicket(
            self,
            domain_id,
            method,
            supervisor.kernel.current_thread(),
            supervisor.clock.now(),
            supervisor.epoch,
            probe,
        )
        deadline = config.invoke_deadline
        if deadline is not None and ticket.thread is not None:
            ticket.deadline_handle = supervisor.kernel.schedule(
                deadline, supervisor._on_deadline, ticket
            )
        return ticket

    def fault_gate(self, ticket: _InvocationTicket) -> None:
        """Apply any injected resource fault to this invocation.

        ``error`` mode fails immediately; ``wedge`` mode parks the
        invoking thread for the fault's wedge time first — long enough
        that the watchdog deadline (if armed) fires mid-wedge, which is
        exactly the degraded-resource signal the health tracker scores.
        """
        fault = self.health.active_fault(ticket.method)
        if fault is None:
            return
        if fault.mode == "wedge" and ticket.thread is not None:
            ticket.thread.sleep(fault.wedge_for)
        raise ResourceFaultError(
            f"injected {fault.mode} fault on {self.resource}.{ticket.method}",
            resource=self.resource,
            domain=ticket.domain_id,
            method=ticket.method,
            mode=fault.mode,
        )

    def finish(self, ticket: _InvocationTicket, error: BaseException | None) -> None:
        """Settle one invocation: release slots, score the outcome."""
        if ticket.done:
            return
        ticket.done = True
        if ticket.deadline_handle is not None:
            ticket.deadline_handle.cancel()
        supervisor = self.supervisor
        if ticket.epoch != supervisor.epoch:
            return  # the server crashed mid-flight; slots were reset
        self.bulkhead.release()
        watch = supervisor.watch(ticket.domain_id)
        if watch.in_flight > 0:
            watch.in_flight -= 1
        if ticket.expired:
            return  # the watchdog already scored this one as an overrun
        if error is None:
            self.health.record_success(probe=ticket.probe)
            if ticket.probe:
                supervisor.stats.add("probes_succeeded")
        elif isinstance(error, Exception):
            self.health.record_failure(probe=ticket.probe)
            supervisor.stats.add("invocations_failed")
            if ticket.probe:
                supervisor.stats.add("probes_failed")
        else:
            # BaseException (a kill): the agent died, which says nothing
            # about the resource's health.  Just release the probe slot.
            if ticket.probe:
                self.health._probing = False
        supervisor._check_budget(ticket.domain_id)

    def _note_shed(self, method: str, reason: str) -> None:
        if _obs.METRICS_ON:
            _obs.METRICS.inc(
                "supervisor_invocations_shed",
                resource=self.resource,
                reason=reason,
            )
        if _obs.TRACING:
            _obs.TRACER.add_event(
                "supervisor.shed",
                resource=self.resource,
                method=method,
                reason=reason,
            )


class ResourceSupervisor:
    """One server's supervision brain: guards, watches, sweeps, kills."""

    def __init__(self, server: "AgentServer", config: SupervisorConfig) -> None:
        self.server = server
        self.config = config
        self.kernel = server.kernel
        self.clock = server.clock
        self.stats = Counter()
        self.epoch = 0  # bumped on crash: stale tickets stop mattering
        self._guards: dict[str, ResourceGuard] = {}
        self._watches: dict[str, _DomainWatch] = {}

    # -- guard lifecycle ----------------------------------------------------

    def attach(self, resource: "ResourceImpl") -> ResourceGuard:
        """Create (or return) the guard for a registering resource."""
        name = str(resource.resource_name())
        guard = self._guards.get(name)
        if guard is None:
            guard = self._guards[name] = ResourceGuard(self, name)
        resource.install_supervision(guard)
        return guard

    def detach(self, resource: "ResourceImpl") -> None:
        name = str(resource.resource_name())
        self._guards.pop(name, None)
        resource.install_supervision(None)

    def guard_of(self, resource_name) -> ResourceGuard:
        name = str(resource_name)
        try:
            return self._guards[name]
        except KeyError:
            raise ReproError(
                f"no supervised resource {name!r}", resource=name
            ) from None

    def health_of(self, resource_name) -> ResourceHealth:
        return self.guard_of(resource_name).health

    def watch(self, domain_id: str) -> _DomainWatch:
        watch = self._watches.get(domain_id)
        if watch is None:
            watch = self._watches[domain_id] = _DomainWatch()
        return watch

    def forget_domain(self, domain_id: str) -> None:
        """Drop a retired domain's watch (its slots died with it)."""
        self._watches.pop(domain_id, None)

    # -- injected resource faults (net/faults.py drives these) ---------------

    def inject_fault(
        self,
        resource_name,
        *,
        mode: str = "error",
        method: str | None = None,
        wedge_for: float = 60.0,
    ) -> None:
        if mode not in ("error", "wedge"):
            raise ValueError(f"unknown resource-fault mode {mode!r}")
        guard = self.guard_of(resource_name)
        guard.health.faults.append(
            ResourceFault(mode=mode, method=method, wedge_for=wedge_for)
        )
        self.stats.add("resource_faults_injected")

    def clear_fault(self, resource_name, *, method: str | None = None) -> None:
        guard = self.guard_of(resource_name)
        guard.health.faults = [
            f for f in guard.health.faults if f.method != method
        ]
        self.stats.add("resource_faults_cleared")

    # -- the watchdog --------------------------------------------------------

    def _on_deadline(self, ticket: _InvocationTicket) -> None:
        """Kernel timer: an invocation has overrun its deadline."""
        if ticket.done or ticket.epoch != self.epoch:
            return
        ticket.expired = True
        self.stats.add("invocation_deadline_overruns")
        guard = ticket.guard
        guard.health.record_failure(probe=ticket.probe)
        watch = self.watch(ticket.domain_id)
        watch.strikes += 1
        deadline = self.config.invoke_deadline
        if _obs.TRACING:
            _obs.annotate(
                "supervisor.deadline_overrun",
                f"{guard.resource}.{ticket.method}",
                domain=ticket.domain_id,
                strikes=watch.strikes,
            )
        self.server.audit.record(
            ticket.domain_id,
            "supervisor.overrun",
            f"{guard.resource}.{ticket.method}",
            False,
            f"exceeded {deadline}s deadline (strike {watch.strikes})",
        )
        if (
            not watch.killed
            and watch.strikes >= self.config.runaway_strikes
        ):
            watch.killed = True
            self.kill_runaway(
                ticket.domain_id,
                f"{watch.strikes} deadline overruns"
                f" (limit {self.config.runaway_strikes})",
            )
            return
        if ticket.thread is not None:
            ticket.thread.interrupt(
                InvocationDeadlineError(
                    f"invocation of {guard.resource}.{ticket.method}"
                    f" exceeded the {deadline}s deadline",
                    resource=guard.resource,
                    domain=ticket.domain_id,
                    method=ticket.method,
                    deadline=deadline,
                )
            )

    def _check_budget(self, domain_id: str) -> None:
        """Metered-budget leg of runaway detection (post-invocation)."""
        budget = self.config.runaway_budget
        if budget is None:
            return
        watch = self.watch(domain_id)
        if watch.killed:
            return
        try:
            charges = self.server.domain_db.get(domain_id).charges
        except ReproError:
            return
        if charges > budget:
            watch.killed = True
            # Never kill inline on the offender's own thread (finish runs
            # there): the kill lands at its next blocking point instead.
            self.kernel.schedule(
                0.0, self.kill_runaway, domain_id,
                f"charges {charges:.2f} exceeded budget {budget:.2f}",
            )

    # -- containment ---------------------------------------------------------

    def kill_runaway(self, domain_id: str, reason: str) -> bool:
        """Contain a runaway resident: kill, revoke, finalize, audit."""
        server = self.server
        killed = server.terminate_resident(domain_id)
        revoked = 0
        try:
            record = server.domain_db.get(domain_id)
        except ReproError:
            record = None
        if record is not None:
            # Revocation runs in the server's protection domain — the
            # reference monitor audits the group-level intervention and
            # each resource's per-domain index does the O(domain) sweep.
            with enter_group(server.server_domain.thread_group):
                server.security_manager.check_group_modify(
                    record.domain.thread_group, detail=f"runaway kill: {reason}"
                )
                for resource_name in {b.resource for b in record.bindings}:
                    try:
                        resource = server.registry.lookup(resource_name)
                    except ReproError:
                        continue
                    revoked += resource.revoke_for(domain_id)
            with server.domain_db.privileged():
                if domain_id in server.domain_db:
                    server.domain_db.set_status(domain_id, "terminated")
        self.forget_domain(domain_id)
        self.stats.add("agents_killed_runaway")
        server.stats.add("agents_killed_runaway")
        server.audit.record(
            domain_id, "agent.runaway_kill", "", False,
            f"{reason}; {revoked} grant(s) revoked",
        )
        if _obs.TRACING:
            _obs.annotate(
                "supervisor.runaway_kill", domain_id,
                reason=reason, revoked=revoked, killed_thread=killed,
            )
        if _obs.METRICS_ON:
            _obs.METRICS.inc("supervisor_runaway_kills")
        return killed

    # -- leases ---------------------------------------------------------------

    def sweep_leases(self) -> dict[str, int]:
        """Re-validate every recorded grant against the kernel clock.

        Run on :meth:`AgentServer.restart`: unexpired leases survive the
        crash (their proxies keep working), lapsed ones are revoked —
        which also finalizes their meters.  Returns the sweep tally.
        """
        now = self.clock.now()
        swept = revalidated = 0
        server = self.server
        with enter_group(server.server_domain.thread_group):
            for record in server.domain_db.records():
                for binding in record.bindings:
                    proxy = binding.proxy
                    info = proxy.proxy_info()
                    if info["revoked"]:
                        continue
                    expires_at = info["expires_at"]
                    if expires_at is not None and now > expires_at:
                        proxy.revoke()
                        swept += 1
                        server.audit.record(
                            record.domain_id,
                            "supervisor.lease_sweep",
                            str(binding.resource),
                            False,
                            f"lease lapsed at t={expires_at}",
                        )
                    else:
                        revalidated += 1
        self.stats.add("leases_swept", swept)
        self.stats.add("leases_revalidated", revalidated)
        if _obs.TRACING:
            _obs.annotate(
                "supervisor.lease_sweep", server.name,
                swept=swept, revalidated=revalidated,
            )
        return {"swept": swept, "revalidated": revalidated}

    # -- crash handling -------------------------------------------------------

    def on_crash(self) -> None:
        """Reset in-flight accounting: the threads all just died."""
        self.epoch += 1
        for guard in self._guards.values():
            guard.bulkhead.in_flight = 0
            guard.health._probing = False
        for watch in self._watches.values():
            watch.in_flight = 0

    # -- state transitions (health) ------------------------------------------

    def _on_health_transition(self, resource: str, old: str, new: str) -> None:
        self.stats.add(f"resources_{new}")
        if new == "quarantined":
            self.stats.add("quarantines")
        elif old == "quarantined" and new == "healthy":
            self.stats.add("recoveries")
        self.server.audit.record(
            self.server.name,
            "supervisor.health",
            resource,
            new != "quarantined",
            f"{old} -> {new}",
        )
        if _obs.TRACING:
            _obs.annotate(
                "supervisor.health_transition", resource, old=old, new=new
            )
        if _obs.METRICS_ON:
            _obs.METRICS.inc(
                "supervisor_health_transitions", resource=resource, to=new
            )

    # -- reporting ------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Operator view: per-resource health + shed/kill tallies."""
        return {
            "resources": {
                name: {
                    "state": guard.health.state,
                    "in_flight": guard.bulkhead.in_flight,
                    "peak": guard.bulkhead.peak,
                    "shed": guard.bulkhead.shed,
                }
                for name, guard in sorted(self._guards.items())
            },
            "stats": self.stats.as_dict(),
        }

"""Lease/heartbeat failure detection: the cluster membership view.

The paper's protected-resource model assumes agent servers stay up; the
self-healing control plane starts by noticing when one does not.  Every
:class:`~repro.server.agent_server.AgentServer` runs a
:class:`FailureDetector` that

* sends periodic one-way **heartbeats** to its peers over the existing
  mutually authenticated secure channels (app kind
  ``cluster.heartbeat``), carrying this server's **incarnation number**,
  a composite **load score** (residents + in-flight departures + pending
  relaunch offers — the placement scorer's input) and a *draining* flag;
* maintains a per-peer membership view driven by a kernel daemon sweep:
  ``alive`` → ``suspected`` (no heartbeat for ``suspect_after``) →
  ``confirmed-dead`` (silent for ``confirm_after``), at which point the
  registered ``on_confirmed_dead`` callbacks fire (the recovery
  coordinator re-homes the dead server's checkpointed agents);
* is **flap-safe** via incarnations: a peer confirmed dead at
  incarnation *k* is only revived by a heartbeat carrying an incarnation
  *> k* — :meth:`AgentServer.restart` bumps the local incarnation, so a
  genuinely restarted server announces itself as a new life while a
  delayed pre-crash heartbeat cannot resurrect a corpse.  Two further
  mechanisms let a healed symmetric partition — both sides believing the
  other dead — reconverge without an operator: confirmed-dead peers
  still receive occasional *rejoin probes* (every
  ``dead_probe_every``-th round), and each heartbeat gossips the
  sender's verdict on the *receiver* ("you are dead to me at
  incarnation *k*"), which the receiver refutes by bumping its own
  incarnation past *k*.

Everything is published through the PR 9 telemetry plane: the detector
registers its counters as a ``membership`` source and serves
``membership.alive`` / ``membership.suspected`` / ``membership.dead`` /
``membership.incarnation`` gauges, so a federated scrape shows every
host's view of the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import NetworkError, ReproError
from repro.sim.monitor import Counter
from repro.util.serialization import decode, encode

__all__ = [
    "HEARTBEAT_APP_KIND",
    "ALIVE",
    "SUSPECTED",
    "CONFIRMED_DEAD",
    "MembershipConfig",
    "PeerView",
    "FailureDetector",
]

# The secure-channel application kind heartbeats travel on.
HEARTBEAT_APP_KIND = "cluster.heartbeat"

# Peer lifecycle states (strings so views serialize/log naturally).
ALIVE = "alive"
SUSPECTED = "suspected"
CONFIRMED_DEAD = "confirmed-dead"


@dataclass(frozen=True, slots=True)
class MembershipConfig:
    """Failure-detector knobs, all in virtual seconds.

    ``suspect_after`` and ``confirm_after`` are silence thresholds
    measured from the last heartbeat received (or from :meth:`start`,
    so freshly joined peers get a grace period rather than being born
    suspect).  ``heartbeat_timeout`` bounds the secure-channel handshake
    to an unresponsive peer so one dead host cannot stall a whole
    heartbeat round for the default 30s connect timeout.
    """

    heartbeat_period: float = 2.0
    suspect_after: float = 5.0
    confirm_after: float = 10.0
    sweep_period: float = 1.0
    heartbeat_timeout: float = 2.0
    # Confirmed-dead peers are still probed every Nth round (rejoin
    # probes): after a symmetric partition heals, both sides believe
    # the other dead, and without an occasional corpse-directed
    # heartbeat a restarted peer's higher incarnation could never reach
    # anyone — permanent mutual death.  Every round would work too, but
    # each truly dead peer then costs a connect timeout per round.
    dead_probe_every: int = 5

    def __post_init__(self) -> None:
        if self.heartbeat_period <= 0 or self.sweep_period <= 0:
            raise ReproError("membership periods must be positive")
        if self.dead_probe_every < 1:
            raise ReproError("dead_probe_every must be >= 1")
        if not 0 < self.suspect_after < self.confirm_after:
            raise ReproError(
                "need 0 < suspect_after < confirm_after "
                f"(got {self.suspect_after}, {self.confirm_after})"
            )


@dataclass(slots=True)
class PeerView:
    """One peer, as this detector currently believes it to be."""

    name: str
    state: str = ALIVE
    incarnation: int = 0
    last_seen: float = 0.0
    load: float = 0.0
    draining: bool = False
    # When the peer entered its current state (detection latency math).
    state_since: float = 0.0


class FailureDetector:
    """One server's membership view of its peers.

    Owns two kernel daemon ticks (heartbeat rounds and the sweep) —
    daemons, so an otherwise-finished world still quiesces.  Heartbeat
    *sending* blocks on secure channels and therefore runs in aux
    simulated threads spawned via the server's ``_spawn_aux`` (which
    also means :meth:`AgentServer.crash` kills an in-flight round, as a
    real crash would).
    """

    def __init__(self, server: Any, config: MembershipConfig | None = None) -> None:
        self.server = server
        self.config = config or MembershipConfig()
        self.kernel = server.kernel
        self.clock = server.clock
        self.stats = Counter()
        self.incarnation = 0
        self.draining = False
        self._views: dict[str, PeerView] = {}
        self._callbacks: list[Callable[[str, int], None]] = []
        self._incarnation_callbacks: list[Callable[[str, int], None]] = []
        self._hb_ticker = None
        self._sweep_ticker = None
        self._round_thread = None
        self._round_no = 0
        self._armed = False  # start() called (ticks may defer on no peers)
        # (virtual time, event, peer) transition log for tests/benches.
        self.log: list[tuple[float, str, str]] = []
        server.secure.bind_app(HEARTBEAT_APP_KIND, self._on_heartbeat)
        telemetry = getattr(server, "telemetry", None)
        if telemetry is not None:
            telemetry.register_source("membership", self.stats)
            telemetry.gauge(
                "membership.alive", fn=lambda: float(self._count(ALIVE))
            )
            telemetry.gauge(
                "membership.suspected",
                fn=lambda: float(self._count(SUSPECTED)),
            )
            telemetry.gauge(
                "membership.dead",
                fn=lambda: float(self._count(CONFIRMED_DEAD)),
            )
            telemetry.gauge(
                "membership.incarnation", fn=lambda: float(self.incarnation)
            )

    # -- wiring ----------------------------------------------------------------

    def set_peers(self, peers: "list[str] | tuple[str, ...]") -> None:
        """Declare the peer set to monitor (idempotent, additive)."""
        now = self.clock.now()
        for name in peers:
            if name == self.server.name:
                continue
            self._views.setdefault(
                name, PeerView(name=name, last_seen=now, state_since=now)
            )
        if self._armed and self._views and self._hb_ticker is None:
            self.start()  # a deferred start() was waiting for peers

    def on_confirmed_dead(self, callback: Callable[[str, int], None]) -> None:
        """Register a death callback: ``callback(peer, incarnation)``.

        Fired from kernel context exactly once per (peer, incarnation)
        confirmation — callbacks must not block (spawn a thread).
        """
        self._callbacks.append(callback)

    def on_new_incarnation(self, callback: Callable[[str, int], None]) -> None:
        """Register a rebirth callback: ``callback(peer, incarnation)``.

        Fired from kernel context whenever a heartbeat moves a peer's
        incarnation *up* — a restart that beat the death confirmation
        (the flapping-host case: residents died with the crash, but the
        peer came back before the detector could confirm anything).
        The recovery plane uses this to sweep for orphaned checkpoints
        without waiting for a confirmation that will never come.
        """
        self._incarnation_callbacks.append(callback)

    def start(self) -> None:
        """Begin heartbeat rounds and the state sweep (daemon ticks).

        With an empty peer set (a single-node cluster) there is nothing
        to monitor and nobody to tell: the ticks stay unarmed until
        :meth:`set_peers` first delivers a peer, so a solo server pays
        the detector nothing.
        """
        self._armed = True
        if not self._views:
            return
        if self._hb_ticker is None or self._hb_ticker.cancelled:
            now = self.clock.now()
            for view in self._views.values():
                # Fresh grace window: silence before start() is not
                # evidence (the detector was not listening yet).
                if view.state is not CONFIRMED_DEAD:
                    view.last_seen = max(view.last_seen, now)
            self._hb_ticker = self.kernel.every(
                self.config.heartbeat_period, self._heartbeat_tick, daemon=True
            )
            self._sweep_ticker = self.kernel.every(
                self.config.sweep_period, self._sweep, daemon=True
            )

    def stop(self) -> None:
        """Stop both ticks (server crashed or is shutting down)."""
        self._armed = False
        for ticker in (self._hb_ticker, self._sweep_ticker):
            if ticker is not None:
                ticker.cancel()
        self._hb_ticker = self._sweep_ticker = None

    def bump_incarnation(self) -> int:
        """A new life for this server (called by ``restart()``)."""
        self.incarnation += 1
        return self.incarnation

    # -- views -----------------------------------------------------------------

    def view_of(self, peer: str) -> PeerView | None:
        return self._views.get(peer)

    def state_of(self, peer: str) -> str:
        view = self._views.get(peer)
        return view.state if view is not None else ALIVE

    def is_alive(self, peer: str) -> bool:
        return self.state_of(peer) != CONFIRMED_DEAD

    def load_of(self, peer: str) -> float:
        view = self._views.get(peer)
        return view.load if view is not None else 0.0

    def is_draining(self, peer: str) -> bool:
        view = self._views.get(peer)
        return view.draining if view is not None else False

    def alive_peers(self) -> list[str]:
        return sorted(
            name
            for name, view in self._views.items()
            if view.state != CONFIRMED_DEAD
        )

    def view(self) -> dict[str, dict[str, Any]]:
        """The whole membership table (operator/test view)."""
        return {
            name: {
                "state": v.state,
                "incarnation": v.incarnation,
                "last_seen": v.last_seen,
                "load": v.load,
                "draining": v.draining,
            }
            for name, v in sorted(self._views.items())
        }

    def _count(self, state: str) -> int:
        return sum(1 for v in self._views.values() if v.state == state)

    # -- heartbeat sending -------------------------------------------------------

    def local_load(self) -> float:
        """This server's composite placement load score.

        residents + in-flight journaled departures + pending relaunch
        offers (the recovery coordinator's queue depth).
        """
        server = self.server
        load = float(len(server._threads)) + float(len(server._journal))
        recovery = getattr(server, "recovery", None)
        if recovery is not None:
            load += float(recovery.queue_depth())
        return load

    def _heartbeat_tick(self) -> None:
        # Kernel context: spawn one aux thread per round; skip the round
        # entirely if the previous one is still draining (a dead peer's
        # connect timeout must not stack rounds).
        if self._round_thread is not None and self._round_thread.is_alive:
            self.stats.add("heartbeat_rounds_skipped")
            return
        self._round_no += 1
        probe_dead = self._round_no % self.config.dead_probe_every == 0
        targets = [
            name
            for name, view in self._views.items()
            if view.state != CONFIRMED_DEAD or probe_dead
        ]
        if not targets:
            return
        self._round_thread = self.server._spawn_aux(
            lambda: self._send_round(targets),
            name=f"{self.server.name}/heartbeat",
        )

    def _send_round(self, targets: list[str]) -> None:
        for peer in sorted(targets):
            view = self._views.get(peer)
            # Per-peer verdict gossip: "I currently hold *you* dead at
            # incarnation k".  The receiver refutes by outbidding k (see
            # :meth:`_on_heartbeat`) — that is what lets a healed
            # symmetric partition reconverge without an operator.
            dead_at = (
                view.incarnation
                if view is not None and view.state == CONFIRMED_DEAD
                else None
            )
            body = encode(
                {
                    "incarnation": self.incarnation,
                    "load": self.local_load(),
                    "draining": bool(self.draining),
                    "you_dead_at": dead_at,
                }
            )
            try:
                channel = self.server.secure.connect(
                    peer, timeout=self.config.heartbeat_timeout
                )
                channel.send(HEARTBEAT_APP_KIND, body)
                self.stats.add("heartbeats_sent")
            except (NetworkError, ReproError):
                # Silence is the signal; the peer's sweep does the rest.
                self.stats.add("heartbeats_failed")
                self.server.secure.drop_channel(peer)

    # -- heartbeat receipt (kernel event context — never blocks) -----------------

    def _on_heartbeat(self, peer: str, body: bytes) -> None:
        try:
            beat = decode(body)
            incarnation = int(beat["incarnation"])
            load = float(beat["load"])
            draining = bool(beat["draining"])
            you_dead_at = beat.get("you_dead_at")
        except (ReproError, KeyError, TypeError, ValueError):
            self.stats.add("heartbeats_malformed")
            return
        self.stats.add("heartbeats_received")
        if you_dead_at is not None and self.incarnation <= int(you_dead_at):
            # Refutation: an authenticated live peer holds *this* server
            # confirmed-dead at an incarnation we are still using.  It
            # cannot tell our heartbeats from a zombie's until we outbid
            # the incarnation it buried, so bump past it.  Idempotent:
            # once bumped, later copies of the same verdict are stale.
            self.incarnation = int(you_dead_at) + 1
            self.stats.add("refutations")
        now = self.clock.now()
        view = self._views.get(peer)
        if view is None:
            # An unsolicited but authenticated peer: adopt it.
            view = self._views[peer] = PeerView(
                name=peer, last_seen=now, state_since=now
            )
        if incarnation < view.incarnation:
            # A delayed heartbeat from a previous life: not evidence.
            self.stats.add("heartbeats_stale")
            return
        if view.state == CONFIRMED_DEAD:
            if incarnation <= view.incarnation:
                # Flap safety: only a *new* incarnation revives a corpse.
                self.stats.add("heartbeats_stale")
                return
            self.stats.add("peer_revivals")
            self._transition(view, ALIVE, now)
        elif view.state == SUSPECTED:
            self.stats.add("suspicions_cleared")
            self._transition(view, ALIVE, now)
        reborn = incarnation > view.incarnation
        view.incarnation = incarnation
        view.last_seen = now
        view.load = load
        view.draining = draining
        if reborn:
            self.stats.add("incarnation_advances")
            for callback in list(self._incarnation_callbacks):
                callback(peer, incarnation)

    # -- the sweep ----------------------------------------------------------------

    def _sweep(self) -> None:
        now = self.clock.now()
        self.stats.add("sweeps")
        for view in self._views.values():
            silent = now - view.last_seen
            if view.state == ALIVE and silent >= self.config.suspect_after:
                self.stats.add("suspicions")
                self._transition(view, SUSPECTED, now)
            if view.state == SUSPECTED and silent >= self.config.confirm_after:
                self.stats.add("deaths_confirmed")
                self._transition(view, CONFIRMED_DEAD, now)
                self.server.audit.record(
                    self.server.name, "membership.confirm_dead", view.name,
                    True, f"silent {silent:.1f}s at incarnation {view.incarnation}",
                )
                for callback in list(self._callbacks):
                    callback(view.name, view.incarnation)

    def _transition(self, view: PeerView, state: str, now: float) -> None:
        self.log.append((now, state, view.name))
        view.state = state
        view.state_since = now

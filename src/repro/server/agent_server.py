"""The agent server: Fig. 1, assembled.

One :class:`AgentServer` owns the components the figure shows —

* the **agent environment** handed to each resident
  (:class:`~repro.agents.environment.AgentEnvironment`),
* the **domain database** and **resource registry** with the binding
  service between them,
* the **agent transfer** component (admission control + the transfer
  protocol over mutually authenticated secure channels),
* the **security manager** sealed to the server's protection domain,

and runs each resident agent in its own thread group + namespace
protection domain on the simulation kernel.

Lifecycle of a resident: image arrives (``launch`` locally or the
``atp.transfer`` channel) → admission validation → domain creation
(thread group, namespace for untrusted code, domain-db record) → the
entry method runs in a simulated thread → the run ends in exactly one of
``Departure`` (forward the captured image), ``Completion`` (report and
retire), a security violation (terminated, audited), or an agent bug
(terminated).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any

from repro.agents.agent import Agent, Completion, Departure, trusted_agent_class
from repro.agents.environment import AgentEnvironment
from repro.agents.integrity import APPRAISAL_ATTRIBUTE, IntegrityAuthority
from repro.agents.transfer import AgentImage
from repro.core.binding import BindingService
from repro.core.domain_db import DomainDatabase
from repro.core.registry import ResourceRegistry
from repro.core.resource import ResourceImpl
from repro.core.token import default_epoch_registry
from repro.credentials.rights import Rights
from repro.crypto.cert import Certificate
from repro.crypto.trust import TrustAnchor
from repro.crypto.keys import KeyPair
from repro.errors import (
    AgentAttributeError,
    AgentIntegrityError,
    AgentStateError,
    CircuitOpenError,
    NamingError,
    NetworkError,
    ReproError,
    SecurityException,
    TransferError,
    TransferRetryExhaustedError,
    UnknownNameError,
)
from repro.naming.registry import NameService
from repro.naming.urn import URN
from repro.net.network import Network
from repro.obs import runtime as _obs
from repro.obs.aggregate import TelemetryUnit
from repro.obs.trace import SpanContext
from repro.net.secure_channel import SecureHost
from repro.net.transport import Endpoint
from repro.sandbox.domain import ProtectionDomain
from repro.sandbox.namespace import AgentNamespace
from repro.sandbox.security_manager import SecurityManager
from repro.sandbox.threadgroup import ThreadGroup, enter_group, wrap_in_group
from repro.server.admission import AdmissionPolicy
from repro.server.journal import (
    CheckpointStore,
    DedupTable,
    DepartureJournal,
    DepartureRecord,
)
from repro.server.membership import FailureDetector, MembershipConfig
from repro.server.recovery import RecoveryConfig, RecoveryCoordinator
from repro.server.supervisor import ResourceSupervisor, SupervisorConfig
from repro.sim.kernel import Kernel
from repro.sim.monitor import Counter, TimeWeighted
from repro.sim.threads import SimThread
from repro.util.audit import AuditLog
from repro.util.ids import IdGenerator
from repro.util.retry import CircuitBreaker, RetryPolicy, call_with_retries
from repro.util.serialization import decode, encode

__all__ = ["AgentServer"]


def _revoke_holder_tokens(domain: ProtectionDomain) -> None:
    """Kill the capability tokens of an agent that stopped existing.

    One epoch bump keyed on the agent's stable URN: any token it was
    minted, on this server or carried elsewhere, goes stale and fails
    closed at its next use.
    """
    if domain.credentials is not None:
        default_epoch_registry().bump_holder(str(domain.credentials.agent))


class AgentServer:
    """One hosting site in the mobile-agent system."""

    def __init__(
        self,
        *,
        name: str,
        kernel: Kernel,
        network: Network,
        trust_anchor: TrustAnchor,
        keys: KeyPair,
        certificate: Certificate,
        rng: random.Random,
        name_service: NameService | None = None,
        admission: AdmissionPolicy | None = None,
        transfer_timeout: float = 60.0,
        transfer_retry: RetryPolicy | None = None,
        report_retry: RetryPolicy | None = None,
        breaker_failure_threshold: int = 8,
        breaker_reset_timeout: float = 60.0,
        dedup_capacity: int = 1024,
        forward_restriction: "Rights | None" = None,
        resident_lifetime_limit: float | None = None,
        audit_capacity: int | None = None,
        supervision: SupervisorConfig | None = None,
        appraisal: bool = True,
        quarantine_duration: float = 3600.0,
        membership: MembershipConfig | None = None,
        recovery: RecoveryConfig | None = None,
    ) -> None:
        self.name = name
        self.kernel = kernel
        self.clock = kernel.clock
        self.audit = AuditLog(self.clock, capacity=audit_capacity)
        self.stats = Counter()
        # ``transfers_failed`` used to double-count (bumped alongside
        # ``transfer_breaker_fastfail``); it is now a computed alias over
        # the two distinct causes, so old readers keep working and new
        # readers can tell a breaker fast-fail from exhausted retries.
        self.stats.alias(
            "transfers_failed",
            "transfers_failed_breaker",
            "transfers_failed_exhausted",
        )
        self.stats.alias("transfer_breaker_fastfail", "transfers_failed_breaker")
        self.name_service = name_service
        self.transfer_timeout = transfer_timeout
        # Exactly-once handoff machinery: retry schedule, per-destination
        # circuit breakers, the sender-side departure journal (crash
        # recovery) and the receiver-side dedup table (idempotent ATP).
        self.transfer_retry = transfer_retry or RetryPolicy()
        self.report_retry = report_retry or RetryPolicy(
            attempts=3, base_delay=0.2, max_delay=5.0
        )
        self._breaker_failure_threshold = breaker_failure_threshold
        self._breaker_reset_timeout = breaker_reset_timeout
        self._breakers: dict[str, CircuitBreaker] = {}
        self._journal = DepartureJournal()
        self._transfer_dedup = DedupTable(dedup_capacity)
        self._transfer_ids = IdGenerator(f"{name}/xfer")
        # Seeded jitter stream, forked once so transfer retries do not
        # perturb the secure-channel nonce stream.
        self._retry_rng = random.Random(rng.getrandbits(64))
        # Section 5.2 subcontracting: when set, every agent this server
        # forwards gets a delegation link attenuating it to this grant.
        self.forward_restriction = forward_restriction
        # Section 2's resource-consumption defence: residents still alive
        # after this much virtual time are forcibly terminated.
        self.resident_lifetime_limit = resident_lifetime_limit
        self.reports: list[dict[str, Any]] = []

        # Fig. 1: transfer plumbing (network endpoint + secure channels).
        self.endpoint = Endpoint(network, name)
        self.secure = SecureHost(
            endpoint=self.endpoint,
            name=name,
            keys=keys,
            certificate=certificate,
            trust_anchor=trust_anchor,
            clock=self.clock,
            rng=rng,
        )

        # Fig. 1: protection machinery.
        self.server_domain = ProtectionDomain(
            f"server:{name}", "server", ThreadGroup(f"{name}/server-group")
        )
        self.security_manager = SecurityManager(self.server_domain, self.audit)
        self.security_manager.seal()
        self.domain_db = DomainDatabase(self.clock)
        self.registry = ResourceRegistry(self.security_manager, self.clock)
        self.binding = BindingService(
            self.registry,
            self.domain_db,
            self.clock,
            self.audit,
            server_domain_id=self.server_domain.domain_id,
        )
        self.admission = admission or AdmissionPolicy(trust_anchor, self.clock)

        # Tamper-evident agent integrity (hash-chained state appraisal +
        # itinerary commitments).  On by default; ``appraisal=False`` is
        # the escape hatch for baselines and deliberately non-verifying
        # (colluding) hosts in red-team scenarios.  The forked substream
        # keeps the itinerary MAC key from perturbing channel nonces.
        self.integrity: IntegrityAuthority | None = None
        if appraisal:
            self.integrity = IntegrityAuthority(
                name=name,
                keys=keys,
                certificate=certificate,
                trust_anchor=trust_anchor,
                clock=self.clock,
                rng=random.Random(rng.getrandbits(64)),
                quarantine_duration=quarantine_duration,
            )
            self.admission.integrity = self.integrity
        # Red-team hook (installed by the fault injector's malicious-host
        # behaviors): rewrites outbound images/destinations in _offer_image.
        self.outbound_tamper = None

        # Resource supervision (leases, bulkheads, quarantine, runaway
        # containment) is opt-in: with no config, proxies keep the plain
        # fast path and no supervision state exists at all.
        self.supervisor: ResourceSupervisor | None = None
        if supervision is not None:
            self.supervisor = ResourceSupervisor(self, supervision)
            self.registry.attach_supervisor(self.supervisor)

        self._domain_ids = IdGenerator(f"{name}/dom")
        self._threads: dict[str, SimThread] = {}
        # Live resident bookkeeping for the self-healing plane: the
        # instantiated agent objects (periodic checkpoint state capture)
        # and the images they were admitted from (escrow construction).
        self._instances: dict[str, Agent] = {}
        self._resident_images: dict[str, AgentImage] = {}
        # Auxiliary server threads (heartbeat rounds, checkpoint pushes,
        # crash-recovery re-offers, the drain worker).  Tracked so that
        # crash() kills them like everything else on the host — a ghost
        # recovery thread surviving a second crash would keep retrying
        # with the dead server's identity and hold call timers open.
        self._aux_threads: list[SimThread] = []
        self._draining = False
        # Home-side escrow store for the recovery plane.
        self.checkpoints = CheckpointStore()
        # Occupancy over virtual time (for capacity planning / F1-style
        # utilization reporting).
        self._occupancy = TimeWeighted(start_time=self.clock.now())

        self.secure.bind_app("atp.transfer", self._on_transfer)
        self.secure.bind_app("agent.status", self._on_status)
        self.secure.bind_app("agent.control", self._on_control)
        self.secure.bind_app("agent.report", self._on_report)

        # Cluster telemetry: this host's locally served metrics
        # namespace (the federated twin of the testbed's omniscient
        # registry).  Sources are read lazily at scrape time, so none of
        # this touches the enforcement hot path; the ``telemetry.scrape``
        # op rides the same mutually authenticated channels as transfers.
        self.telemetry = TelemetryUnit(name, self.clock, server=name)
        self.telemetry.register_source("server", self.stats)
        self.telemetry.register_source("endpoint", self.endpoint.stats)
        self.telemetry.register_source("secure", self.secure.stats)
        self.telemetry.register_source("audit", self.audit)
        if self.supervisor is not None:
            self.telemetry.register_source("supervisor", self.supervisor.stats)
        if self.integrity is not None:
            self.telemetry.register_source("integrity", self.integrity.stats)
        self.telemetry.gauge(
            "server.residents", fn=lambda: float(len(self._threads))
        )
        self.telemetry.gauge(
            "server.secure_channels",
            fn=lambda: float(self.secure.open_channels()),
        )
        self.telemetry.bind(self.secure)

        # Self-healing control plane (opt-in per component): failure
        # detection over heartbeats, and checkpoint/re-homing recovery.
        # When both are present, confirmed deaths trigger re-homing.
        self.membership: FailureDetector | None = None
        self.recovery: RecoveryCoordinator | None = None
        if membership is not None:
            self.membership = FailureDetector(self, membership)
        if recovery is not None:
            self.recovery = RecoveryCoordinator(self, recovery)
        if self.membership is not None and self.recovery is not None:
            self.membership.on_confirmed_dead(
                self.recovery.handle_confirmed_dead
            )
            self.membership.on_new_incarnation(
                self.recovery.handle_peer_restarted
            )

    # ------------------------------------------------------------------
    # Auxiliary server threads
    # ------------------------------------------------------------------

    def _spawn_aux(self, body, *, name: str) -> SimThread:
        """Run ``body`` in a tracked server-side simulated thread.

        Everything the server itself does off the kernel event loop —
        heartbeat rounds, checkpoint pushes, crash-recovery re-offers,
        draining — goes through here so :meth:`crash` can kill it all:
        a fail-stop host takes its background work down with it.
        """
        self._aux_threads = [t for t in self._aux_threads if t.is_alive]
        thread = SimThread(self.kernel, body, name=name, on_error="store")
        self._aux_threads.append(thread)
        thread.start()
        return thread

    # ------------------------------------------------------------------
    # Resources (server-side installation)
    # ------------------------------------------------------------------

    def install_resource(self, resource: ResourceImpl) -> None:
        """Register a server-provided resource (Fig. 6, step 1)."""
        with enter_group(self.server_domain.thread_group):
            self.binding.register_resource(resource)

    # ------------------------------------------------------------------
    # Hosting
    # ------------------------------------------------------------------

    def launch(self, image: AgentImage) -> str:
        """Host an agent submitted by a local application.

        Returns the new protection-domain id.  Raises if admission fails.

        With tracing on, this is the root span of the agent's tour
        (``agent.launch``): its context is stamped into the image, rides
        every subsequent hop like ``transfer_id`` does, and makes the
        whole itinerary one trace.
        """
        if self._draining:
            raise TransferError(f"{self.name} is draining")
        if self.integrity is not None:
            # Launch is where the home server seals the planned tour;
            # the commitment is re-appraised when the agent returns.
            image = self.integrity.commit_itinerary(image)
        if not _obs.TRACING:
            self.admission.validate(image)
            return self._start_resident(image)
        with _obs.TRACER.span(
            "agent.launch", agent=str(image.name), server=self.name
        ) as span:
            if isinstance(image.attributes, dict) and (
                SpanContext.from_attributes(image.attributes.get("trace_ctx"))
                is None
            ):
                image = image.with_attributes(
                    trace_ctx=span.context.to_attributes()
                )
            self.admission.validate(image)
            return self._start_resident(image)

    def _start_resident(self, image: AgentImage) -> str:
        domain_id = self._domain_ids.next()
        group = ThreadGroup(f"{self.name}/{domain_id}")
        namespace = None
        if not image.is_trusted_code:
            namespace = AgentNamespace(
                domain_id,
                trusted={"Agent": Agent},
                policy=self.admission.verifier_policy,
            )
        domain = ProtectionDomain(
            domain_id,
            "agent",
            group,
            namespace=namespace,
            credentials=image.credentials,
            # Trust tier from admission (ring 1 unless a RingPolicy is
            # installed) — picks the proxy dispatch path for this stay.
            ring=self.admission.classify_ring(image),
        )
        with self.domain_db.privileged():
            self.domain_db.admit(domain, image.credentials, image.home_site)
        self._update_name_service(image)
        thread = SimThread(
            self.kernel,
            wrap_in_group(group, lambda: self._run_resident(image, domain)),
            name=f"{self.name}/{image.name.local}",
            on_error="store",
        )
        group.adopt(thread)
        self._threads[domain_id] = thread
        self._resident_images[domain_id] = image
        self._occupancy.update(self.clock.now(), len(self._threads))
        thread.start()
        if self.resident_lifetime_limit is not None:
            self.kernel.schedule(
                self.resident_lifetime_limit,
                self._enforce_lifetime, domain_id, thread,
            )
        self.stats.add("agents_hosted")
        if self.recovery is not None:
            # Hop-boundary checkpoint: escrow the freshly admitted image
            # at the agent's home site before it runs a single step.
            self.recovery.on_admission(image)
        return domain_id

    def _enforce_lifetime(self, domain_id: str, thread: SimThread) -> None:
        """Kill a resident that overstayed its welcome (section 2: DoS)."""
        if not thread.is_alive or self._threads.get(domain_id) is not thread:
            return  # already departed/completed/terminated
        thread.kill()
        with self.domain_db.privileged():
            if domain_id in self.domain_db:
                self.domain_db.set_status(domain_id, "terminated")
                _revoke_holder_tokens(self.domain_db.get(domain_id).domain)
        self.registry.remove_ephemeral_of(domain_id)
        self._threads.pop(domain_id, None)
        image = self._resident_images.pop(domain_id, None)
        self._instances.pop(domain_id, None)
        self._occupancy.update(self.clock.now(), len(self._threads))
        self.stats.add("agents_killed_lifetime")
        self.audit.record(
            domain_id, "agent.lifetime_limit", "", False,
            f"exceeded {self.resident_lifetime_limit}s residency",
        )
        if self.recovery is not None and image is not None:
            self.recovery.on_resident_gone(image, "terminated")

    def _update_name_service(self, image: AgentImage) -> None:
        token = image.attributes.get("ns_token")
        if self.name_service is None or not token:
            return
        if hasattr(self.name_service, "relocate_async"):
            # A remote registry: update over the network without blocking
            # the (kernel-context) arrival path.
            self.name_service.relocate_async(
                self.kernel, image.name, token, self.name,
                on_fail=lambda: self.stats.add("ns_relocate_failed"),
                audit=self.audit,
            )
            return
        try:
            self.name_service.relocate(image.name, token, self.name)
        except (NamingError, UnknownNameError):
            self.stats.add("ns_relocate_failed")

    # -- the resident's thread body -------------------------------------------

    # Bound on transfer_failed-hook retries per residency, so a buggy hook
    # cannot spin the server forever.
    MAX_TRANSFER_RETRIES = 8

    def _run_resident(self, image: AgentImage, domain: ProtectionDomain) -> None:
        """Executes inside the agent's thread group.

        With tracing on, the whole residency is one ``agent.resident``
        span parented on the trace context the image carried in — so a
        three-hop tour shows three resident spans in one trace, one per
        server.  Simulated threads run ``finally`` blocks even when
        killed, so the span closes on every exit path.
        """
        if not _obs.TRACING:
            self._resident_body(image, domain)
            return
        parent = None
        if isinstance(image.attributes, dict):
            parent = SpanContext.from_attributes(
                image.attributes.get("trace_ctx")
            )
        with _obs.TRACER.span(
            "agent.resident",
            parent=parent,
            agent=str(image.name),
            server=self.name,
            hop=len(image.trace),
        ):
            self._resident_body(image, domain)

    def _resident_body(
        self, image: AgentImage, domain: ProtectionDomain
    ) -> None:
        try:
            instance = self._materialize(image, domain)
        except ReproError as exc:
            self.stats.add("agents_failed_materialize")
            self._retire(domain, "terminated", f"materialization failed: {exc}")
            return
        self._instances[domain.domain_id] = instance
        entry = getattr(instance, image.entry_method, None)
        if entry is None or not callable(entry):
            self.stats.add("agents_failed")
            self._retire(
                domain, "terminated",
                f"agent has no entry method {image.entry_method!r}",
            )
            return
        pending = entry
        retries = 0
        while True:
            try:
                if domain.namespace is not None:
                    # Fresh Telescript-style execution budget per entry.
                    domain.namespace.reset_execution_budget()
                result = pending()
            except Departure as departure:
                failure = self._handle_departure(image, instance, domain, departure)
                if failure is None:
                    return  # departed successfully
                # Failure-tolerant itineraries: an agent defining a
                # ``transfer_failed(destination, reason)`` hook gets a
                # chance to re-route instead of being terminated.
                hook = getattr(instance, "transfer_failed", None)
                retries += 1
                if callable(hook) and retries <= self.MAX_TRANSFER_RETRIES:
                    destination, reason = failure
                    pending = lambda d=destination, r=reason: hook(d, r)  # noqa: E731
                    continue
                self.stats.add("agents_terminated_transfer")
                self._retire(domain, "terminated", f"transfer failed: {failure[1]}")
                return
            except Completion as completion:
                self._handle_completion(image, domain, completion.result)
                return
            except SecurityException as exc:
                self.stats.add("agents_killed_security")
                self._retire(domain, "terminated", f"security violation: {exc}")
                return
            except Exception as exc:  # noqa: BLE001 - agent bugs stay contained
                self.stats.add("agents_failed")
                self._retire(domain, "terminated", f"agent error: {exc!r}")
                return
            else:
                # Falling off the end of the entry method is a completion.
                self._handle_completion(image, domain, result)
                return

    def _materialize(self, image: AgentImage, domain: ProtectionDomain) -> Agent:
        """Instantiate the agent's class and restore its shipped state."""
        if image.is_trusted_code:
            cls = trusted_agent_class(image.class_name)
        else:
            assert domain.namespace is not None
            domain.namespace.load(image.source)
            cls = domain.namespace.get(image.class_name)
        instance = cls()
        if not isinstance(instance, Agent):
            raise AgentStateError(
                f"{image.class_name!r} does not extend the Agent base class"
            )
        instance.restore_state(image.state)
        instance.host = AgentEnvironment(self, domain, image.home_site)
        instance.name = image.name
        return instance

    # -- outcomes ------------------------------------------------------------------

    def _handle_departure(
        self,
        image: AgentImage,
        instance: Agent,
        domain: ProtectionDomain,
        departure: Departure,
    ) -> "tuple[str, str] | None":
        """Attempt the transfer (with retries, exactly-once semantics).

        Returns None on success (the resident has departed), or
        ``(destination, reason)`` on failure — the caller decides whether
        the agent gets a ``transfer_failed`` second chance.

        Each departure gets a transfer id; retransmissions reuse it, so
        the receiver's dedup table acknowledges them idempotently.  The
        domain is retired only after a positive ``accepted`` ack.  The
        departure is journaled before the first network attempt so a
        crash mid-transfer can be recovered (:meth:`restart`).
        """
        if not _obs.TRACING:
            return self._depart(image, instance, domain, departure, None)
        with _obs.TRACER.span(
            "transfer.depart",
            agent=str(image.name),
            server=self.name,
            destination=departure.destination,
        ) as span:
            failure = self._depart(image, instance, domain, departure, span)
            if failure is not None and span.status == "unset":
                span.set_status("error", failure[1])
            return failure

    def _depart(
        self,
        image: AgentImage,
        instance: Agent,
        domain: ProtectionDomain,
        departure: Departure,
        span,
    ) -> "tuple[str, str] | None":
        destination = departure.destination
        outgoing = image.with_hop(self.name).with_state(
            instance.capture_state(), departure.method
        )
        if self.forward_restriction is not None:
            restricted = outgoing.credentials.extend(
                delegator=URN.parse(self.name),
                delegator_keys=self.secure.keys,
                delegator_certificate=self.secure.certificate,
                restriction=self.forward_restriction,
                now=self.clock.now(),
            )
            outgoing = dataclasses.replace(outgoing, credentials=restricted)
        transfer_id = self._transfer_ids.next()
        outgoing = outgoing.with_attributes(transfer_id=transfer_id)
        if span is not None:
            # Stamp the depart span's context into the image *before*
            # journaling: crash-recovery re-offers replay the journaled
            # image verbatim, and the remote residency must join this
            # trace either way.
            outgoing = outgoing.with_attributes(
                trace_ctx=span.context.to_attributes()
            )
            span.set_attribute("transfer_id", transfer_id)
        if self.integrity is not None:
            # Seal the appraisal link *before* journaling, so crash
            # recovery re-offers the identical sealed image (a journal
            # replay must never append a second link for the same hop).
            outgoing = self.integrity.seal_departure(outgoing, destination)
        self._journal.record(
            transfer_id, outgoing, destination, domain.domain_id, self.clock.now()
        )
        try:
            reply = self._offer_image(outgoing, destination)
        except CircuitOpenError as exc:
            self._journal.resolve(transfer_id, "breaker-open")
            self.stats.add("transfers_failed_breaker")
            return destination, str(exc)
        except ReproError as exc:
            self._journal.resolve(transfer_id, "failed")
            self.stats.add("transfers_failed_exhausted")
            return destination, str(exc)
        if reply.get("status") != "accepted":
            self._journal.resolve(transfer_id, "refused")
            self.stats.add("transfers_refused_remote")
            return (
                destination,
                f"refused by {destination}: {reply.get('reason', '?')}",
            )
        self._journal.resolve(transfer_id, "accepted")
        self.stats.add("transfers_out")
        self._retire(domain, "departed", f"to {destination}")
        self._settle_bill(image, domain)
        return None

    # -- the retrying offer primitive (departures + crash recovery) ------------

    def _breaker_for(self, destination: str) -> CircuitBreaker:
        breaker = self._breakers.get(destination)
        if breaker is None:
            breaker = CircuitBreaker(
                self.clock,
                failure_threshold=self._breaker_failure_threshold,
                reset_timeout=self._breaker_reset_timeout,
            )
            self._breakers[destination] = breaker
        return breaker

    def _offer_image(self, image: AgentImage, destination: str) -> dict:
        """Offer ``image`` to ``destination`` under the retry policy.

        Returns the decoded reply dict on any definitive answer.  Raises
        :class:`TransferRetryExhaustedError` once every attempt failed,
        or :class:`CircuitOpenError` when the destination's breaker
        refuses.  Must run in a simulated thread.
        """
        if self.outbound_tamper is not None:
            # Red-team hook: a compromised host rewrites what it forwards.
            image, destination = self.outbound_tamper(image, destination)
        payload = encode(image)

        def attempt(_: int) -> dict:
            self.stats.add("transfer_attempts")
            channel = self.secure.connect(destination, timeout=self.transfer_timeout)
            raw = channel.call(
                "atp.transfer", payload, timeout=self.transfer_timeout
            )
            return decode(raw)

        def note_retry(attempt_no: int, exc: BaseException) -> None:
            self.stats.add("transfer_retries")
            # The peer may have crashed and restarted; its end of the
            # cached channel would be gone.  Re-handshake on retry.
            self.secure.drop_channel(destination)
            self.audit.record(
                self.name, "atp.retry", destination, True,
                f"attempt {attempt_no} retrying after: {exc}",
            )

        return call_with_retries(
            attempt,
            kernel=self.kernel,
            policy=self.transfer_retry,
            rng=self._retry_rng,
            retry_on=(NetworkError,),
            breaker=self._breaker_for(destination),
            on_retry=note_retry,
            exhausted=TransferRetryExhaustedError,
            describe=f"transfer to {destination}",
        )

    def _handle_completion(
        self, image: AgentImage, domain: ProtectionDomain, result: Any
    ) -> None:
        self.stats.add("agents_completed")
        self._retire(domain, "completed", "mission complete")
        # The completion report and the bill go to the same home site, so
        # they ride one sealed batch frame (one MAC, one sequence number)
        # instead of two secure sends.
        payloads: list[Any] = []
        if result is not None and image.home_site != self.name:
            payloads.append(result)
        bill = self._bill_payload(image, domain)
        if bill is not None:
            payloads.append(bill)
        if not payloads:
            return
        try:
            self.send_agent_reports(domain, image.home_site, payloads)
            if bill is not None:
                self.stats.add("bills_sent")
        except ReproError:
            self.stats.add("reports_failed")

    def _bill_payload(
        self, image: AgentImage, domain: ProtectionDomain
    ) -> "dict[str, Any] | None":
        try:
            record = self.domain_db.get(domain.domain_id)
        except ReproError:
            return None
        if record.charges <= 0 or image.home_site == self.name:
            return None
        return {"type": "bill", "server": self.name, "charges": record.charges}

    def _settle_bill(self, image: AgentImage, domain: ProtectionDomain) -> None:
        """Section 2's electronic-commerce hook: when a resident leaves
        with accrued charges, its home site receives the statement.

        Runs only on the agent-thread paths (it may block on a secure
        channel); forcible terminations leave the account queryable in the
        domain database instead.
        """
        bill = self._bill_payload(image, domain)
        if bill is None:
            return
        try:
            self.send_agent_report(domain, image.home_site, bill)
            self.stats.add("bills_sent")
        except ReproError:
            self.stats.add("reports_failed")

    def _retire(self, domain: ProtectionDomain, status: str, detail: str) -> None:
        with self.domain_db.privileged():
            if domain.domain_id in self.domain_db:
                self.domain_db.set_status(domain.domain_id, status)
        # Ephemeral self-registrations (mailboxes) die with the agent;
        # installed services (section 5.5) persist.
        self.registry.remove_ephemeral_of(domain.domain_id)
        # A terminated or completed agent's capability tokens die with it
        # (one holder-epoch bump reaches copies on every server).  A
        # *departing* agent keeps its tokens — surviving migration is the
        # point of carrying them.
        if status != "departed":
            _revoke_holder_tokens(domain)
        self.audit.record(domain.domain_id, "agent.retire", status, True, detail)
        self._threads.pop(domain.domain_id, None)
        image = self._resident_images.pop(domain.domain_id, None)
        self._instances.pop(domain.domain_id, None)
        self._occupancy.update(self.clock.now(), len(self._threads))
        if self.supervisor is not None:
            self.supervisor.forget_domain(domain.domain_id)
        if self.recovery is not None and image is not None:
            # Tell the home site to drop the escrow of a finished agent
            # (a departed one is superseded by the next host instead).
            self.recovery.on_resident_gone(image, status)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------

    def send_agent_report(
        self, domain: ProtectionDomain, home_site: str, payload: Any
    ) -> None:
        """Deliver a report to ``home_site`` (local append or secure send)."""
        self.send_agent_reports(domain, home_site, [payload])

    def send_agent_reports(
        self, domain: ProtectionDomain, home_site: str, payloads: list[Any]
    ) -> None:
        """Deliver several reports to the same ``home_site``.

        Remote delivery amortizes the secure channel: a multi-payload
        batch travels as one sealed frame (``SecureChannel.send_many``)
        instead of one MAC + sequence number per report.
        """
        assert domain.credentials is not None
        bodies = []
        for payload in payloads:
            body = {
                "agent": str(domain.credentials.agent),
                "from": self.name,
                "payload": payload,
            }
            if home_site == self.name:
                body["received_at"] = self.clock.now()
                self.reports.append(body)
            else:
                bodies.append(encode(body))
        if not bodies:
            return
        if not _obs.TRACING:
            self._send_report(home_site, bodies)
            return
        with _obs.TRACER.span(
            "report.send", server=self.name, destination=home_site,
            reports=len(bodies),
        ):
            self._send_report(home_site, bodies)

    def _send_report(self, home_site: str, bodies: list[bytes]) -> None:
        def attempt(_: int) -> None:
            self.stats.add("report_attempts")
            channel = self.secure.connect(home_site)
            if len(bodies) == 1:
                channel.send("agent.report", bodies[0])
            else:
                channel.send_many("agent.report", bodies)

        def note_retry(attempt_no: int, exc: BaseException) -> None:
            self.stats.add("report_retries")
            self.secure.drop_channel(home_site)

        call_with_retries(
            attempt,
            kernel=self.kernel,
            policy=self.report_retry,
            rng=self._retry_rng,
            retry_on=(NetworkError,),
            on_retry=note_retry,
            describe=f"report to {home_site}",
        )

    def _on_report(self, peer: str, body: bytes) -> None:
        try:
            report = decode(body)
        except ReproError:
            self.stats.add("reports_malformed")
            return
        report["via"] = peer
        report["received_at"] = self.clock.now()
        self.reports.append(report)

    # ------------------------------------------------------------------
    # Transfer protocol (receiver side)
    # ------------------------------------------------------------------

    def _on_transfer(self, peer: str, body: bytes) -> bytes:
        if not _obs.TRACING:
            return self._admit_transfer(peer, body, None)
        with _obs.TRACER.span(
            "transfer.admit", server=self.name, peer=peer
        ) as span:
            return self._admit_transfer(peer, body, span)

    def _admit_transfer(self, peer: str, body: bytes, span) -> bytes:
        # Offered wire bytes, whatever the verdict — capacity planning
        # wants to see refused load too.  One bisect; transfers are
        # crypto-dominated, so this is noise on the transfer path.
        self.telemetry.observe("transfer_bytes", len(body))
        if (
            self.integrity is not None
            and self.integrity.quarantine.blocked_name(peer)
        ):
            # A quarantined upstream host gets a fast refusal before this
            # server spends any decode/verification work on its offer.
            self.stats.add("transfers_refused")
            self.stats.add("transfers_refused_quarantined")
            if span is not None:
                span.set_status("error", f"refused: {peer} is quarantined")
            self.audit.record(
                peer, "atp.quarantine", "", False,
                "transfer refused: sender is quarantined",
            )
            return encode({"status": "refused", "reason": "sender quarantined"})
        tid: str | None = None
        try:
            image = decode(body)
            if span is not None and isinstance(image, AgentImage):
                if isinstance(image.attributes, dict):
                    carried = SpanContext.from_attributes(
                        image.attributes.get("trace_ctx")
                    )
                    if carried is not None:
                        # Join the trace the sender stamped on the image
                        # (learned only now — after the span opened).
                        span.adopt_context(carried)
                span.set_attribute("agent", str(image.name))
            if not isinstance(image, AgentImage):
                raise TransferError("payload is not an agent image")
            # Idempotent receive: a retransmission of a transfer this
            # server already answered (lost ack, sender retry or crash
            # recovery) gets the cached reply — the agent is not admitted
            # twice.  The key includes the authenticated peer, so one
            # sender cannot poison another's entries.
            tid = image.transfer_id
            if tid is not None and 0 < len(tid) <= 128:
                cached = self._transfer_dedup.get((peer, tid))
                if cached is not None:
                    self.stats.add("transfers_duplicate_suppressed")
                    if span is not None:
                        # A retransmission, not a fresh hop: no resident
                        # span is started, the trace shows an event.
                        span.set_attribute("duplicate", True)
                        _obs.TRACER.add_event(
                            "transfer.duplicate", transfer_id=tid
                        )
                    self.audit.record(
                        peer, "atp.dedup", str(image.name), True,
                        f"duplicate transfer {tid} answered from cache",
                    )
                    return cached
            else:
                tid = None
            if self._draining:
                # Past the dedup lookup on purpose: a retransmission of
                # a transfer this server accepted *before* it started
                # draining must still get its cached "accepted".
                self.stats.add("transfers_refused_draining")
                raise TransferError("server draining")
            self.admission.validate(image, wire_size=len(body), peer=peer)
        except AgentIntegrityError as exc:
            reply = self._reject_integrity(peer, tid, span, exc)
            return reply
        except ReproError as exc:
            self.stats.add("transfers_refused")
            if span is not None:
                span.set_status("error", f"refused: {exc}")
            if isinstance(exc, AgentAttributeError):
                # The whitelist refusal gets its own audit operation so
                # operators can tell malformed-attribute probes apart
                # from ordinary admission denials.
                self.audit.record(
                    peer, "agent.attributes_reject",
                    str(exc.context.get("key", "")), False, str(exc),
                )
            self.audit.record(peer, "atp.admit", "", False, str(exc))
            reply = encode({"status": "refused", "reason": str(exc)})
            if tid is not None:
                self._transfer_dedup.put((peer, tid), reply)
            return reply
        self.stats.add("transfers_in")
        self.audit.record(peer, "atp.admit", str(image.name), True, "")
        if self.integrity is not None:
            chain = image.attributes.get(APPRAISAL_ATTRIBUTE)
            if chain:
                # Only a fully admitted image enters the replay record —
                # recording earlier would let an image refused for other
                # reasons poison its own legitimate retry.
                self.integrity.remember(chain[-1].tag())
        self._start_resident(image)
        reply = encode({"status": "accepted"})
        if tid is not None:
            self._transfer_dedup.put((peer, tid), reply)
        return reply

    def _reject_integrity(
        self, peer: str, tid: str | None, span, exc: AgentIntegrityError
    ) -> bytes:
        """Integrity rejection: quarantine upstream, kill carried tokens,
        audit and trace the event, and cache the refusal for retries."""
        reason = str(exc.context.get("reason", "unknown"))
        agent = exc.context.get("agent")
        fingerprint = exc.context.get("fingerprint")
        self.stats.add("transfers_refused")
        self.stats.add("transfers_refused_integrity")
        assert self.integrity is not None
        self.integrity.quarantine.add(
            peer, str(fingerprint) if fingerprint else None
        )
        self.stats.add("hosts_quarantined")
        if agent is not None:
            # A tampered agent's carried capability tokens die with it:
            # one holder-epoch bump makes every copy stale federation-wide
            # (redemption falls back to full authorization, which the
            # quarantined impostor cannot pass).
            default_epoch_registry().bump_holder(str(agent))
        detail = f"{reason}: {exc}"
        if span is not None:
            span.set_status("error", f"refused: {exc}")
            with _obs.TRACER.span(
                "agent.integrity_reject",
                agent=str(agent or ""),
                peer=peer,
                reason=reason,
            ) as reject_span:
                reject_span.set_status("error", str(exc))
                self.audit.record(
                    peer, "agent.integrity_reject", str(agent or ""), False,
                    detail,
                )
        else:
            self.audit.record(
                peer, "agent.integrity_reject", str(agent or ""), False, detail
            )
        reply = encode({"status": "refused", "reason": str(exc)})
        if tid is not None:
            self._transfer_dedup.put((peer, tid), reply)
        return reply

    # ------------------------------------------------------------------
    # Status queries and control commands (section 4 / domain database)
    # ------------------------------------------------------------------

    def resident_status(self, agent: URN) -> dict[str, Any]:
        """Local status lookup (what the status handler serves remotely)."""
        record = self.domain_db.by_agent(agent)
        return {
            "agent": str(record.agent),
            "server": self.name,
            "status": record.status,
            "owner": str(record.owner),
            "arrived_at": record.arrived_at,
            "charges": record.charges,
            "bindings": len(record.bindings),
        }

    def _on_status(self, peer: str, body: bytes) -> bytes:
        try:
            query = decode(body)
            agent = query["agent"]
            if isinstance(agent, str):
                agent = URN.parse(agent)
            return encode(self.resident_status(agent))
        except (ReproError, KeyError, TypeError) as exc:
            return encode({"error": str(exc)})

    def _on_control(self, peer: str, body: bytes) -> bytes:
        """Owner control commands; only the agent's home site may issue them."""
        try:
            command = decode(body)
            agent = command["agent"]
            if isinstance(agent, str):
                agent = URN.parse(agent)
            record = self.domain_db.by_agent(agent)
        except (ReproError, KeyError, TypeError) as exc:
            return encode({"error": str(exc)})
        if peer != record.home_site:
            self.stats.add("control_refused")
            self.audit.record(
                peer, "agent.control", str(agent), False, "not the home site"
            )
            return encode({"error": "only the agent's home site may control it"})
        if command.get("command") != "terminate":
            return encode({"error": f"unknown command {command.get('command')!r}"})
        if self.terminate_resident(record.domain_id):
            self.stats.add("agents_terminated_by_owner")
            self.audit.record(peer, "agent.control", str(agent), True, "terminate")
            return encode({"status": "terminated"})
        return encode({"status": record.status})

    def terminate_resident(self, domain_id: str) -> bool:
        """Forcibly end a live resident (trusted callers only).

        Returns True if a live thread was killed; False if the resident
        had already finished.  Authorization is the caller's problem —
        the control handler checks the home site, the agent environment
        checks creator identity.
        """
        thread = self._threads.get(domain_id)
        # The whole thread *group* dies, not just the resident's main
        # thread: workers it spawned (section 5.3: same group) must not
        # survive their agent.
        group_threads: list[SimThread] = []
        if domain_id in self.domain_db:
            record = self.domain_db.get(domain_id)
            group_threads = record.domain.thread_group.live_threads()
        if (thread is None or not thread.is_alive) and not group_threads:
            return False
        if thread is not None and thread.is_alive:
            thread.kill()
        for worker in group_threads:
            if worker is not thread and worker.is_alive:
                worker.kill()
        with self.domain_db.privileged():
            if domain_id in self.domain_db:
                self.domain_db.set_status(domain_id, "terminated")
                _revoke_holder_tokens(self.domain_db.get(domain_id).domain)
        self.registry.remove_ephemeral_of(domain_id)
        self._threads.pop(domain_id, None)
        image = self._resident_images.pop(domain_id, None)
        self._instances.pop(domain_id, None)
        self._occupancy.update(self.clock.now(), len(self._threads))
        if self.supervisor is not None:
            self.supervisor.forget_domain(domain_id)
        if self.recovery is not None and image is not None:
            self.recovery.on_resident_gone(image, "terminated")
        return True

    # ------------------------------------------------------------------
    # Crash and recovery (failure model: fail-stop with stable storage)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulate an abrupt fail-stop crash.

        Every resident thread dies mid-flight, the server's network
        presence disappears (the endpoint closes, so peers see timeouts)
        and the channel session keys are lost.  The departure journal
        and the dedup table survive — they stand in for records on
        stable storage, which is what makes :meth:`restart` able to
        recover in-flight transfers.
        """
        self.stats.add("crashes")
        self.audit.record(self.name, "server.crash", "", False, "simulated crash")
        for domain_id, thread in list(self._threads.items()):
            if thread.is_alive:
                thread.kill()
                self.stats.add("agents_killed_crash")
            if domain_id in self.domain_db:
                for worker in self.domain_db.get(
                    domain_id
                ).domain.thread_group.live_threads():
                    if worker is not thread and worker.is_alive:
                        worker.kill()
            with self.domain_db.privileged():
                if domain_id in self.domain_db:
                    self.domain_db.set_status(domain_id, "terminated")
            self.registry.remove_ephemeral_of(domain_id)
        self._threads.clear()
        self._instances.clear()
        self._resident_images.clear()
        self._occupancy.update(self.clock.now(), 0)
        # Aux threads die with the host: a heartbeat round, checkpoint
        # push, drain worker or leftover recovery re-offer from an
        # earlier restart must not keep acting (or holding in-flight
        # call timers) in the dead server's name.  Killing interrupts
        # each at its next blocking point; the channel-call ``finally``
        # blocks cancel their reply timers on the way out.
        for aux in self._aux_threads:
            if aux.is_alive:
                aux.kill()
        self._aux_threads.clear()
        if self.membership is not None:
            self.membership.stop()
        if self.recovery is not None:
            self.recovery.stop()
        if self.supervisor is not None:
            self.supervisor.on_crash()
        self.secure.reset_channels()
        self.endpoint.close()

    def restart(self) -> None:
        """Bring a crashed server back and recover journaled departures.

        Reopens the endpoint, then spawns one recovery thread per
        in-flight departure record (see :meth:`_recover_departure`).
        Only meaningful after :meth:`crash`.
        """
        if self.endpoint.is_open:
            raise ReproError(f"{self.name}: restart() requires a crashed server")
        self.stats.add("restarts")
        self.endpoint.open()
        if self.membership is not None:
            # A new life: peers that confirmed this server dead only
            # believe heartbeats carrying a *higher* incarnation.
            self.membership.bump_incarnation()
            self.membership.start()
        if self.recovery is not None:
            self.recovery.start()
        if self.supervisor is not None:
            # Re-validate surviving leases from the domain database and
            # sweep the ones that lapsed while the server was down.
            self.supervisor.sweep_leases()
        pending = self._journal.pending()
        self.audit.record(
            self.name, "server.restart", "", True,
            f"recovering {len(pending)} in-flight departure(s)",
        )
        for record in pending:
            self._spawn_aux(
                lambda r=record: self._recover_departure(r),
                name=f"{self.name}/recover/{record.transfer_id}",
            )

    def _recover_departure(self, record: DepartureRecord) -> None:
        """Dispose of one journaled in-flight departure after a restart.

        Re-offer with the *same* transfer id — if the pre-crash offer
        actually landed, the receiver's dedup table answers ``accepted``
        idempotently, so the agent is never duplicated.  If the
        destination stays unreachable or refuses, return the agent to
        its home site (a fresh transfer id: it is a different handoff),
        or relaunch locally when this server *is* the home site.  Only
        when every avenue fails is the agent declared stranded.
        """
        if not _obs.TRACING:
            self._recover(record)
            return
        parent = None
        if isinstance(record.image.attributes, dict):
            parent = SpanContext.from_attributes(
                record.image.attributes.get("trace_ctx")
            )
        with _obs.TRACER.span(
            "transfer.recover",
            parent=parent,
            agent=str(record.image.name),
            server=self.name,
            destination=record.destination,
            transfer_id=record.transfer_id,
        ):
            self._recover(record)

    def _recovery_superseded(self, record: DepartureRecord) -> bool:
        """Directory veto for restart recovery: is this journal entry stale?

        While this server was dead, the home site's escrow re-homing may
        already have relaunched the journaled agent elsewhere (death is
        confirmed faster than a long outage ends).  The directory is
        updated at every admission, so a registered location that is
        neither this server nor the journaled destination proves a newer
        residency exists — re-offering would fork the agent.  An
        unregistered name means the agent already finished or was
        tombstoned: equally not ours to resurrect.  An unreachable
        directory is no veto (availability over precision; the dedup
        table still absorbs the same-destination case).
        """
        if self.name_service is None:
            return False
        try:
            entry = self.name_service.lookup(record.image.name)
        except UnknownNameError:
            return True
        except (NamingError, NetworkError, ReproError):
            return False
        location = getattr(entry, "location", None)
        return location is not None and location not in (
            self.name, record.destination,
        )

    def _recover(self, record: DepartureRecord) -> None:
        self.stats.add("recoveries_attempted")
        if self._recovery_superseded(record):
            self._journal.resolve(record.transfer_id, "recovered-superseded")
            self.stats.add("recoveries_superseded")
            self.audit.record(
                self.name, "atp.recover", str(record.image.name), True,
                "journal entry superseded: the agent was re-homed (or "
                "finished) while this server was down",
            )
            return
        try:
            reply = self._offer_image(record.image, record.destination)
        except ReproError:
            reply = None
        if reply is not None and reply.get("status") == "accepted":
            self._journal.resolve(record.transfer_id, "recovered-delivered")
            self.stats.add("recoveries_delivered")
            with self.domain_db.privileged():
                if record.domain_id in self.domain_db:
                    self.domain_db.set_status(record.domain_id, "departed")
            self.audit.record(
                self.name, "atp.recover", str(record.image.name), True,
                f"re-offered to {record.destination}",
            )
            return
        image = record.image.with_attributes(returned_home=True)
        if image.home_site == self.name:
            self._journal.resolve(record.transfer_id, "recovered-home-local")
            self.stats.add("recoveries_returned_home")
            self.audit.record(
                self.name, "atp.recover", str(image.name), True,
                "relaunched at home after crash",
            )
            if self.integrity is not None:
                # The journaled tip was sealed for the unreachable
                # destination; the agent stays here instead, so the tip
                # must now read self→self or the chain's hop-to-hop
                # linkage breaks at the agent's *next* departure.
                image = self.integrity.reseal_tip(image, self.name)
            self._start_resident(image)
            return
        home_image = image.with_attributes(transfer_id=self._transfer_ids.next())
        if self.integrity is not None:
            # A different hop than the journaled one: re-seal the tip
            # link for the home site (same hop index, fresh timestamp).
            home_image = self.integrity.reseal_tip(home_image, image.home_site)
        try:
            reply = self._offer_image(home_image, image.home_site)
        except ReproError:
            reply = None
        if reply is not None and reply.get("status") == "accepted":
            self._journal.resolve(record.transfer_id, "recovered-returned-home")
            self.stats.add("recoveries_returned_home")
            self.audit.record(
                self.name, "atp.recover", str(image.name), True,
                f"returned to home site {image.home_site} after crash",
            )
            return
        self._journal.resolve(record.transfer_id, "stranded")
        self.stats.add("recovery_stranded")
        self.audit.record(
            self.name, "atp.recover", str(image.name), False,
            f"unrecoverable: {record.destination} and home "
            f"{image.home_site} both unreachable",
        )

    # ------------------------------------------------------------------
    # Graceful drain (planned decommissioning)
    # ------------------------------------------------------------------

    def drain(self) -> SimThread:
        """Gracefully decommission: migrate every resident to a survivor.

        Immediately stops accepting new work (local launches raise, ATP
        offers get a typed ``server draining`` refusal that the sender's
        ``transfer_failed`` routing can skip past) and advertises the
        draining flag in heartbeats so the recovery plane stops placing
        agents here.  The migration itself runs in an aux thread (it
        blocks on transfers); the returned thread can be joined, or the
        kernel simply run until the world quiesces.

        Residents are moved with the same load-aware placement scorer
        re-homing uses: each is stopped at its next blocking point, its
        live state captured, and the sealed image offered to the least
        loaded surviving planned stop.  A resident caught mid-departure
        is finished via the journal (same transfer id — the dedup table
        absorbs the duplicate); one nobody accepts is relaunched locally
        and the drain for it reported failed.
        """
        self._draining = True
        if self.membership is not None:
            self.membership.draining = True
        self.stats.add("drains")
        self.audit.record(self.name, "server.drain", "", True, "drain initiated")
        return self._spawn_aux(self._drain_residents, name=f"{self.name}/drain")

    def _drain_residents(self) -> None:
        for domain_id, thread in list(self._threads.items()):
            self._drain_one(domain_id, thread)

    def _drain_one(self, domain_id: str, thread: SimThread) -> None:
        if self._threads.get(domain_id) is not thread:
            return  # already gone
        image = self._resident_images.get(domain_id)
        instance = self._instances.get(domain_id)
        if thread.is_alive:
            thread.kill()
        thread.join(reraise=False)
        if self._threads.get(domain_id) is not thread:
            # The resident retired itself on the way out (its departure
            # or completion won the race against the kill): nothing of
            # it is left here to migrate.
            return
        record = next(
            (r for r in self._journal.pending() if r.domain_id == domain_id),
            None,
        )
        if record is not None:
            # Caught mid-departure, after journaling: dispose of the
            # journaled in-flight image exactly like crash recovery does
            # (same transfer id, so a landed pre-kill offer dedups).
            self.stats.add("agents_killed_drain")
            self._drop_resident(
                domain_id, "departed",
                f"drained via journal to {record.destination}", revoke=False,
            )
            self._recover(record)
            return
        if image is None or instance is None:
            self.stats.add("agents_killed_drain")
            self._drop_resident(
                domain_id, "terminated", "drain: no image to migrate",
                revoke=True,
            )
            return
        try:
            state = instance.capture_state()
        except ReproError:
            state = image.state
        outgoing = image.with_hop(self.name).with_state(state, image.entry_method)
        targets = (
            self.recovery.pick_targets(outgoing, exclude=set())
            if self.recovery is not None
            else []
        )
        for target in targets:
            offer = outgoing
            if self.integrity is not None:
                offer = self.integrity.seal_departure(offer, target)
            offer = offer.with_attributes(
                transfer_id=self._transfer_ids.next()
            )
            try:
                reply = self._offer_image(offer, target)
            except ReproError:
                continue
            if reply.get("status") != "accepted":
                continue
            # Accounting-wise an ordinary departure: hosted here once,
            # transferred out once, hosted again at the target.
            self.stats.add("transfers_out")
            self.stats.add("drained_out")
            self._drop_resident(
                domain_id, "departed", f"drained to {target}", revoke=False
            )
            return
        # Nobody would take it: the agent stays, the drain failed for it.
        self.stats.add("agents_killed_drain")
        self.stats.add("drain_failed")
        self._drop_resident(
            domain_id, "departed", "drain failed: relaunched locally",
            revoke=False,
        )
        self.audit.record(
            domain_id, "server.drain", str(image.name), False,
            "no survivor accepted; agent relaunched locally",
        )
        # Relaunch from the *admitted* image shape (no extra hop: the
        # appraisal chain must stay aligned with the trace for the
        # agent's eventual real departure), with the live state.
        relaunch = image.with_state(state, image.entry_method)
        self.admission.validate(relaunch)
        self._start_resident(relaunch)

    def _drop_resident(
        self, domain_id: str, status: str, detail: str, *, revoke: bool
    ) -> None:
        """Inline retire bookkeeping for a resident whose thread the
        server itself killed (drain paths — mirrors :meth:`_retire`)."""
        with self.domain_db.privileged():
            if domain_id in self.domain_db:
                self.domain_db.set_status(domain_id, status)
                if revoke:
                    _revoke_holder_tokens(self.domain_db.get(domain_id).domain)
        self.registry.remove_ephemeral_of(domain_id)
        self._threads.pop(domain_id, None)
        self._instances.pop(domain_id, None)
        self._resident_images.pop(domain_id, None)
        self._occupancy.update(self.clock.now(), len(self._threads))
        if self.supervisor is not None:
            self.supervisor.forget_domain(domain_id)
        self.audit.record(domain_id, "agent.drain", status, True, detail)

    # ------------------------------------------------------------------
    # Operator reporting
    # ------------------------------------------------------------------

    def current_residents(self) -> int:
        """Agents currently executing (or blocked) on this server."""
        return len(self._threads)

    def average_residents(self) -> float:
        """Time-weighted mean resident count since the server started."""
        return self._occupancy.average(self.clock.now())

    def security_report(self) -> dict[str, Any]:
        """Summary of mediated denials and hostile activity on this server.

        The reference monitor's audit trail, aggregated: what operators
        would watch to notice an attack campaign.
        """
        denials_by_domain: dict[str, int] = {}
        denials_by_operation: dict[str, int] = {}
        for record in self.audit.denials():
            denials_by_domain[record.domain] = (
                denials_by_domain.get(record.domain, 0) + 1
            )
            denials_by_operation[record.operation] = (
                denials_by_operation.get(record.operation, 0) + 1
            )
        return {
            "server": self.name,
            "denials_total": len(self.audit.denials()),
            "denials_by_domain": denials_by_domain,
            "denials_by_operation": denials_by_operation,
            "transfers_refused": self.stats["transfers_refused"],
            "agents_killed_security": self.stats["agents_killed_security"],
            "control_refused": self.stats["control_refused"],
            "channel_frames_rejected": (
                self.secure.stats["rejected_tampered"]
                + self.secure.stats["rejected_replayed"]
                + self.secure.stats["rejected_malformed"]
            ),
            "transfers_refused_integrity": self.stats[
                "transfers_refused_integrity"
            ],
            "integrity": (
                self.integrity.report() if self.integrity is not None else None
            ),
            "supervision": (
                self.supervisor.report() if self.supervisor is not None else None
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AgentServer({self.name!r}, residents={len(self.domain_db.residents())})"

"""Exactly-once transfer bookkeeping: dedup, journal, checkpoint store.

Two small data structures give the ATP handoff its exactly-once
semantics over an at-most-once transport:

* :class:`DedupTable` (receiver side) — a bounded map from
  ``(peer, transfer_id)`` to the encoded reply already produced for that
  transfer.  A retransmitted ``atp.transfer`` (lost reply, sender retry,
  sender crash + recovery) is answered idempotently from the table
  instead of admitting a second copy of the agent.
* :class:`DepartureJournal` (sender side) — an in-memory stand-in for a
  write-ahead record on stable storage.  A departure is journaled
  *before* the first network attempt and resolved only on a terminal
  outcome (positive ack, definitive refusal, or retry exhaustion handed
  back to the live agent).  A server that crashes mid-transfer therefore
  restarts with the in-flight images still at hand and can re-offer them
  (same transfer id — the receiver's dedup table absorbs the case where
  the original attempt actually landed) or return them to their home
  site, instead of silently stranding them.
* :class:`CheckpointStore` (home side) — the self-healing plane's
  generalization of the journal.  Where the journal protects agents the
  *sender* knows are in flight, the checkpoint store protects agents a
  *remote* server is currently hosting: each resident's latest sealed
  escrow image (a virtual departure back to its home site, captured at
  hop boundaries and on a periodic daemon tick) is kept at the home
  site, newest-wins by a monotonic sequence, so that when the hosting
  server is confirmed dead the recovery coordinator can re-home the
  agent from its last checkpoint.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Hashable

from repro.agents.transfer import AgentImage

__all__ = [
    "DedupTable",
    "DepartureJournal",
    "DepartureRecord",
    "AgentCheckpoint",
    "CheckpointStore",
]


class DedupTable:
    """Bounded LRU map of transfer id → cached encoded reply."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("dedup table capacity must be positive")
        self.capacity = capacity
        self._entries: collections.OrderedDict[Hashable, bytes] = (
            collections.OrderedDict()
        )
        self.hits = 0
        self.evictions = 0

    def get(self, key: Hashable) -> bytes | None:
        """The cached reply for ``key``, refreshing its LRU position."""
        reply = self._entries.get(key)
        if reply is not None:
            self._entries.move_to_end(key)
            self.hits += 1
        return reply

    def put(self, key: Hashable, reply: bytes) -> None:
        self._entries[key] = reply
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


@dataclass(slots=True)
class DepartureRecord:
    """One in-flight departure, as recoverable state."""

    transfer_id: str
    image: AgentImage
    destination: str
    domain_id: str
    recorded_at: float
    # How recovery disposed of it (for audit/tests); "" while in flight.
    outcome: str = field(default="")


class DepartureJournal:
    """The sender's write-ahead record of in-flight departures."""

    def __init__(self) -> None:
        self._records: dict[str, DepartureRecord] = {}
        self.recorded_total = 0
        self.resolved_total = 0

    def record(
        self,
        transfer_id: str,
        image: AgentImage,
        destination: str,
        domain_id: str,
        now: float,
    ) -> DepartureRecord:
        record = DepartureRecord(
            transfer_id=transfer_id,
            image=image,
            destination=destination,
            domain_id=domain_id,
            recorded_at=now,
        )
        self._records[transfer_id] = record
        self.recorded_total += 1
        return record

    def resolve(self, transfer_id: str, outcome: str = "") -> DepartureRecord | None:
        """Remove a record on a terminal outcome; returns it (or None)."""
        record = self._records.pop(transfer_id, None)
        if record is not None:
            record.outcome = outcome
            self.resolved_total += 1
        return record

    def pending(self) -> list[DepartureRecord]:
        """In-flight departures, oldest first."""
        return sorted(self._records.values(), key=lambda r: r.recorded_at)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, transfer_id: str) -> bool:
        return transfer_id in self._records


@dataclass(slots=True)
class AgentCheckpoint:
    """One agent's latest escrow image, held at its home site.

    ``image`` is a *sealed virtual departure* from ``location`` back to
    the home server: its trace ends at the hosting server and (when
    integrity is enabled) its appraisal chain's tip names the home site
    as destination, so the home server can either relaunch it locally
    without any reseal or forward it to a survivor with an ordinary
    ``reseal_tip``.  ``seq`` orders checkpoints for one agent —
    ``(hops, recorded_at)`` — so a stale push (an old hop arriving after
    a newer one) never regresses the stored image.
    """

    agent: str
    image: AgentImage
    location: str
    seq: tuple[int, float]
    recorded_at: float
    status: str = "active"


class CheckpointStore:
    """Newest-wins map of agent name → latest :class:`AgentCheckpoint`."""

    def __init__(self) -> None:
        self._checkpoints: dict[str, AgentCheckpoint] = {}
        self.accepted_total = 0
        self.stale_total = 0
        self.retired_total = 0

    def put(
        self,
        agent: str,
        image: AgentImage,
        location: str,
        seq: tuple[int, float],
        now: float,
    ) -> bool:
        """Store a checkpoint unless a newer one is already held."""
        current = self._checkpoints.get(agent)
        if current is not None and current.seq >= seq:
            self.stale_total += 1
            return False
        self._checkpoints[agent] = AgentCheckpoint(
            agent=agent,
            image=image,
            location=location,
            seq=seq,
            recorded_at=now,
        )
        self.accepted_total += 1
        return True

    def get(self, agent: str) -> AgentCheckpoint | None:
        return self._checkpoints.get(agent)

    def retire(self, agent: str) -> AgentCheckpoint | None:
        """Drop an agent's checkpoint (it completed or went home)."""
        checkpoint = self._checkpoints.pop(agent, None)
        if checkpoint is not None:
            checkpoint.status = "retired"
            self.retired_total += 1
        return checkpoint

    def at(self, location: str) -> list[AgentCheckpoint]:
        """Active checkpoints whose agents were last seen at ``location``."""
        return sorted(
            (c for c in self._checkpoints.values() if c.location == location),
            key=lambda c: c.agent,
        )

    def __len__(self) -> int:
        return len(self._checkpoints)

    def __contains__(self, agent: str) -> bool:
        return agent in self._checkpoints

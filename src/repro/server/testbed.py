"""A world-builder: kernel + network + PKI + name service + servers.

Every example, integration test and benchmark needs the same scaffolding
— a CA, a few interconnected agent servers, an owner identity, and a way
to mint credentials and launch agents.  :class:`Testbed` packages it with
deterministic seeding.

Topologies: ``"full"`` (clique), ``"star"`` (first server is the hub),
``"line"`` (a chain) — enough to exercise multi-hop routing and to place
adversaries on interior links.
"""

from __future__ import annotations

from typing import Any

from repro.agents.agent import Agent
from repro.agents.transfer import AgentImage, capture_image
from repro.credentials.credentials import Credentials
from repro.credentials.delegation import DelegatedCredentials
from repro.credentials.rights import Rights
from repro.crypto.cert import CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.errors import ReproError
from repro.naming.registry import NameService
from repro.naming.urn import URN
from repro.net.network import Network
from repro.obs import runtime as _obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import Tracer
from repro.server.agent_server import AgentServer
from repro.sim.kernel import Kernel
from repro.util.ids import IdGenerator
from repro.util.rng import make_rng

__all__ = ["Testbed"]


class Testbed:
    """A ready-to-run mobile-agent world."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(
        self,
        n_servers: int = 3,
        *,
        seed: int = 1000,
        topology: str = "full",
        latency: float = 0.005,
        bandwidth: float = 1e7,
        loss_rate: float = 0.0,
        key_bits: int = 512,
        authority: str = "site{i}.net",
        server_kwargs: dict[str, Any] | None = None,
        remote_name_service: bool = False,
        replicated_name_service: bool = False,
        ns_shards: int = 2,
        ns_replicas: int = 3,
        ns_write_quorum: int = 2,
        ns_read_quorum: int = 2,
        ns_anti_entropy: float | None = None,
        ns_timeout: float = 10.0,
        ns_stale_read_limit: float | None = None,
        ns_retry: Any | None = None,
        ns_breaker_threshold: int = 3,
        ns_breaker_reset: float = 15.0,
        supervision: Any | None = None,
        self_healing: bool = False,
        membership_config: Any | None = None,
        recovery_config: Any | None = None,
    ) -> None:
        if n_servers < 1:
            raise ValueError("need at least one server")
        if remote_name_service and replicated_name_service:
            raise ValueError(
                "remote_name_service and replicated_name_service are "
                "alternative registry deployments; pick one"
            )
        self.seed = seed
        self.kernel = Kernel()
        self.clock = self.kernel.clock
        self.network = Network(self.kernel, seed=seed)
        # The authoritative registry.  With remote_name_service=True it is
        # additionally exported as a network service (Ajanta's registry is
        # a server of its own) and agent servers hold client stubs.  With
        # replicated_name_service=True the registry is instead a sharded
        # replica-group directory (repro.naming.replicated): servers hold
        # quorum clients, and self.name_service becomes the DirectoryOracle
        # (kernel-context bootstrap writes + the conservation oracle).
        self.name_service: Any = NameService()
        self._remote_ns = remote_name_service
        self._replicated_ns = replicated_name_service
        self.registry_node: str | None = None
        self._registry_secure = None
        self.ns_ring = None
        self.ns_hosts: dict[str, Any] = {}
        self._ns_quorums = (ns_write_quorum, ns_read_quorum)
        self._ns_anti_entropy = ns_anti_entropy
        self._ns_shape = (ns_shards, ns_replicas)
        self._ns_timeout = ns_timeout
        self._ns_stale_read_limit = ns_stale_read_limit
        self._ns_retry = ns_retry
        self._ns_breakers = (ns_breaker_threshold, ns_breaker_reset)
        self.ca = CertificateAuthority("testbed-ca", make_rng(seed, "ca"), self.clock)
        self.rng = make_rng(seed, "testbed")
        self.servers: list[AgentServer] = []
        self._agent_ids = IdGenerator("agent")
        self._faults = None
        self._key_bits = key_bits
        self._server_kwargs = dict(server_kwargs or {})
        # Whole-world runs should not grow audit logs without bound; short
        # tests never come near this, and callers can override (None =
        # unlimited, the AgentServer default).
        self._server_kwargs.setdefault("audit_capacity", 100_000)
        # Convenience: a SupervisorConfig here puts every server under
        # resource supervision (equivalent to server_kwargs["supervision"]).
        if supervision is not None:
            self._server_kwargs.setdefault("supervision", supervision)
        # Self-healing control plane: heartbeat failure detection plus
        # checkpoint/re-homing on every server.  ``self_healing=True``
        # takes the defaults; either config can also be passed alone.
        self._self_healing = bool(
            self_healing
            or membership_config is not None
            or recovery_config is not None
        )
        if self_healing or membership_config is not None:
            from repro.server.membership import MembershipConfig

            self._server_kwargs.setdefault(
                "membership", membership_config or MembershipConfig()
            )
        if self_healing or recovery_config is not None:
            from repro.server.recovery import RecoveryConfig

            self._server_kwargs.setdefault(
                "recovery", recovery_config or RecoveryConfig()
            )
        # One metrics namespace over every server's ad-hoc counters
        # (registered lazily — reading happens at scrape time only).
        self.metrics = MetricsRegistry()
        self.tracer: Tracer | None = None
        self.collector: Any = None
        self.profiler: Any = None

        # Owner identity: the human whose agents these are.
        self.owner = URN.parse("urn:principal:umn.edu/owner")
        self.owner_keys = KeyPair.generate(make_rng(seed, "owner"), bits=key_bits)
        self.owner_certificate = self.ca.issue(str(self.owner), self.owner_keys.public)

        if remote_name_service:
            self._start_registry_node(key_bits)
        if replicated_name_service:
            self._start_replica_nodes(key_bits)
        for i in range(n_servers):
            self.add_server(
                f"urn:server:{authority.format(i=i)}/s{i}"
            )
        self._connect(topology, latency, bandwidth, loss_rate)
        # Membership runs over the connected topology: every server
        # watches every other, and the detectors/recovery tickers start
        # only once the links they heartbeat over exist.
        names = [s.name for s in self.servers]
        for server in self.servers:
            if server.membership is not None:
                server.membership.set_peers(
                    [n for n in names if n != server.name]
                )
                server.membership.start()
            if server.recovery is not None:
                server.recovery.start()
        if remote_name_service:
            # The registry node hangs off every server directly.
            for server in self.servers:
                self.network.connect(self.registry_node, server.name,
                                     latency=latency, bandwidth=bandwidth)
        if replicated_name_service:
            # Every replica hangs off every server (clients talk to any
            # replica directly), and same-shard replicas interconnect
            # (repair traffic).  Partition experiments cut these links.
            for node in self.ns_ring.nodes():
                for server in self.servers:
                    self.network.connect(node, server.name,
                                         latency=latency, bandwidth=bandwidth)
            for shard_id in self.ns_ring.shard_ids():
                group = self.ns_ring.replicas(shard_id)
                for i, a in enumerate(group):
                    for b in group[i + 1:]:
                        self.network.connect(a, b, latency=latency,
                                             bandwidth=bandwidth)
            if ns_anti_entropy is not None:
                for host in self.ns_hosts.values():
                    host.start_sweeps(ns_anti_entropy)

    # -- construction -------------------------------------------------------------

    def _secure_node(self, name: str, key_bits: int):
        """A bare secure host on a fresh network node (registry plumbing)."""
        from repro.net.secure_channel import SecureHost
        from repro.net.transport import Endpoint

        self.network.add_node(name)
        keys = KeyPair.generate(make_rng(self.seed, f"server:{name}"),
                                bits=key_bits)
        return SecureHost(
            endpoint=Endpoint(self.network, name),
            name=name,
            keys=keys,
            certificate=self.ca.issue(name, keys.public),
            trust_anchor=self.ca,
            clock=self.clock,
            rng=make_rng(self.seed, f"rng:{name}"),
        )

    def _start_registry_node(self, key_bits: int) -> None:
        from repro.naming.remote import NameServiceHost

        name = "urn:server:registry.net/ns"
        secure = self._secure_node(name, key_bits)
        NameServiceHost(secure, self.name_service)
        self.registry_node = name
        self._registry_secure = secure

    def _start_replica_nodes(self, key_bits: int) -> None:
        from repro.naming.replicated import DirectoryOracle, ReplicaNameHost
        from repro.naming.shard import HashRing

        n_shards, n_replicas = self._ns_shape
        shards = {
            f"shard{s}": tuple(
                f"urn:server:registry.net/ns{s}r{r}" for r in range(n_replicas)
            )
            for s in range(n_shards)
        }
        self.ns_ring = HashRing(shards)
        for shard_id, nodes in shards.items():
            for node in nodes:
                host = ReplicaNameHost(
                    self._secure_node(node, key_bits), self.ns_ring, shard_id,
                    timeout=self._ns_timeout,
                )
                self.ns_hosts[node] = host
                self.metrics.register_source(
                    "ns_replica", host.stats, node=node, shard=shard_id
                )
        self.name_service = DirectoryOracle(
            self.ns_ring, self.ns_hosts, self.clock
        )

    def ns_host(self, node: str):
        """The replica host serving directory node ``node``."""
        try:
            return self.ns_hosts[node]
        except KeyError:
            raise ReproError(f"no directory replica named {node!r}") from None

    def add_server(self, name: str, *, keys: KeyPair | None = None) -> AgentServer:
        """Add one server (``keys`` override serves red-team scenarios:
        a banned host re-registering under a new name keeps its keys)."""
        self.network.add_node(name)
        if keys is None:
            keys = KeyPair.generate(make_rng(self.seed, f"server:{name}"),
                                    bits=self._key_bits)
        server = AgentServer(
            name=name,
            kernel=self.kernel,
            network=self.network,
            trust_anchor=self.ca,
            keys=keys,
            certificate=self.ca.issue(name, keys.public),
            rng=make_rng(self.seed, f"rng:{name}"),
            name_service=self.name_service,
            **self._server_kwargs,
        )
        if self._remote_ns:
            from repro.naming.remote import RemoteNameService

            server.name_service = RemoteNameService(
                server.secure, self.registry_node
            )
        if self._replicated_ns:
            from repro.naming.replicated import ReplicatedNameClient

            write_quorum, read_quorum = self._ns_quorums
            breaker_threshold, breaker_reset = self._ns_breakers
            server.name_service = ReplicatedNameClient(
                server.secure,
                self.ns_ring,
                write_quorum=write_quorum,
                read_quorum=read_quorum,
                timeout=self._ns_timeout,
                stale_read_limit=self._ns_stale_read_limit,
                retry=self._ns_retry,
                retry_rng=make_rng(self.seed, f"nsretry:{name}"),
                breaker_threshold=breaker_threshold,
                breaker_reset=breaker_reset,
            )
            self.metrics.register_source(
                "ns_client", server.name_service.stats, server=name
            )
            # Mirror into the server's own telemetry unit so a federated
            # scrape sees the same keys the omniscient registry does.
            server.telemetry.register_source(
                "ns_client", server.name_service.stats
            )
        self.servers.append(server)
        self.metrics.register_source("server", server.stats, server=server.name)
        self.metrics.register_source(
            "endpoint", server.endpoint.stats, server=server.name
        )
        self.metrics.register_source(
            "secure", server.secure.stats, server=server.name
        )
        self.metrics.register_source(
            "audit", server.audit, server=server.name
        )
        if server.supervisor is not None:
            self.metrics.register_source(
                "supervisor", server.supervisor.stats, server=server.name
            )
        if server.integrity is not None:
            self.metrics.register_source(
                "integrity", server.integrity.stats, server=server.name
            )
        if server.membership is not None:
            self.metrics.register_source(
                "membership", server.membership.stats, server=server.name
            )
        if server.recovery is not None:
            self.metrics.register_source(
                "recovery", server.recovery.stats, server=server.name
            )
        return server

    def _connect(
        self, topology: str, latency: float, bandwidth: float, loss_rate: float
    ) -> None:
        names = [s.name for s in self.servers]
        kw = dict(latency=latency, bandwidth=bandwidth, loss_rate=loss_rate)
        if topology == "full":
            for i, a in enumerate(names):
                for b in names[i + 1 :]:
                    self.network.connect(a, b, **kw)
        elif topology == "star":
            for b in names[1:]:
                self.network.connect(names[0], b, **kw)
        elif topology == "line":
            for a, b in zip(names, names[1:]):
                self.network.connect(a, b, **kw)
        else:
            raise ValueError(f"unknown topology {topology!r}")

    @property
    def home(self) -> AgentServer:
        """By convention the first server is the owner's home site."""
        return self.servers[0]

    def server_named(self, name: str) -> AgentServer:
        for server in self.servers:
            if server.name == name:
                return server
        raise ReproError(f"no server named {name!r}")

    # -- credentials ------------------------------------------------------------------

    def credentials_for(
        self,
        rights: Rights,
        *,
        agent_local: str | None = None,
        lifetime: float = 1e6,
    ) -> DelegatedCredentials:
        """Mint owner-signed credentials for a new agent."""
        local = agent_local or self._agent_ids.next()
        cred = Credentials.issue(
            agent=URN.parse(f"urn:agent:umn.edu/owner/{local}"),
            owner=self.owner,
            creator=self.owner,
            owner_keys=self.owner_keys,
            owner_certificate=self.owner_certificate,
            rights=rights,
            now=self.clock.now(),
            lifetime=lifetime,
        )
        return DelegatedCredentials.wrap(cred)

    # -- launching ---------------------------------------------------------------------

    def launch(
        self,
        agent: Agent,
        rights: Rights,
        *,
        at: AgentServer | None = None,
        entry_method: str = "run",
        source: str = "",
        agent_local: str | None = None,
        attributes: dict[str, Any] | None = None,
        register_name: bool = True,
    ) -> AgentImage:
        """Credential, image and launch an agent instance.

        Trusted agents (``source=""``) must have their class registered
        with :func:`~repro.agents.agent.register_trusted_agent_class`.
        Returns the launched image (whose ``name`` tracks the agent).
        """
        server = at or self.home
        credentials = self.credentials_for(rights, agent_local=agent_local)
        attrs = dict(attributes or {})
        if register_name and self.name_service is not None:
            token = self.name_service.register(
                credentials.agent, server.name, {"owner": str(self.owner)}
            )
            attrs["ns_token"] = token
        image = capture_image(
            agent,
            credentials=credentials,
            entry_method=entry_method,
            home_site=server.name,
            source=source,
            attributes=attrs,
        )
        server.launch(image)
        return image

    def launch_source(
        self,
        source: str,
        class_name: str,
        rights: Rights,
        *,
        state: dict[str, Any] | None = None,
        at: AgentServer | None = None,
        entry_method: str = "run",
        agent_local: str | None = None,
        register_name: bool = True,
    ) -> AgentImage:
        """Launch an *untrusted* agent from shipped source code."""
        server = at or self.home
        credentials = self.credentials_for(rights, agent_local=agent_local)
        attrs: dict[str, Any] = {}
        if register_name and self.name_service is not None:
            token = self.name_service.register(
                credentials.agent, server.name, {"owner": str(self.owner)}
            )
            attrs["ns_token"] = token
        image = AgentImage(
            name=credentials.agent,
            credentials=credentials,
            class_name=class_name,
            source=source,
            state=dict(state or {}),
            entry_method=entry_method,
            home_site=server.name,
            attributes=attrs,
        )
        server.launch(image)
        return image

    def locate(self, agent: URN) -> str:
        """Where the name service believes the agent currently is."""
        return self.name_service.lookup(agent).location

    # -- adversity ---------------------------------------------------------------------

    def faults(self):
        """The world's fault injector (created on first use).

        Schedule link flaps, partitions, loss bursts and server crashes
        against this testbed's network/kernel, then :meth:`run`.
        """
        if self._faults is None:
            from repro.net.faults import FaultInjector

            self._faults = FaultInjector(self.kernel, self.network,
                                         seed=self.seed)
            self.metrics.register_source("faults", self._faults.stats)
        return self._faults

    # -- observability -----------------------------------------------------------------

    def start_tracing(self) -> FlightRecorder:
        """Install a kernel-clock tracer; returns its flight recorder.

        One tracer per testbed: calling this again re-installs the same
        tracer (spans accumulate across start/stop cycles).  Remember to
        :meth:`stop_tracing` — the switchboard is process-global.
        """
        if self.tracer is None:
            self.tracer = Tracer(clock=self.clock, service="testbed")
        _obs.install(tracer=self.tracer)
        return FlightRecorder(self.tracer)

    def stop_tracing(self) -> None:
        """Disable tracing hooks; metrics hooks (if on) stay on."""
        metrics = _obs.METRICS
        _obs.uninstall()
        if metrics is not None:
            _obs.install(metrics=metrics)

    def start_metrics(self) -> MetricsRegistry:
        """Install this world's registry so hook-fed metrics flow.

        Scraping absorbed per-server counters works without this — only
        the new first-class instruments (proxy latency histograms, deny
        counters) need the hooks live.
        """
        _obs.install(metrics=self.metrics)
        return self.metrics

    def scrape(self) -> dict[str, Any]:
        """Every metric in the world, flattened into one dict."""
        return self.metrics.scrape()

    def render_metrics(self) -> str:
        """The scrape as sorted ``key value`` text lines."""
        return self.metrics.render_text()

    # -- cluster telemetry (federated scrape / profiling / SLOs) -----------------------

    def telemetry_targets(self) -> list[str]:
        """Every node serving ``telemetry.scrape``: servers + directory replicas."""
        return [s.name for s in self.servers] + list(self.ns_hosts)

    def start_collector(
        self, period: float = 5.0, *, via: AgentServer | None = None
    ):
        """Start a kernel-scheduled federated scraper; returns the collector.

        The collector rides on ``via``'s secure host (default: home) and
        pulls every target each ``period`` of virtual time, as a daemon
        tick — it never keeps an otherwise-idle world alive.
        """
        from repro.obs.aggregate import TelemetryCollector

        if self.collector is not None:
            raise ReproError("collector already started")
        host = via or self.home
        self.collector = TelemetryCollector(
            host.secure,
            self.telemetry_targets(),
            local=host.telemetry,
        )
        self.collector.start(period)
        return self.collector

    def stop_collector(self) -> None:
        if self.collector is not None:
            self.collector.stop()

    def cluster_scrape(self) -> dict[str, Any]:
        """One synchronous federated scrape round, flattened like :meth:`scrape`.

        Must run inside kernel context (wrap in a SimThread / call from a
        running world).  Starts an ad-hoc collector on first use if
        :meth:`start_collector` was never called.
        """
        from repro.obs.aggregate import TelemetryCollector

        if self.collector is None:
            self.collector = TelemetryCollector(
                self.home.secure,
                self.telemetry_targets(),
                local=self.home.telemetry,
            )
        self.collector.scrape_round()
        return self.collector.scrape()

    def start_profiler(self, period: float = 0.001):
        """Attach a sampling profiler to this world's tracer (implies tracing)."""
        from repro.obs.profiler import SamplingProfiler

        recorder = self.start_tracing()
        if self.profiler is None:
            self.profiler = SamplingProfiler(
                self.tracer, self.kernel, period=period
            )
        self.profiler.start()
        return self.profiler

    def stop_profiler(self) -> None:
        if self.profiler is not None:
            self.profiler.stop()

    def slo_monitor(self):
        """An :class:`~repro.obs.slo.SLOMonitor` pre-wired with this world's
        conservation laws (agent conservation, audit drops; replica
        divergence when the directory is replicated)."""
        from repro.obs.slo import (
            SLOMonitor,
            agent_conservation_residual,
            audit_drop_residual,
            healed_conservation_residual,
            replica_divergence_residual,
        )

        monitor = SLOMonitor(self.clock)
        if self._self_healing:
            # With crashes/drains in play the base law legitimately goes
            # positive; the healed variant nets out recorded removals.
            monitor.add_invariant(
                "healed_conservation",
                healed_conservation_residual(self.servers),
                detail="an agent was lost or double-admitted through healing",
            )
        else:
            monitor.add_invariant(
                "agent_conservation",
                agent_conservation_residual(self.servers),
                detail="hosted != transfers_out + completed + residents",
            )
        monitor.add_invariant(
            "audit_drops",
            audit_drop_residual(self.servers),
            detail="ring-buffer evictions lost security decisions",
        )
        if self._replicated_ns:
            monitor.add_invariant(
                "replica_divergence",
                replica_divergence_residual(self.name_service),
                detail="directory replicas disagree",
            )
        return monitor

    # -- running -----------------------------------------------------------------------

    def run(self, until: float | None = None, **kw) -> float:
        return self.kernel.run(until=until, **kw)

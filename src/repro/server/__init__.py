"""The agent server (Fig. 1) and its admission control.

- :mod:`repro.server.admission` — validation applied to every arriving
  image: credential verification against the server's trust anchors,
  code verification, size limits.
- :mod:`repro.server.agent_server` — :class:`AgentServer`, wiring the
  pictured components: agent environment, domain database, resource
  registry, agent transfer, security manager, secure channels.
- :mod:`repro.server.testbed` — a convenience world-builder (kernel +
  network + CA + name service + N servers) used by examples, tests and
  benchmarks.
"""

from repro.server.admission import AdmissionPolicy
from repro.server.agent_server import AgentServer
from repro.server.testbed import Testbed

__all__ = ["AdmissionPolicy", "AgentServer", "Testbed"]

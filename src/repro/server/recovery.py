"""Agent checkpointing and re-homing: the self-healing recovery plane.

PR 2's departure journal protects agents the *sender* knows are in
flight; nothing protects an agent a remote server is currently hosting
when that server fail-stops.  This module closes the gap with an
escrow-at-home scheme:

* Every admission (and a periodic kernel daemon tick while the agent is
  resident — skipped while the captured state's digest matches what the
  home site already holds, so a parked resident costs nothing between
  hops) the hosting server builds an **escrow image** — a sealed
  *virtual departure* from itself back to the agent's home site: the
  current image with this server appended to the trace, the live
  captured state, and (when integrity is on) an appraisal link sealed
  for the hop ``here → home``.  The escrow is pushed one-way to the home
  site over the authenticated ``cluster.checkpoint`` channel and stored
  newest-wins in a :class:`~repro.server.journal.CheckpointStore`.
* When the home site's failure detector confirms a peer dead, the
  :class:`RecoveryCoordinator` **re-homes** every agent checkpointed at
  that peer: it picks a load-aware survivor (gossiped load score =
  residents + in-flight departures + recovery queue depth) from the
  agent's *committed itinerary* (plus the home site itself — always a
  legal fallback, and the only choice `verify_return` accepts outside
  the plan), appends its own hop to the escrow, seals the new tip, and
  offers it through the ordinary exactly-once transfer path.  The
  relaunched agent's own ``transfer_failed`` handling then routes it
  around the dead stop.
* A checkpoint is retired when its agent completes or is terminated
  (accepted only from the server the checkpoint places the agent at),
  and superseded by sequence number when the agent hops onward — a
  stale push can never regress the stored image, and a death confirmed
  *after* the agent already left the dead host finds no checkpoint
  located there.

Duplicate-suppression is belt and braces: only the (unique) home site
re-homes; the replicated directory is consulted so an agent the
directory places elsewhere is skipped as stale; completion reports and
the home domain database veto resurrection of finished agents; and the
re-offer itself rides the PR 2 dedup machinery.

A *flapped* peer (crash + restart faster than the confirm-death
threshold) never triggers the confirmed-dead path, yet its residents
died with the crash.  The membership plane's rebirth callback
(:meth:`~repro.server.membership.Membership.on_new_incarnation`)
routes such peers to :meth:`RecoveryCoordinator.handle_peer_restarted`,
which probes the reborn host per checkpoint before re-homing — a host
that still accounts for the agent (resident, or journaled in-flight)
vetoes the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.agents.integrity import COMMITMENT_ATTRIBUTE
from repro.agents.itinerary import ItineraryCommitment
from repro.agents.transfer import AgentImage
from repro.errors import (
    NamingError,
    NetworkError,
    ReproError,
    UnknownNameError,
)
from repro.naming.urn import URN
from repro.sim.monitor import Counter
from repro.util.serialization import canonical_digest, decode, encode

__all__ = ["CHECKPOINT_APP_KIND", "RecoveryConfig", "RecoveryCoordinator"]

# The one-way secure-channel application kind checkpoint traffic rides.
CHECKPOINT_APP_KIND = "cluster.checkpoint"


@dataclass(frozen=True, slots=True)
class RecoveryConfig:
    """Recovery-plane knobs.

    ``checkpoint_period`` is the daemon-tick refresh interval for live
    residents (``None`` disables the tick — checkpoints then happen only
    at hop boundaries, i.e. on admission).  ``checkpoint_timeout``
    bounds the secure-channel handshake for a push to an unreachable
    home site.
    """

    checkpoint_period: float | None = 5.0
    checkpoint_timeout: float = 5.0


class RecoveryCoordinator:
    """One server's checkpoint pusher + (as a home site) re-homer."""

    def __init__(self, server: Any, config: RecoveryConfig | None = None) -> None:
        self.server = server
        self.config = config or RecoveryConfig()
        self.kernel = server.kernel
        self.clock = server.clock
        self.stats = Counter()
        self.store = server.checkpoints  # the home-side CheckpointStore
        self._ticker = None
        self._push_thread = None
        # Escrows built in kernel context, drained by one aux sender.
        self._outbox: list[tuple[str, str | None, bytes]] = []
        # Last escrowed state digest per resident: the refresh tick
        # skips an agent whose state the home site already holds, so a
        # parked (dwelling) resident costs nothing between hops.
        self._fresh: dict[str, bytes] = {}
        self._rehoming = 0
        # (agent, dead host, new host, confirmed_at, relaunched_at) per
        # successful re-home — detection-to-relaunch latency reporting.
        self.rehome_log: list[dict[str, Any]] = []
        server.secure.bind_app(CHECKPOINT_APP_KIND, self._on_checkpoint)
        telemetry = getattr(server, "telemetry", None)
        if telemetry is not None:
            telemetry.register_source("recovery", self.stats)
            telemetry.gauge(
                "recovery.checkpoints", fn=lambda: float(len(self.store))
            )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self.config.checkpoint_period is None:
            return
        if self._ticker is None or self._ticker.cancelled:
            self._ticker = self.kernel.every(
                self.config.checkpoint_period, self._checkpoint_tick, daemon=True
            )

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.cancel()
            self._ticker = None
        self._outbox.clear()
        self._fresh.clear()

    def queue_depth(self) -> int:
        """Pending recovery work (feeds the gossiped load score)."""
        return len(self._outbox) + self._rehoming

    # -- checkpoint capture (hosting side) ---------------------------------------

    def escrow_image(self, image: AgentImage, state: dict[str, Any]) -> AgentImage:
        """Build the sealed virtual departure ``here → home`` for ``image``."""
        server = self.server
        escrow = image.with_hop(server.name).with_state(state, image.entry_method)
        if server.integrity is not None:
            escrow = server.integrity.seal_departure(escrow, image.home_site)
        return escrow

    def on_admission(self, image: AgentImage) -> None:
        """Checkpoint a freshly admitted resident (hop boundary).

        Runs in kernel event context (the arrival path): the escrow is
        built here, the network push is deferred to the aux sender.
        """
        self._checkpoint(image, image.state)

    def _checkpoint(self, image: AgentImage, state: dict[str, Any]) -> None:
        server = self.server
        if image.home_site == server.name:
            # An escrow stored in the same failure domain as the
            # resident it would recover protects nothing — it dies with
            # this host.  A home-hosted resident is covered by the
            # departure journal the moment it leaves; until then a
            # checkpoint adds only its sealing cost.
            self.stats.add("checkpoints_local_skipped")
            return
        key = str(image.name)
        escrow = self.escrow_image(image, state)
        seq = (len(escrow.trace), self.clock.now())
        body = encode(
            {
                "op": "checkpoint",
                "image": escrow,
                "location": server.name,
                "seq": list(seq),
            }
        )
        self._outbox.append((image.home_site, key, body))
        self.stats.add("checkpoints_queued")
        self._fresh[key] = canonical_digest(state)
        self._kick_sender()

    def on_resident_gone(self, image: AgentImage, status: str) -> None:
        """A resident finished (completed/terminated): retire its escrow."""
        server = self.server
        self._fresh.pop(str(image.name), None)
        if status == "departed":
            return  # the next host's admission checkpoint supersedes
        if image.home_site == server.name:
            if self.store.retire(str(image.name)) is not None:
                self.stats.add("retires_local")
            return
        body = encode(
            {
                "op": "retire",
                "agent": str(image.name),
                "location": server.name,
            }
        )
        self._outbox.append((image.home_site, None, body))
        self.stats.add("retires_queued")
        self._kick_sender()

    def _checkpoint_tick(self) -> None:
        """Daemon tick: refresh escrows for live residents.

        Kernel context between events — the cooperative scheduler
        guarantees every resident is parked at a blocking point, so
        ``capture_state`` sees a consistent snapshot.
        """
        server = self.server
        for domain_id, image in list(server._resident_images.items()):
            if image.home_site == server.name:
                continue  # nothing to escrow: see _checkpoint
            instance = server._instances.get(domain_id)
            if instance is None or domain_id not in server._threads:
                continue
            try:
                state = instance.capture_state()
            except ReproError:
                continue
            if self._fresh.get(str(image.name)) == canonical_digest(state):
                # The home site already holds exactly this state (the
                # admission push, or an earlier tick): nothing to seal,
                # nothing to send.
                self.stats.add("checkpoints_skipped_fresh")
                continue
            self._checkpoint(image, state)
            self.stats.add("checkpoints_refreshed")

    def _kick_sender(self) -> None:
        if self._push_thread is not None and self._push_thread.is_alive:
            return
        if not self._outbox:
            return
        self._push_thread = self.server._spawn_aux(
            self._drain_outbox, name=f"{self.server.name}/checkpoint-push"
        )

    def _drain_outbox(self) -> None:
        server = self.server
        while self._outbox:
            home, key, body = self._outbox.pop(0)
            try:
                channel = server.secure.connect(
                    home, timeout=self.config.checkpoint_timeout
                )
                channel.send(CHECKPOINT_APP_KIND, body)
                self.stats.add("pushes_sent")
            except (NetworkError, ReproError):
                # Lossy by design: the periodic tick re-pushes soon, and
                # a lost retire is vetoed at re-home time anyway.  The
                # lost push must not count as fresh, or the tick would
                # keep skipping what home never received.
                if key is not None:
                    self._fresh.pop(key, None)
                self.stats.add("pushes_failed")
                server.secure.drop_channel(home)

    # -- checkpoint receipt (home side, kernel event context) ---------------------

    def _on_checkpoint(self, peer: str, body: bytes) -> bytes | None:
        try:
            message = decode(body)
            op = message["op"]
        except (ReproError, KeyError, TypeError):
            self.stats.add("pushes_malformed")
            return None
        if op == "retire":
            self._accept_retire(peer, message)
            return None
        if op == "checkpoint":
            self._accept_checkpoint(peer, message)
            return None
        if op == "probe":
            return self._answer_probe(message)
        self.stats.add("pushes_malformed")
        return None

    def _answer_probe(self, message: dict) -> bytes:
        """Do *we* still account for this agent?  (Hosting-side answer.)

        ``resident`` — alive here right now; ``journaled`` — in flight,
        our own restart recovery owns its delivery; ``unknown`` — we
        hold nothing (a crashed resident: safe to re-home).
        """
        agent = message.get("agent")
        self.stats.add("probes_answered")
        server = self.server
        if any(
            str(image.name) == agent
            for image in server._resident_images.values()
        ):
            state = "resident"
        elif any(
            str(record.image.name) == agent
            for record in server._journal.pending()
        ):
            state = "journaled"
        else:
            state = "unknown"
        return encode({"state": state})

    def _accept_retire(self, peer: str, message: dict) -> None:
        agent = message.get("agent")
        if not isinstance(agent, str):
            self.stats.add("pushes_malformed")
            return
        checkpoint = self.store.get(agent)
        if checkpoint is None:
            return
        if checkpoint.location != peer:
            # Only the server the checkpoint places the agent at may
            # retire it — a lagging (or lying) third party cannot erase
            # another host's escrow.
            self.stats.add("retires_refused")
            self.server.audit.record(
                peer, "recovery.retire", agent, False,
                f"checkpoint is located at {checkpoint.location}",
            )
            return
        self.store.retire(agent)
        self.stats.add("retires_accepted")

    def _accept_checkpoint(self, peer: str, message: dict) -> None:
        server = self.server
        image = message.get("image")
        location = message.get("location")
        seq = message.get("seq")
        if (
            not isinstance(image, AgentImage)
            or not isinstance(location, str)
            or not isinstance(seq, list)
            or len(seq) != 2
        ):
            self.stats.add("pushes_malformed")
            return
        if location != peer or image.home_site != server.name:
            # Escrow for someone else's agent, or a host speaking for a
            # third party: refused and audited.
            self.stats.add("checkpoints_rejected")
            server.audit.record(
                peer, "recovery.checkpoint", str(image.name), False,
                "pusher is not the hosting site or this is not the home site",
            )
            return
        if not image.trace or image.trace[-1] != peer:
            self.stats.add("checkpoints_rejected")
            server.audit.record(
                peer, "recovery.checkpoint", str(image.name), False,
                "escrow trace does not end at the pushing host",
            )
            return
        if server.integrity is not None:
            try:
                # Full arrival appraisal of the virtual departure — the
                # tip must be sealed ``peer → here`` over exactly this
                # state.  The tip is *not* remembered: an escrow is not
                # an admission, and the refreshed push of an unchanged
                # state must not read as a replay.
                server.integrity.verify_arrival(image, peer)
            except ReproError as exc:
                self.stats.add("checkpoints_rejected")
                server.audit.record(
                    peer, "recovery.checkpoint", str(image.name), False,
                    f"escrow failed appraisal: {exc}",
                )
                return
        try:
            seq_key = (int(seq[0]), float(seq[1]))
        except (TypeError, ValueError):
            self.stats.add("pushes_malformed")
            return
        if self.store.put(
            str(image.name), image, location, seq_key, self.clock.now()
        ):
            self.stats.add("checkpoints_accepted")

    # -- re-homing (home side) -----------------------------------------------------

    def handle_confirmed_dead(self, peer: str, incarnation: int) -> None:
        """Failure-detector callback (kernel context): re-home off ``peer``."""
        orphans = self.store.at(peer)
        if not orphans:
            return
        self._rehoming += len(orphans)
        confirmed_at = self.clock.now()
        self.server._spawn_aux(
            lambda: self._rehome_all(peer, orphans, confirmed_at),
            name=f"{self.server.name}/rehome/{peer}",
        )

    def _rehome_all(self, dead: str, orphans: list, confirmed_at: float) -> None:
        for checkpoint in orphans:
            try:
                self._rehome_one(dead, checkpoint, confirmed_at)
            finally:
                self._rehoming = max(0, self._rehoming - 1)

    def handle_peer_restarted(self, peer: str, incarnation: int) -> None:
        """Rebirth callback (kernel context): sweep a flapped peer.

        A crash+restart cycle faster than the detector's confirm-death
        threshold kills the peer's residents but never fires
        :meth:`handle_confirmed_dead` — flap safety holds the view at
        *suspected* until the new incarnation's heartbeat clears it.
        Without this sweep those agents would be lost forever.  Unlike
        the confirmed-dead path the peer is *alive* again, so each
        checkpoint is probed first: the restarted host may still be
        running the agent (our checkpoint was stale) or holding it in
        its recovered departure journal (its own restart recovery owns
        delivery).  Only a ``unknown`` answer — the host accounts for
        nothing — permits re-homing, which closes the race where home
        and the reborn host would otherwise both relaunch the same
        agent.
        """
        orphans = self.store.at(peer)
        if not orphans:
            return
        self._rehoming += len(orphans)
        noticed_at = self.clock.now()
        self.server._spawn_aux(
            lambda: self._rehome_after_restart(peer, orphans, noticed_at),
            name=f"{self.server.name}/rehome-flap/{peer}",
        )

    def _rehome_after_restart(
        self, peer: str, orphans: list, noticed_at: float
    ) -> None:
        server = self.server
        for checkpoint in orphans:
            try:
                try:
                    channel = server.secure.connect(
                        peer, timeout=self.config.checkpoint_timeout
                    )
                    reply = decode(
                        channel.call(
                            CHECKPOINT_APP_KIND,
                            encode({"op": "probe", "agent": checkpoint.agent}),
                            timeout=self.config.checkpoint_timeout,
                        )
                    )
                    state = reply.get("state")
                except (NetworkError, ReproError):
                    # Unreachable again already: leave the checkpoint in
                    # escrow — the detector will confirm death and the
                    # ordinary path takes over.
                    self.stats.add("probes_failed")
                    server.secure.drop_channel(peer)
                    continue
                if state == "resident":
                    self.stats.add("rehomes_vetoed_resident")
                    continue
                if state == "journaled":
                    self.stats.add("rehomes_vetoed_journaled")
                    continue
                self._rehome_one(peer, checkpoint, noticed_at)
            finally:
                self._rehoming = max(0, self._rehoming - 1)

    def _rehome_one(self, dead: str, checkpoint, confirmed_at: float) -> None:
        server = self.server
        agent = checkpoint.agent
        current = self.store.get(agent)
        if current is None or current.seq != checkpoint.seq or current.location != dead:
            self.stats.add("rehomes_superseded")
            return
        if self._already_finished(agent):
            self.store.retire(agent)
            self.stats.add("rehomes_vetoed_finished")
            return
        if not self._directory_confirms(checkpoint.image, dead):
            self.stats.add("rehomes_vetoed_stale")
            return
        self.store.retire(agent)
        image = checkpoint.image
        placed = self._place(image, dead, confirmed_at)
        if placed:
            return
        # Every survivor refused or is unreachable: the agent runs here.
        try:
            server.admission.validate(image)
            server.stats.add("agents_rehomed")
            self.stats.add("rehomes_local")
            self.rehome_log.append(
                {
                    "agent": agent,
                    "dead": dead,
                    "target": server.name,
                    "confirmed_at": confirmed_at,
                    "relaunched_at": self.clock.now(),
                }
            )
            server.audit.record(
                server.name, "recovery.rehome", agent, True,
                f"relaunched at home after {dead} died",
            )
            server._start_resident(image)
        except ReproError as exc:
            self.stats.add("rehomes_stranded")
            server.audit.record(
                server.name, "recovery.rehome", agent, False,
                f"unrecoverable after {dead} died: {exc}",
            )
            self._tombstone(image)

    def _already_finished(self, agent: str) -> bool:
        """Has the home site already seen this agent finish?"""
        server = self.server
        try:
            records = server.domain_db.records_of(URN.parse(agent))
        except ReproError:
            records = []
        if any(r.status == "completed" for r in records):
            return True

        def is_bill(payload: Any) -> bool:
            return isinstance(payload, dict) and payload.get("type") == "bill"

        return any(
            report.get("agent") == agent and not is_bill(report.get("payload"))
            for report in server.reports
        )

    def _directory_confirms(self, image: AgentImage, dead: str) -> bool:
        """Best-effort directory veto: skip if the agent moved on.

        The directory is updated at every admission *before* the escrow
        push, so it is at least as fresh as any checkpoint — if it
        places the agent anywhere but the dead host, a newer residency
        exists and this checkpoint is stale.  An unreachable directory
        is not a veto (availability over precision; the transfer-id
        dedup and finished-agent checks still hold the line).
        """
        name_service = self.server.name_service
        if name_service is None:
            return True
        try:
            record = name_service.lookup(image.name)
        except UnknownNameError:
            # Unregistered: the owner reclaimed the name — do not raise
            # the dead.
            return False
        except (NamingError, NetworkError, ReproError):
            return True
        location = getattr(record, "location", None)
        return location is None or location == dead

    def pick_targets(self, image: AgentImage, exclude: set[str]) -> list[str]:
        """Load-aware placement: planned stops, best survivor first.

        Candidates come from the committed itinerary (any other choice
        would be rejected by the home-side ``verify_return`` appraisal
        when the tour ends).  Confirmed-dead and draining hosts are
        filtered on the local membership view; survivors are ordered by
        the gossiped load score, name as the deterministic tie-break.
        """
        commitment = image.attributes.get(COMMITMENT_ATTRIBUTE)
        stops: list[str] = []
        if isinstance(commitment, ItineraryCommitment):
            for stop in commitment.stops:
                stop_server = stop[0] if isinstance(stop, (tuple, list)) else stop
                if isinstance(stop_server, str) and stop_server not in stops:
                    stops.append(stop_server)
        membership = getattr(self.server, "membership", None)
        candidates = []
        for stop_server in stops:
            if stop_server in exclude or stop_server == self.server.name:
                continue
            if membership is not None:
                if not membership.is_alive(stop_server):
                    continue
                if membership.is_draining(stop_server):
                    continue
            candidates.append(stop_server)
        load = membership.load_of if membership is not None else (lambda _n: 0.0)
        return sorted(candidates, key=lambda name: (load(name), name))

    def _place(
        self, image: AgentImage, dead: str, confirmed_at: float
    ) -> bool:
        """Offer the escrow to survivors; True once somebody accepted."""
        server = self.server
        targets = self.pick_targets(image, exclude={dead})
        if not targets:
            return False
        # Home becomes a relay hop: its own link in the chain lets the
        # survivor's arrival appraisal pass (tip origin == sender).
        relayed = image.with_hop(server.name)
        for target in targets:
            outgoing = relayed
            if server.integrity is not None:
                outgoing = server.integrity.seal_departure(outgoing, target)
            outgoing = outgoing.with_attributes(
                transfer_id=server._transfer_ids.next(), rehomed=True
            )
            self.stats.add("rehome_offers")
            try:
                reply = server._offer_image(outgoing, target)
            except ReproError:
                self.stats.add("rehome_offers_failed")
                continue
            if reply.get("status") != "accepted":
                self.stats.add("rehome_offers_refused")
                continue
            server.stats.add("agents_rehomed")
            self.stats.add("rehomes_placed")
            self.rehome_log.append(
                {
                    "agent": str(image.name),
                    "dead": dead,
                    "target": target,
                    "confirmed_at": confirmed_at,
                    "relaunched_at": self.clock.now(),
                }
            )
            server.audit.record(
                server.name, "recovery.rehome", str(image.name), True,
                f"re-homed to {target} after {dead} died",
            )
            return True
        return False

    def _tombstone(self, image: AgentImage) -> None:
        """Reclaim the directory entry of an unrecoverable agent."""
        name_service = self.server.name_service
        token = image.attributes.get("ns_token")
        if name_service is None or not token:
            return
        try:
            name_service.unregister(image.name, token)
            self.stats.add("tombstones")
        except (NamingError, UnknownNameError, NetworkError, ReproError):
            self.stats.add("tombstones_failed")

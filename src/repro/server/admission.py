"""Admission control: what a server checks before hosting an agent.

Section 5.2: "When a server receives an agent, it uses these credentials
to validate the authenticity of the agent, and based on the agent's
identity and delegated rights, it can grant access privileges for its
local resources."

Checks, in order (cheapest first, so junk is rejected early):

1. structural sanity, attribute whitelist and image size
   (resource-consumption defence);
2. the agent name is an agent URN and matches the credentials;
3. credential chain verification against the server's trust anchor
   (owner certificate → CA, signature, expiry, every delegation link);
4. for arrivals from an authenticated peer, with an
   :class:`~repro.agents.integrity.IntegrityAuthority` attached: the
   hash-chained appraisal record (and, at the agent's home site, the
   itinerary commitment) — tampered state, forged travel history and
   replayed images are refused here;
5. for untrusted code: the source passes the code verifier.

A refusal raises a :class:`SecurityException` subclass naming the check.

Admission is also where an agent's protection **ring** is assigned (the
trust-tier classification of ``repro.core.token``): a validated agent is
ring 1 by default, an explicitly trusted launcher's agents may be placed
in ring 0, and agents carrying their own code in ring 2.  Rings are an
opt-in :class:`RingPolicy` — a server without one runs everything at
ring 1, which is byte-for-byte the pre-ring behavior.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.transfer import DEFAULT_MAX_IMAGE_BYTES, AgentImage
from repro.core.token import RING_TRUSTED, RING_UNTRUSTED, RING_VERIFIED
from repro.credentials.cache import CredentialVerificationCache
from repro.credentials.rights import compiled_matcher
from repro.crypto.trust import TrustAnchor
from repro.errors import CodeVerificationError, CredentialError, TransferError
from repro.obs import runtime as _obs
from repro.sandbox.verifier import VerifierPolicy, verify_source
from repro.util.clock import Clock

__all__ = ["AdmissionPolicy", "RingPolicy"]


@dataclass(frozen=True, slots=True)
class RingPolicy:
    """How a server maps admitted agents onto protection rings.

    Classification runs *after* credential verification, so the owner
    and agent names it matches on are authenticated.  Rules, most
    trusted first:

    1. owner or agent URN matches a ``trusted_*`` glob → ring 0;
    2. owner matches an ``untrusted_owners`` glob, or the image carries
       its own code (``code_is_untrusted``) → ring 2;
    3. otherwise → :attr:`default` (ring 1).

    A trusted match wins over an untrusted one: the launcher's own
    agents stay ring 0 even when they carry code — the launcher already
    vouches for that code with its signature.
    """

    trusted_owners: tuple[str, ...] = ()  # globs over the owner URN
    trusted_agents: tuple[str, ...] = ()  # globs over the agent URN
    untrusted_owners: tuple[str, ...] = ()
    code_is_untrusted: bool = True  # carried code ⇒ ring 2
    default: int = RING_VERIFIED

    def classify(self, image: AgentImage) -> int:
        owner = str(image.credentials.owner)
        agent = str(image.credentials.agent)
        for pattern in self.trusted_owners:
            if compiled_matcher(pattern)(owner) is not None:
                return RING_TRUSTED
        for pattern in self.trusted_agents:
            if compiled_matcher(pattern)(agent) is not None:
                return RING_TRUSTED
        for pattern in self.untrusted_owners:
            if compiled_matcher(pattern)(owner) is not None:
                return RING_UNTRUSTED
        if self.code_is_untrusted and not image.is_trusted_code:
            return RING_UNTRUSTED
        return self.default


class AdmissionPolicy:
    """One server's arrival checks."""

    def __init__(
        self,
        trust_anchor: TrustAnchor,
        clock: Clock,
        *,
        verifier_policy: VerifierPolicy | None = None,
        max_image_bytes: int = DEFAULT_MAX_IMAGE_BYTES,
        accept_untrusted_code: bool = True,
        max_trace_length: int = 64,
        credential_cache: CredentialVerificationCache | None = None,
        ring_policy: RingPolicy | None = None,
    ) -> None:
        self.trust_anchor = trust_anchor
        self.clock = clock
        self.verifier_policy = verifier_policy or VerifierPolicy()
        self.max_image_bytes = max_image_bytes
        self.accept_untrusted_code = accept_untrusted_code
        # Hop limit: stops runaway/looping agents from bouncing between
        # servers forever (a resource-consumption attack on the federation).
        self.max_trace_length = max_trace_length
        # An agent chain verified once on this server (signatures + chain
        # structure) is not RSA-verified again on its next arrival; only
        # the time-dependent checks replay.  See repro.credentials.cache.
        self.credential_cache = (
            credential_cache
            if credential_cache is not None
            else CredentialVerificationCache()
        )
        # Opt-in trust tiers; None = everyone is ring 1 (uniform mediation).
        self.ring_policy = ring_policy
        # The server's IntegrityAuthority, attached by AgentServer when
        # appraisal is on.  None = chain checks are skipped (pre-integrity
        # behavior; local launches always skip them via peer=None).
        self.integrity = None

    def classify_ring(self, image: AgentImage) -> int:
        """The protection ring for an already-validated image."""
        if self.ring_policy is None:
            return RING_VERIFIED
        ring = self.ring_policy.classify(image)
        if _obs.METRICS_ON:
            _obs.METRICS.inc("admission_ring_assigned", ring=f"ring{ring}")
        return ring

    def validate(
        self,
        image: AgentImage,
        wire_size: int | None = None,
        *,
        peer: str | None = None,
    ) -> None:
        """Raise if the image must not be hosted.

        ``peer`` is the authenticated sender for network arrivals (the
        transfer handler passes it); local launches leave it None, which
        skips the peer-bound appraisal-chain checks.

        Traced as ``admission.validate``; a refusal closes the span with
        status ``error`` naming the failed check's exception.
        """
        if _obs.TRACING:
            with _obs.TRACER.span(
                "admission.validate",
                agent=str(image.name),
                hops=len(image.trace),
            ):
                self._validate(image, wire_size, peer)
            return
        self._validate(image, wire_size, peer)

    def _validate(
        self, image: AgentImage, wire_size: int | None, peer: str | None = None
    ) -> None:
        size = wire_size if wire_size is not None else image.wire_size()
        if size > self.max_image_bytes:
            raise TransferError(
                f"agent image of {size} bytes exceeds limit {self.max_image_bytes}"
            )
        if len(image.trace) >= self.max_trace_length:
            raise TransferError(
                f"agent exceeded the {self.max_trace_length}-hop limit"
            )
        if image.name.kind != "agent":
            raise CredentialError(f"{image.name} is not an agent name")
        if image.credentials.agent != image.name:
            raise CredentialError(
                f"image names {image.name} but credentials bind {image.credentials.agent}"
            )
        if not image.class_name.isidentifier():
            raise TransferError(f"invalid class name {image.class_name!r}")
        if not image.entry_method.isidentifier() or image.entry_method.startswith("_"):
            raise TransferError(f"invalid entry method {image.entry_method!r}")
        # Attributes (and the transfer id keying the dedup table within
        # them) are attacker-controlled wire input: whitelist their shape
        # before anything downstream touches them.
        AgentImage.from_attributes(image.attributes)
        self.credential_cache.verify(
            image.credentials, self.trust_anchor, self.clock.now()
        )
        if self.integrity is not None and peer is not None:
            self.integrity.verify_arrival(image, peer)
            if image.home_site == self.integrity.name:
                # The home server re-appraises the whole tour on return.
                self.integrity.verify_return(image, peer)
        if not image.is_trusted_code:
            if not self.accept_untrusted_code:
                raise CodeVerificationError(
                    "this server does not accept agents carrying code"
                )
            verify_source(image.source, self.verifier_policy)

"""Admission control: what a server checks before hosting an agent.

Section 5.2: "When a server receives an agent, it uses these credentials
to validate the authenticity of the agent, and based on the agent's
identity and delegated rights, it can grant access privileges for its
local resources."

Checks, in order (cheapest first, so junk is rejected early):

1. structural sanity and image size (resource-consumption defence);
2. the agent name is an agent URN and matches the credentials;
3. credential chain verification against the server's trust anchor
   (owner certificate → CA, signature, expiry, every delegation link);
4. for untrusted code: the source passes the code verifier.

A refusal raises a :class:`SecurityException` subclass naming the check.
"""

from __future__ import annotations

from repro.agents.transfer import DEFAULT_MAX_IMAGE_BYTES, AgentImage
from repro.credentials.cache import CredentialVerificationCache
from repro.crypto.trust import TrustAnchor
from repro.errors import CodeVerificationError, CredentialError, TransferError
from repro.obs import runtime as _obs
from repro.sandbox.verifier import VerifierPolicy, verify_source
from repro.util.clock import Clock

__all__ = ["AdmissionPolicy"]


class AdmissionPolicy:
    """One server's arrival checks."""

    def __init__(
        self,
        trust_anchor: TrustAnchor,
        clock: Clock,
        *,
        verifier_policy: VerifierPolicy | None = None,
        max_image_bytes: int = DEFAULT_MAX_IMAGE_BYTES,
        accept_untrusted_code: bool = True,
        max_trace_length: int = 64,
        credential_cache: CredentialVerificationCache | None = None,
    ) -> None:
        self.trust_anchor = trust_anchor
        self.clock = clock
        self.verifier_policy = verifier_policy or VerifierPolicy()
        self.max_image_bytes = max_image_bytes
        self.accept_untrusted_code = accept_untrusted_code
        # Hop limit: stops runaway/looping agents from bouncing between
        # servers forever (a resource-consumption attack on the federation).
        self.max_trace_length = max_trace_length
        # An agent chain verified once on this server (signatures + chain
        # structure) is not RSA-verified again on its next arrival; only
        # the time-dependent checks replay.  See repro.credentials.cache.
        self.credential_cache = (
            credential_cache
            if credential_cache is not None
            else CredentialVerificationCache()
        )

    def validate(self, image: AgentImage, wire_size: int | None = None) -> None:
        """Raise if the image must not be hosted.

        Traced as ``admission.validate``; a refusal closes the span with
        status ``error`` naming the failed check's exception.
        """
        if _obs.TRACING:
            with _obs.TRACER.span(
                "admission.validate",
                agent=str(image.name),
                hops=len(image.trace),
            ):
                self._validate(image, wire_size)
            return
        self._validate(image, wire_size)

    def _validate(self, image: AgentImage, wire_size: int | None) -> None:
        size = wire_size if wire_size is not None else image.wire_size()
        if size > self.max_image_bytes:
            raise TransferError(
                f"agent image of {size} bytes exceeds limit {self.max_image_bytes}"
            )
        if len(image.trace) >= self.max_trace_length:
            raise TransferError(
                f"agent exceeded the {self.max_trace_length}-hop limit"
            )
        if image.name.kind != "agent":
            raise CredentialError(f"{image.name} is not an agent name")
        if image.credentials.agent != image.name:
            raise CredentialError(
                f"image names {image.name} but credentials bind {image.credentials.agent}"
            )
        if not image.class_name.isidentifier():
            raise TransferError(f"invalid class name {image.class_name!r}")
        if not image.entry_method.isidentifier() or image.entry_method.startswith("_"):
            raise TransferError(f"invalid entry method {image.entry_method!r}")
        if not isinstance(image.attributes, dict):
            raise TransferError("agent image attributes must be a mapping")
        # The transfer id keys the receiver's dedup table; it is
        # attacker-controlled wire input, so bound its shape here.
        tid = image.attributes.get("transfer_id")
        if tid is not None and (
            not isinstance(tid, str) or not (0 < len(tid) <= 128)
        ):
            raise TransferError(f"invalid transfer id {tid!r}")
        self.credential_cache.verify(
            image.credentials, self.trust_anchor, self.clock.now()
        )
        if not image.is_trusted_code:
            if not self.accept_untrusted_code:
                raise CodeVerificationError(
                    "this server does not accept agents carrying code"
                )
            verify_source(image.source, self.verifier_policy)

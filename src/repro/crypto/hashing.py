"""SHA-256 conveniences used throughout the crypto layer."""

from __future__ import annotations

import hashlib

__all__ = ["sha256", "sha256_hex", "hash_to_int", "derive_key"]

DIGEST_SIZE = 32


def sha256(*parts: bytes) -> bytes:
    """SHA-256 over the concatenation of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.digest()


def sha256_hex(*parts: bytes) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.hexdigest()


def hash_to_int(*parts: bytes) -> int:
    """SHA-256 digest interpreted as a big-endian integer."""
    return int.from_bytes(sha256(*parts), "big")


def derive_key(master: bytes, label: str) -> bytes:
    """Derive an independent 32-byte subkey from ``master`` and ``label``.

    Simple KDF: ``SHA256(len(label) || label || master)``.  The length
    prefix keeps distinct (label, master) pairs from colliding on
    concatenation boundaries.
    """
    raw = label.encode("utf-8")
    return sha256(len(raw).to_bytes(4, "big"), raw, master)

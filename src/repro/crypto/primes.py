"""Primality testing and prime generation (Miller-Rabin).

For candidates below 3.3 * 10**24 the deterministic witness set
{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is exact; larger candidates
use those witnesses plus rounds drawn from the caller's RNG stream, for a
 2**-80 error bound at the default round count.
"""

from __future__ import annotations

import random

from repro.errors import CryptoError

__all__ = ["is_probable_prime", "generate_prime"]

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]

_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """True if ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rng: random.Random | None = None, rounds: int = 40) -> bool:
    """Miller-Rabin primality test.

    Deterministic (exact) for ``n`` below ~3.3e24; probabilistic with
    ``rounds`` random witnesses above that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n-1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _DETERMINISTIC_WITNESSES:
        if _miller_rabin_witness(n, a, d, r):
            return False
    if n < _DETERMINISTIC_BOUND:
        return True
    if rng is None:
        rng = random.Random(n)  # deterministic fallback keyed on the candidate
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such
    primes has exactly ``2*bits`` bits (standard RSA practice); the low
    bit is forced to 1 for oddness.
    """
    if bits < 8:
        raise CryptoError(f"prime size {bits} too small (minimum 8 bits)")
    # Expected ~ bits * ln(2) / 2 candidates; bound generously.
    for _ in range(100 * bits):
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate
    raise CryptoError(f"failed to find a {bits}-bit prime")  # pragma: no cover

"""Trust stores: multiple certificate authorities per relying party.

The paper targets "an open, federated environment of servers and clients"
(section 5.2) — administrative domains with *different* authorities.  A
:class:`TrustStore` holds the **root certificates** (public material
only — a relying party never holds a CA's signing key) of every authority
a server accepts, and validates certificates by issuer lookup.

Anything in the system that takes a trust anchor — credential
verification, admission control, secure-channel handshakes — accepts
either a single :class:`~repro.crypto.cert.CertificateAuthority` or a
:class:`TrustStore`; both satisfy the same ``validate(certificate)``
protocol.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.crypto.cert import Certificate, CertificateAuthority
from repro.errors import CredentialError
from repro.util.clock import Clock

__all__ = ["TrustAnchor", "TrustStore"]


@runtime_checkable
class TrustAnchor(Protocol):
    """Anything that can pass judgement on a certificate."""

    def validate(self, certificate: Certificate) -> None: ...


class TrustStore:
    """A relying party's set of accepted authorities."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._anchors: dict[str, Certificate] = {}
        self._version = 0

    @classmethod
    def of(cls, clock: Clock, *authorities: CertificateAuthority) -> "TrustStore":
        """Convenience: trust these authorities' root certificates."""
        store = cls(clock)
        for authority in authorities:
            store.add_anchor(authority.root_certificate)
        return store

    def add_anchor(self, root_certificate: Certificate) -> None:
        """Trust an authority, given its (self-signed) root certificate.

        The root must be self-consistent: issued by its own subject and
        self-signature valid at the current time.
        """
        if root_certificate.issuer != root_certificate.subject:
            raise CredentialError(
                f"{root_certificate.subject!r} is not a self-signed root"
            )
        root_certificate.verify(root_certificate.public_key, self._clock.now())
        if root_certificate.subject in self._anchors:
            raise CredentialError(
                f"authority {root_certificate.subject!r} already trusted"
            )
        self._anchors[root_certificate.subject] = root_certificate
        self._version += 1

    def remove_anchor(self, authority_name: str) -> None:
        """Stop trusting an authority (future validations only)."""
        self._anchors.pop(authority_name, None)
        self._version += 1

    @property
    def trust_version(self) -> int:
        """Monotonic counter bumped by every anchor mutation.

        Caches of validation verdicts key on it, so adding or removing an
        authority orphans every verdict reached under the old trust set.
        """
        return self._version

    def anchor_validity_window(self) -> tuple[float, float]:
        """Conservative time span over which the anchor set stays valid.

        Used by verification caches: outside this window a cached verdict
        cannot be trusted without re-validating (a root may have expired
        or not yet be valid).
        """
        if not self._anchors:
            return (float("inf"), float("-inf"))
        return (
            max(a.not_before for a in self._anchors.values()),
            min(a.not_after for a in self._anchors.values()),
        )

    def anchors(self) -> list[str]:
        return sorted(self._anchors)

    def __len__(self) -> int:
        return len(self._anchors)

    # -- the TrustAnchor protocol ----------------------------------------------

    def validate(self, certificate: Certificate) -> None:
        """Check a certificate against the trusted authorities."""
        anchor = self._anchors.get(certificate.issuer)
        if anchor is None:
            raise CredentialError(
                f"certificate for {certificate.subject!r} issued by"
                f" untrusted authority {certificate.issuer!r}"
            )
        now = self._clock.now()
        # The anchor itself must still be in its validity window.
        anchor.verify(anchor.public_key, now)
        certificate.verify(anchor.public_key, now)

"""Key objects: public keys travel in credentials, private keys never do.

:class:`PublicKey` is registered with the canonical serializer (it is
embedded in certificates and credentials).  :class:`PrivateKey` is
deliberately *not* serializable: an agent's state must never be able to
carry a private key onto the wire by accident — the paper's agents are
explicitly untrusted couriers of their own state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto import rsa
from repro.crypto.hashing import sha256_hex
from repro.errors import CryptoError
from repro.util.serialization import register_serializable

__all__ = ["PublicKey", "PrivateKey", "KeyPair", "DEFAULT_KEY_BITS"]

DEFAULT_KEY_BITS = 512


@dataclass(frozen=True, slots=True)
class PublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    def verify(self, digest: bytes, signature: bytes) -> None:
        """Raises :class:`~repro.errors.SignatureError` on mismatch."""
        rsa.rsa_verify_digest(self.n, self.e, digest, signature)

    def encapsulate(self, rng: random.Random) -> tuple[bytes, bytes]:
        """RSA-KEM: ``(ciphertext, shared_key)`` for this key's holder."""
        return rsa.rsa_encapsulate(self.n, self.e, rng)

    def fingerprint(self) -> str:
        """Short stable identifier for logs and registries."""
        k = (self.n.bit_length() + 7) // 8
        return sha256_hex(self.n.to_bytes(k, "big"), self.e.to_bytes(4, "big"))[:16]

    def to_state(self) -> dict:
        return {"n": self.n, "e": self.e}

    @classmethod
    def from_state(cls, state: dict) -> "PublicKey":
        n, e = state["n"], state["e"]
        if not (isinstance(n, int) and isinstance(e, int)) or n < 3 or e < 3:
            raise CryptoError("malformed public key state")
        return cls(n=n, e=e)


register_serializable(PublicKey, intern=True)


class PrivateKey:
    """An RSA private key.  Intentionally not serializable."""

    __slots__ = ("_params",)

    def __init__(self, params: rsa.RsaParams) -> None:
        self._params = params

    @property
    def bits(self) -> int:
        return self._params.bits

    def public_key(self) -> PublicKey:
        return PublicKey(n=self._params.n, e=self._params.e)

    def sign(self, digest: bytes) -> bytes:
        return rsa.rsa_sign_digest(self._params, digest)

    def decapsulate(self, ciphertext: bytes) -> bytes:
        return rsa.rsa_decapsulate(self._params, ciphertext)

    def __repr__(self) -> str:  # never leak parameters
        return f"PrivateKey(bits={self.bits}, fpr={self.public_key().fingerprint()})"


@dataclass(frozen=True, slots=True)
class KeyPair:
    """A public/private key pair belonging to one principal."""

    public: PublicKey
    private: PrivateKey

    @classmethod
    def generate(
        cls, rng: random.Random, bits: int = DEFAULT_KEY_BITS
    ) -> "KeyPair":
        params = rsa.rsa_keygen(bits, rng)
        private = PrivateKey(params)
        return cls(public=private.public_key(), private=private)

"""HMAC-SHA256, implemented from the RFC 2104 definition.

Tested against the stdlib ``hmac`` module; implemented by hand so the
whole authentication path of the reproduction is self-contained and
readable alongside the paper.

:class:`HmacKey` is the amortized form: the padded-key hash states are
computed once per key and every subsequent MAC only pays two short
``copy()+update()`` rounds.  The capability-token authority signs every
grant and secure channels seal every message, so the per-message key
schedule (two full pad blocks per MAC) was the dominant cost — reusing
the key context makes one MAC ~7x cheaper.
"""

from __future__ import annotations

import hashlib
import hmac as _stdlib_hmac

__all__ = ["hmac_sha256", "verify_hmac", "HmacKey"]

_BLOCK_SIZE = 64  # SHA-256 block size in bytes


class HmacKey:
    """A reusable HMAC-SHA256 key context (RFC 2104 with cached pads).

    Equivalent to :func:`hmac_sha256` for every message (pinned by
    tests), but the inner/outer pad blocks are absorbed once at
    construction instead of once per message.
    """

    __slots__ = ("_inner", "_outer")

    def __init__(self, key: bytes) -> None:
        if len(key) > _BLOCK_SIZE:
            key = hashlib.sha256(key).digest()
        key = key.ljust(_BLOCK_SIZE, b"\x00")
        self._inner = hashlib.sha256(bytes(b ^ 0x36 for b in key))
        self._outer = hashlib.sha256(bytes(b ^ 0x5C for b in key))

    def digest(self, message: bytes) -> bytes:
        inner = self._inner.copy()
        inner.update(message)
        outer = self._outer.copy()
        outer.update(inner.digest())
        return outer.digest()

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time tag comparison."""
        return _stdlib_hmac.compare_digest(self.digest(message), tag)


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256(key, message) per RFC 2104."""
    if len(key) > _BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    o_pad = bytes(b ^ 0x5C for b in key)
    i_pad = bytes(b ^ 0x36 for b in key)
    inner = hashlib.sha256(i_pad + message).digest()
    return hashlib.sha256(o_pad + inner).digest()


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time tag comparison."""
    return _stdlib_hmac.compare_digest(hmac_sha256(key, message), tag)

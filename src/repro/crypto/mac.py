"""HMAC-SHA256, implemented from the RFC 2104 definition.

Tested against the stdlib ``hmac`` module; implemented by hand so the
whole authentication path of the reproduction is self-contained and
readable alongside the paper.
"""

from __future__ import annotations

import hashlib
import hmac as _stdlib_hmac

__all__ = ["hmac_sha256", "verify_hmac"]

_BLOCK_SIZE = 64  # SHA-256 block size in bytes


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256(key, message) per RFC 2104."""
    if len(key) > _BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    o_pad = bytes(b ^ 0x5C for b in key)
    i_pad = bytes(b ^ 0x36 for b in key)
    inner = hashlib.sha256(i_pad + message).digest()
    return hashlib.sha256(o_pad + inner).digest()


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time tag comparison."""
    return _stdlib_hmac.compare_digest(hmac_sha256(key, message), tag)

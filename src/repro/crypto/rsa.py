"""Raw RSA: key generation, deterministic-padding signatures, and a KEM.

Three operations, matching what the system above needs:

* **keygen** — two random primes, ``e = 65537``, CRT parameters kept for a
  ~3-4x faster private operation.
* **sign/verify** — full-domain PKCS#1-v1.5-style padding over a SHA-256
  digest (deterministic: same key + same message → same signature, which
  keeps credentials canonical).
* **KEM (encapsulate/decapsulate)** — RSA-KEM for session-key transport on
  secure channels: encrypt a random ``r < n``; both sides derive the
  session key as ``SHA256(r)``.  No padding oracle to get wrong.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashing import sha256
from repro.crypto.primes import generate_prime
from repro.errors import CryptoError, SignatureError

__all__ = ["RsaParams", "rsa_keygen", "rsa_sign_digest", "rsa_verify_digest",
           "rsa_encapsulate", "rsa_decapsulate"]

PUBLIC_EXPONENT = 65537


@dataclass(frozen=True, slots=True)
class RsaParams:
    """Private RSA parameters (with CRT acceleration values)."""

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int  # d mod (p-1)
    d_q: int  # d mod (q-1)
    q_inv: int  # q^-1 mod p

    @property
    def bits(self) -> int:
        return self.n.bit_length()


def rsa_keygen(bits: int, rng: random.Random) -> RsaParams:
    """Generate an RSA key with a ``bits``-bit modulus."""
    # 384-bit floor: the padded SHA-256 digest needs a 43-byte modulus.
    if bits < 384 or bits % 2:
        raise CryptoError(f"modulus size must be an even number >= 384, got {bits}")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(PUBLIC_EXPONENT, -1, phi)
        except ValueError:
            continue  # gcd(e, phi) != 1; rare, retry
        n = p * q
        if n.bit_length() != bits:
            continue
        return RsaParams(
            n=n,
            e=PUBLIC_EXPONENT,
            d=d,
            p=p,
            q=q,
            d_p=d % (p - 1),
            d_q=d % (q - 1),
            q_inv=pow(q, -1, p),
        )


def _private_op(params: RsaParams, value: int) -> int:
    """``value**d mod n`` via the Chinese Remainder Theorem."""
    m_p = pow(value % params.p, params.d_p, params.p)
    m_q = pow(value % params.q, params.d_q, params.q)
    h = (params.q_inv * (m_p - m_q)) % params.p
    return m_q + h * params.q


def _pad_digest(digest: bytes, modulus_bytes: int) -> int:
    """Deterministic PKCS#1-v1.5-style padding of a 32-byte digest.

    Layout: ``0x00 0x01 FF..FF 0x00 digest`` filling ``modulus_bytes``.
    """
    if len(digest) != 32:
        raise CryptoError("sign/verify operate on 32-byte SHA-256 digests")
    pad_len = modulus_bytes - len(digest) - 3
    if pad_len < 8:
        raise CryptoError("modulus too small for padded digest")
    padded = b"\x00\x01" + b"\xff" * pad_len + b"\x00" + digest
    return int.from_bytes(padded, "big")


def rsa_sign_digest(params: RsaParams, digest: bytes) -> bytes:
    """Sign a SHA-256 digest; returns a modulus-sized big-endian signature."""
    k = (params.n.bit_length() + 7) // 8
    m = _pad_digest(digest, k)
    sig = _private_op(params, m)
    return sig.to_bytes(k, "big")


def rsa_verify_digest(n: int, e: int, digest: bytes, signature: bytes) -> None:
    """Verify a signature; raises :class:`SignatureError` on mismatch."""
    k = (n.bit_length() + 7) // 8
    if len(signature) != k:
        raise SignatureError(f"signature length {len(signature)} != modulus size {k}")
    s = int.from_bytes(signature, "big")
    if s >= n:
        raise SignatureError("signature value out of range")
    recovered = pow(s, e, n)
    expected = _pad_digest(digest, k)
    if recovered != expected:
        raise SignatureError("signature does not match digest")


def rsa_encapsulate(n: int, e: int, rng: random.Random) -> tuple[bytes, bytes]:
    """RSA-KEM: returns ``(ciphertext, shared_key)``.

    The recipient recovers ``shared_key`` with :func:`rsa_decapsulate`.
    """
    k = (n.bit_length() + 7) // 8
    r = rng.randrange(2, n - 1)
    ciphertext = pow(r, e, n).to_bytes(k, "big")
    shared = sha256(r.to_bytes(k, "big"))
    return ciphertext, shared


def rsa_decapsulate(params: RsaParams, ciphertext: bytes) -> bytes:
    """Recover the shared key from an RSA-KEM ciphertext."""
    k = (params.n.bit_length() + 7) // 8
    if len(ciphertext) != k:
        raise CryptoError(f"ciphertext length {len(ciphertext)} != modulus size {k}")
    c = int.from_bytes(ciphertext, "big")
    if c >= params.n:
        raise CryptoError("ciphertext out of range")
    r = _private_op(params, c)
    return sha256(r.to_bytes(k, "big"))

"""From-scratch cryptographic substrate.

The paper assumes public-key credentials (owner's public key certificate,
section 5.2), authenticated and private agent transfer (section 2), and
cites Kerberos/PGP-era machinery.  No third-party crypto library is
available offline, so this package implements what the system needs:

- :mod:`repro.crypto.hashing` — SHA-256 conveniences (stdlib ``hashlib``).
- :mod:`repro.crypto.primes` — Miller-Rabin primality, prime generation.
- :mod:`repro.crypto.rsa` — raw RSA keygen / sign / verify / KEM.
- :mod:`repro.crypto.keys` — key objects with canonical serialization.
- :mod:`repro.crypto.mac` — HMAC-SHA256 (implemented from the definition).
- :mod:`repro.crypto.cipher` — SHA-256-counter stream cipher with
  encrypt-then-MAC AEAD (seal/open).
- :mod:`repro.crypto.cert` — public-key certificates and a simple CA.
- :mod:`repro.crypto.trust` — multi-authority trust stores for federated
  deployments (servers from different administrative domains).

Default key size is 512 bits: the goal is to exercise the *protocol* code
paths (signing credentials, verifying chains, sealing transfers) at
simulation speed, not to resist 2026-era factoring.
"""

from repro.crypto.cert import Certificate, CertificateAuthority
from repro.crypto.trust import TrustAnchor, TrustStore
from repro.crypto.cipher import open_payload, seal_payload
from repro.crypto.hashing import sha256, sha256_hex
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.mac import hmac_sha256, verify_hmac
from repro.crypto.primes import generate_prime, is_probable_prime

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "TrustAnchor",
    "TrustStore",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "generate_prime",
    "is_probable_prime",
    "hmac_sha256",
    "verify_hmac",
    "seal_payload",
    "open_payload",
    "sha256",
    "sha256_hex",
]

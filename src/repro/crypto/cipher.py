"""Symmetric AEAD: SHA-256 counter-mode stream cipher with encrypt-then-MAC.

Secure channels (section 2: privacy + integrity of communication) seal
every payload with :func:`seal_payload` and reject anything
:func:`open_payload` cannot authenticate.  Key separation: independent
encryption and MAC keys are derived from the session key, and the MAC
covers ``nonce || associated_data || ciphertext`` with length framing, so
splicing attacks across fields are detected.

:class:`SealContext` is the amortized per-session form: the enc/MAC key
derivation and the HMAC key schedule run once when the channel is
established, not once per message.  The one-shot functions re-derive
everything per call — identical bytes on the wire (pinned by tests),
so the two forms interoperate freely.
"""

from __future__ import annotations

import hashlib

from repro.crypto.hashing import derive_key
from repro.crypto.mac import HmacKey, hmac_sha256, verify_hmac
from repro.errors import CryptoError, IntegrityError

__all__ = [
    "keystream_xor",
    "seal_payload",
    "open_payload",
    "SealContext",
    "NONCE_SIZE",
    "TAG_SIZE",
]

NONCE_SIZE = 16
TAG_SIZE = 32
_BLOCK = 32  # SHA-256 output size


def keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """XOR ``data`` with the SHA-256 counter keystream for (key, nonce).

    Symmetric: applying it twice with the same key/nonce returns the
    original plaintext.
    """
    if len(nonce) != NONCE_SIZE:
        raise CryptoError(f"nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    if not data:
        return b""
    prefix = key + nonce
    stream = b"".join(
        hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
        for counter in range((len(data) + _BLOCK - 1) // _BLOCK)
    )[: len(data)]
    # One big-int XOR instead of a per-byte Python loop: the keystream
    # bytes are identical, only the combining step is vectorized.
    xored = int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    return xored.to_bytes(len(data), "big")


def _frame(nonce: bytes, associated_data: bytes, ciphertext: bytes) -> bytes:
    """Unambiguous MAC input: length-prefixed fields."""
    return b"".join(
        (
            len(nonce).to_bytes(4, "big"),
            nonce,
            len(associated_data).to_bytes(4, "big"),
            associated_data,
            len(ciphertext).to_bytes(4, "big"),
            ciphertext,
        )
    )


def seal_payload(
    session_key: bytes,
    nonce: bytes,
    plaintext: bytes,
    associated_data: bytes = b"",
) -> bytes:
    """Encrypt-then-MAC.  Returns ``nonce || ciphertext || tag``."""
    enc_key = derive_key(session_key, "enc")
    mac_key = derive_key(session_key, "mac")
    ciphertext = keystream_xor(enc_key, nonce, plaintext)
    tag = hmac_sha256(mac_key, _frame(nonce, associated_data, ciphertext))
    return nonce + ciphertext + tag


def open_payload(
    session_key: bytes,
    sealed: bytes,
    associated_data: bytes = b"",
) -> bytes:
    """Authenticate and decrypt a sealed payload.

    Raises :class:`~repro.errors.IntegrityError` if the tag does not
    verify — the "data is either delivered unmodified, or an exception is
    raised" guarantee of section 2.
    """
    if len(sealed) < NONCE_SIZE + TAG_SIZE:
        raise IntegrityError("sealed payload too short")
    nonce = sealed[:NONCE_SIZE]
    ciphertext = sealed[NONCE_SIZE:-TAG_SIZE]
    tag = sealed[-TAG_SIZE:]
    enc_key = derive_key(session_key, "enc")
    mac_key = derive_key(session_key, "mac")
    if not verify_hmac(mac_key, _frame(nonce, associated_data, ciphertext), tag):
        raise IntegrityError("payload failed authentication (tampered or wrong key)")
    return keystream_xor(enc_key, nonce, ciphertext)


class SealContext:
    """Per-session AEAD context: keys derived once, MAC pads cached.

    A secure channel seals every message under the same session key, so
    re-deriving the enc/MAC subkeys and re-absorbing the HMAC key blocks
    per message was pure overhead.  Output is bit-identical to the
    one-shot :func:`seal_payload`/:func:`open_payload` pair.
    """

    __slots__ = ("_enc_key", "_mac")

    def __init__(self, session_key: bytes) -> None:
        self._enc_key = derive_key(session_key, "enc")
        self._mac = HmacKey(derive_key(session_key, "mac"))

    def seal(
        self, nonce: bytes, plaintext: bytes, associated_data: bytes = b""
    ) -> bytes:
        """Encrypt-then-MAC.  Returns ``nonce || ciphertext || tag``."""
        ciphertext = keystream_xor(self._enc_key, nonce, plaintext)
        tag = self._mac.digest(_frame(nonce, associated_data, ciphertext))
        return nonce + ciphertext + tag

    def open(self, sealed: bytes, associated_data: bytes = b"") -> bytes:
        """Authenticate and decrypt; :class:`IntegrityError` on tamper."""
        if len(sealed) < NONCE_SIZE + TAG_SIZE:
            raise IntegrityError("sealed payload too short")
        nonce = sealed[:NONCE_SIZE]
        ciphertext = sealed[NONCE_SIZE:-TAG_SIZE]
        tag = sealed[-TAG_SIZE:]
        if not self._mac.verify(
            _frame(nonce, associated_data, ciphertext), tag
        ):
            raise IntegrityError(
                "payload failed authentication (tampered or wrong key)"
            )
        return keystream_xor(self._enc_key, nonce, ciphertext)

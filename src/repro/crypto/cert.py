"""Public-key certificates and a minimal certificate authority.

Section 5.2: an agent's credentials "include the owner's public key
certificate".  A :class:`Certificate` binds a principal name to a public
key, signed by an issuer; servers hold the issuing
:class:`CertificateAuthority`'s root certificate as their trust anchor and
validate chains with expiry checking.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.keys import DEFAULT_KEY_BITS, KeyPair, PublicKey
from repro.errors import CredentialError, CredentialExpiredError, SignatureError
from repro.util.clock import Clock
from repro.util.serialization import canonical_digest, register_serializable

__all__ = ["Certificate", "CertificateAuthority"]


@dataclass(frozen=True, slots=True)
class Certificate:
    """A signed binding of ``subject`` (a principal name) to ``public_key``."""

    subject: str
    public_key: PublicKey
    issuer: str
    not_before: float
    not_after: float
    signature: bytes

    def signed_body(self) -> dict:
        """The fields the issuer's signature covers."""
        return {
            "subject": self.subject,
            "public_key": self.public_key,
            "issuer": self.issuer,
            "not_before": self.not_before,
            "not_after": self.not_after,
        }

    def verify(self, issuer_key: PublicKey, now: float) -> None:
        """Validate signature and validity window; raises on failure."""
        if not (self.not_before <= now <= self.not_after):
            raise CredentialExpiredError(
                f"certificate for {self.subject!r} not valid at t={now} "
                f"(window [{self.not_before}, {self.not_after}])"
            )
        try:
            issuer_key.verify(canonical_digest(self.signed_body()), self.signature)
        except SignatureError as exc:
            raise CredentialError(
                f"certificate for {self.subject!r} has an invalid signature"
            ) from exc

    def to_state(self) -> dict:
        state = self.signed_body()
        state["signature"] = self.signature
        return state

    @classmethod
    def from_state(cls, state: dict) -> "Certificate":
        return cls(
            subject=state["subject"],
            public_key=state["public_key"],
            issuer=state["issuer"],
            not_before=float(state["not_before"]),
            not_after=float(state["not_after"]),
            signature=state["signature"],
        )


register_serializable(Certificate, intern=True)


class CertificateAuthority:
    """Issues certificates; its own (self-signed) cert is the trust anchor.

    One CA models the paper's "server-oriented" open federation well
    enough: every agent server is configured with the CA certificates it
    trusts, and credential validation starts from those anchors.
    """

    def __init__(
        self,
        name: str,
        rng: random.Random,
        clock: Clock,
        *,
        bits: int = DEFAULT_KEY_BITS,
        lifetime: float = 10**9,
    ) -> None:
        self.name = name
        self._clock = clock
        self._keys = KeyPair.generate(rng, bits)
        self.root_certificate = self._issue_to(
            name, self._keys.public, lifetime=lifetime
        )

    @property
    def public_key(self) -> PublicKey:
        return self._keys.public

    @property
    def trust_version(self) -> int:
        """A CA's trust judgement never changes (its key is fixed)."""
        return 0

    def _issue_to(
        self, subject: str, key: PublicKey, *, lifetime: float
    ) -> Certificate:
        now = self._clock.now()
        body = {
            "subject": subject,
            "public_key": key,
            "issuer": self.name,
            "not_before": now,
            "not_after": now + lifetime,
        }
        signature = self._keys.private.sign(canonical_digest(body))
        return Certificate(
            subject=subject,
            public_key=key,
            issuer=self.name,
            not_before=now,
            not_after=now + lifetime,
            signature=signature,
        )

    def issue(
        self, subject: str, key: PublicKey, *, lifetime: float = 10**6
    ) -> Certificate:
        """Issue a certificate binding ``subject`` to ``key``."""
        if subject == self.name:
            raise CredentialError("use the CA's own root certificate")
        return self._issue_to(subject, key, lifetime=lifetime)

    def validate(self, certificate: Certificate) -> None:
        """Check a certificate against this CA at the current time."""
        if certificate.issuer != self.name:
            raise CredentialError(
                f"certificate issued by {certificate.issuer!r}, not {self.name!r}"
            )
        certificate.verify(self.public_key, self._clock.now())

"""An in-memory file store: the host-filesystem stand-in.

The applet sandbox that section 3.2 contrasts with denies "access to all
resources such as the file system"; the paper's point is that agents need
*finer* grain.  :class:`FileStore` is the file system as an
application-level resource: reads, writes, listing and deletion are
separate permissions, so a policy can grant read-only access, or
write-without-read drop-boxes, per principal.

Paths are store-relative POSIX-style strings.  Normalization rejects
absolute paths and any ``..`` traversal — a visiting agent cannot name
its way out of the exported tree.
"""

from __future__ import annotations

import posixpath

from repro.core.access_protocol import AccessProtocol
from repro.core.accounting import Tariff
from repro.core.policy import SecurityPolicy
from repro.core.resource import ResourceImpl, export
from repro.errors import SecurityException, UnknownNameError
from repro.naming.urn import URN

__all__ = ["FileStore"]


def _normalize(path: str) -> str:
    """Canonicalize a store-relative path; raise on escapes."""
    if not isinstance(path, str) or not path:
        raise SecurityException(f"invalid path {path!r}")
    if path.startswith("/") or "\\" in path or "\x00" in path:
        raise SecurityException(f"invalid path {path!r}")
    normalized = posixpath.normpath(path)
    if normalized.startswith("..") or normalized == ".":
        raise SecurityException(f"path {path!r} escapes the store root")
    return normalized


class FileStore(ResourceImpl, AccessProtocol):
    """A flat-namespace hierarchical store (paths with / separators)."""

    def __init__(
        self,
        name: URN,
        owner: URN,
        policy: SecurityPolicy,
        *,
        initial: dict[str, str] | None = None,
        max_file_bytes: int = 1 << 20,
        max_files: int = 10_000,
        tariff: Tariff | None = None,
        admin_domains: tuple[str, ...] = (),
    ) -> None:
        ResourceImpl.__init__(self, name, owner)
        self.init_access_protocol(policy, tariff=tariff, admin_domains=admin_domains)
        self._files: dict[str, str] = {}
        self._max_file_bytes = max_file_bytes
        self._max_files = max_files
        for path, content in (initial or {}).items():
            self._files[_normalize(path)] = content

    # -- read interface ----------------------------------------------------------

    @export
    def read(self, path: str) -> str:
        """Contents of one file."""
        normalized = _normalize(path)
        try:
            return self._files[normalized]
        except KeyError:
            raise UnknownNameError(f"no file {normalized!r}") from None

    @export
    def exists(self, path: str) -> bool:
        return _normalize(path) in self._files

    @export
    def list_dir(self, path: str = ".") -> list[str]:
        """Immediate children (files and sub-directories) of a directory."""
        prefix = "" if path in (".", "") else _normalize(path) + "/"
        children: set[str] = set()
        for name in self._files:
            if name.startswith(prefix):
                rest = name[len(prefix):]
                children.add(rest.split("/", 1)[0])
        return sorted(children)

    # -- write interface -------------------------------------------------------------

    @export
    def write(self, path: str, content: str) -> None:
        """Create or replace a file (resource-consumption bounded)."""
        normalized = _normalize(path)
        if not isinstance(content, str):
            raise SecurityException("file content must be a string")
        if len(content.encode("utf-8", "replace")) > self._max_file_bytes:
            raise SecurityException(
                f"file exceeds {self._max_file_bytes} byte limit"
            )
        if normalized not in self._files and len(self._files) >= self._max_files:
            raise SecurityException(f"store is full ({self._max_files} files)")
        self._files[normalized] = content

    @export
    def delete(self, path: str) -> bool:
        """Remove a file; returns whether it existed."""
        return self._files.pop(_normalize(path), None) is not None

    # -- metadata ----------------------------------------------------------------------

    @export
    def store_stats(self) -> dict[str, int]:
        return {
            "files": len(self._files),
            "bytes": sum(len(c) for c in self._files.values()),
        }

"""The bounded buffer resource: the paper's running example (Figs. 4-5).

    public interface Buffer extends Resource {
        public synchronized BufItem get();
        public synchronized void put (BufItem);
    }
    public class BufferImpl extends ResourceImpl
           implements Buffer, AccessProtocol { ... }

Two operating modes:

* **simulated** (a kernel is supplied): ``get``/``put`` block the calling
  simulated thread, matching the Java ``synchronized`` blocking buffer —
  used by the co-located producer/consumer agents example;
* **direct** (no kernel): ``get``/``put`` raise
  :class:`BufferEmpty`/:class:`BufferFull` instead of blocking — used by
  micro-benchmarks that measure pure access-control overhead.
"""

from __future__ import annotations

import collections
from typing import Any

from repro.core.access_protocol import AccessProtocol
from repro.core.accounting import Tariff
from repro.core.policy import SecurityPolicy
from repro.core.resource import ResourceImpl, export
from repro.errors import ReproError
from repro.naming.urn import URN
from repro.sim.kernel import Kernel
from repro.sim.sync import BlockingQueue

__all__ = ["Buffer", "BufferEmpty", "BufferFull"]


class BufferEmpty(ReproError):
    """Direct-mode ``get`` on an empty buffer."""


class BufferFull(ReproError):
    """Direct-mode ``put`` on a full buffer."""


class Buffer(ResourceImpl, AccessProtocol):
    """A bounded FIFO buffer exported as a protected resource."""

    def __init__(
        self,
        name: URN,
        owner: URN,
        policy: SecurityPolicy,
        *,
        capacity: int | None = None,
        kernel: Kernel | None = None,
        tariff: Tariff | None = None,
        admin_domains: tuple[str, ...] = (),
    ) -> None:
        ResourceImpl.__init__(self, name, owner)
        self.init_access_protocol(policy, tariff=tariff, admin_domains=admin_domains)
        self._capacity = capacity
        self._kernel = kernel
        if kernel is not None:
            self._queue: BlockingQueue | None = BlockingQueue(kernel, capacity)
            self._items: collections.deque[Any] | None = None
        else:
            self._queue = None
            self._items = collections.deque()

    # -- the Buffer interface (Fig. 4) ------------------------------------------

    @export
    def put(self, item: Any) -> None:
        """Append an item; blocks (sim) or raises ``BufferFull`` (direct)."""
        if self._queue is not None:
            self._queue.put(item)
            return
        if self._capacity is not None and len(self._items) >= self._capacity:
            raise BufferFull(f"buffer {self._name} is full")
        self._items.append(item)

    @export
    def get(self) -> Any:
        """Remove the oldest item; blocks (sim) or raises ``BufferEmpty``."""
        if self._queue is not None:
            return self._queue.get()
        if not self._items:
            raise BufferEmpty(f"buffer {self._name} is empty")
        return self._items.popleft()

    @export
    def try_put(self, item: Any) -> bool:
        """Non-blocking put; False when full."""
        if self._queue is not None:
            return self._queue.try_put(item)
        if self._capacity is not None and len(self._items) >= self._capacity:
            return False
        self._items.append(item)
        return True

    @export
    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; ``(ok, item)``."""
        if self._queue is not None:
            return self._queue.try_get()
        if not self._items:
            return False, None
        return True, self._items.popleft()

    @export
    def size(self) -> int:
        """Items currently buffered."""
        if self._queue is not None:
            return len(self._queue)
        return len(self._items)

    @export
    def buffer_capacity(self) -> int | None:
        """The bound (None = unbounded)."""
        return self._capacity

"""Ready-made application resources used by examples, tests and benchmarks.

- :mod:`repro.apps.buffer` — the paper's bounded buffer (Figs. 4-5).
- :mod:`repro.apps.database` — a key-value query store (the
  "application-level value-added resources, such as database services"
  of section 5.1).
- :mod:`repro.apps.marketplace` — a quote/purchase service for the
  on-line-shopping scenario the paper's introduction motivates.
- :mod:`repro.apps.filestore` — the host file system as a fine-grained
  protected resource (the applet model's all-or-nothing target,
  section 3.2, done the Ajanta way).
"""

from repro.apps.buffer import Buffer, BufferEmpty, BufferFull
from repro.apps.database import QueryStore
from repro.apps.filestore import FileStore
from repro.apps.marketplace import QuoteService

__all__ = [
    "Buffer",
    "BufferEmpty",
    "BufferFull",
    "FileStore",
    "QueryStore",
    "QuoteService",
]

"""A marketplace quote/purchase service for the shopping scenario.

The paper's introduction motivates mobile agents with tasks "ranging from
on-line shopping to ...": an agent visits several stores, gathers quotes
under restricted proxies, and buys at the best one.  ``quote`` is cheap
and widely granted; ``buy`` moves money and is granted narrowly (and is
the natural target for per-method tariffs and quotas).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.access_protocol import AccessProtocol
from repro.core.accounting import Tariff
from repro.core.policy import SecurityPolicy
from repro.core.resource import ResourceImpl, export
from repro.errors import ReproError, UnknownNameError
from repro.naming.urn import URN

__all__ = ["QuoteService", "OutOfStock"]


class OutOfStock(ReproError):
    """Purchase attempted on an exhausted item."""


@dataclass(slots=True)
class _Listing:
    price: float
    stock: int


class QuoteService(ResourceImpl, AccessProtocol):
    """One store's catalog."""

    def __init__(
        self,
        name: URN,
        owner: URN,
        policy: SecurityPolicy,
        *,
        catalog: dict[str, tuple[float, int]] | None = None,
        tariff: Tariff | None = None,
        admin_domains: tuple[str, ...] = (),
    ) -> None:
        ResourceImpl.__init__(self, name, owner)
        self.init_access_protocol(policy, tariff=tariff, admin_domains=admin_domains)
        self._catalog: dict[str, _Listing] = {
            item: _Listing(price=price, stock=stock)
            for item, (price, stock) in (catalog or {}).items()
        }
        self._sales: list[tuple[str, float]] = []

    def _listing(self, item: str) -> _Listing:
        try:
            return self._catalog[item]
        except KeyError:
            raise UnknownNameError(f"item {item!r} not in catalog") from None

    # -- widely granted -----------------------------------------------------------

    @export
    def quote(self, item: str) -> float:
        """Current price of ``item``."""
        return self._listing(item).price

    @export
    def in_stock(self, item: str) -> bool:
        return self._listing(item).stock > 0

    @export
    def list_items(self) -> list[str]:
        return sorted(self._catalog)

    # -- narrowly granted ----------------------------------------------------------

    @export
    def buy(self, item: str) -> float:
        """Purchase one unit; returns the price paid."""
        listing = self._listing(item)
        if listing.stock <= 0:
            raise OutOfStock(f"item {item!r} is sold out")
        listing.stock -= 1
        self._sales.append((item, listing.price))
        return listing.price

    # -- store-owner operations ----------------------------------------------------

    @export
    def restock(self, item: str, quantity: int, price: float | None = None) -> None:
        """Add inventory (store staff only, per policy)."""
        if quantity < 0:
            raise ValueError("cannot restock a negative quantity")
        listing = self._catalog.get(item)
        if listing is None:
            self._catalog[item] = _Listing(price=price or 0.0, stock=quantity)
            return
        listing.stock += quantity
        if price is not None:
            listing.price = price

    @export
    def sales_report(self) -> dict[str, float]:
        """Revenue by item (store staff only, per policy)."""
        revenue: dict[str, float] = {}
        for item, price in self._sales:
            revenue[item] = revenue.get(item, 0.0) + price
        return revenue

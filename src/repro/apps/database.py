"""A key-value query store: the "database service" class of resource.

Section 5.1 motivates finer-grained control than applets need with
"application-level value-added resources, such as database services".
:class:`QueryStore` gives the examples and benchmarks a resource whose
methods have naturally different sensitivity levels — ``query``/``lookup``
(read), ``insert``/``delete`` (write), ``stats`` (metadata) — so policies
that enable different method subsets for different principals have
something real to bite on.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any

from repro.core.access_protocol import AccessProtocol
from repro.core.accounting import Tariff
from repro.core.policy import SecurityPolicy
from repro.core.resource import ResourceImpl, export
from repro.errors import UnknownNameError
from repro.naming.urn import URN

__all__ = ["QueryStore"]


class QueryStore(ResourceImpl, AccessProtocol):
    """An in-memory keyed store with glob queries."""

    def __init__(
        self,
        name: URN,
        owner: URN,
        policy: SecurityPolicy,
        *,
        initial: dict[str, Any] | None = None,
        tariff: Tariff | None = None,
        admin_domains: tuple[str, ...] = (),
    ) -> None:
        ResourceImpl.__init__(self, name, owner)
        self.init_access_protocol(policy, tariff=tariff, admin_domains=admin_domains)
        self._data: dict[str, Any] = dict(initial or {})
        self._reads = 0
        self._writes = 0

    # -- read interface --------------------------------------------------------

    @export
    def lookup(self, key: str) -> Any:
        """Fetch one record; raises ``UnknownNameError`` if absent."""
        self._reads += 1
        try:
            return self._data[key]
        except KeyError:
            raise UnknownNameError(f"no record {key!r}") from None

    @export
    def query(self, pattern: str) -> list[tuple[str, Any]]:
        """All records whose key matches the glob ``pattern``, sorted."""
        self._reads += 1
        return sorted(
            (k, v) for k, v in self._data.items() if fnmatchcase(k, pattern)
        )

    @export
    def contains(self, key: str) -> bool:
        self._reads += 1
        return key in self._data

    # -- write interface ----------------------------------------------------------

    @export
    def insert(self, key: str, value: Any) -> None:
        """Create or replace a record."""
        self._writes += 1
        self._data[key] = value

    @export
    def delete(self, key: str) -> bool:
        """Remove a record; returns whether it existed."""
        self._writes += 1
        return self._data.pop(key, _MISSING) is not _MISSING

    # -- metadata ---------------------------------------------------------------------

    @export
    def stats(self) -> dict[str, int]:
        return {"records": len(self._data), "reads": self._reads, "writes": self._writes}


_MISSING = object()

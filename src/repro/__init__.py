"""repro — reproduction of the Ajanta protected-resource-access system.

Tripathi & Karnik, "Protected Resource Access for Mobile Agent-based
Distributed Computing", ICPP 1998.

Package layout (bottom-up):

- :mod:`repro.util` — ids, clocks, RNG streams, canonical serialization.
- :mod:`repro.sim` — deterministic discrete-event simulation kernel.
- :mod:`repro.crypto` — RSA, HMAC, AEAD, certificates (from scratch).
- :mod:`repro.naming` — global location-independent names.
- :mod:`repro.credentials` — principals, rights, signed credentials,
  cascaded delegation.
- :mod:`repro.net` — simulated network, adversaries, secure channels,
  RPC/REV baselines.
- :mod:`repro.sandbox` — code verifier, per-agent namespaces, thread
  groups, security manager (the Java-security-model analogue).
- :mod:`repro.core` — the paper's contribution: resources, proxies,
  policies, the resource-binding protocol, accounting, revocation,
  capabilities, and the baseline access-control designs.
- :mod:`repro.agents` — the Agent programming model and migration.
- :mod:`repro.server` — the agent server of Fig. 1.
- :mod:`repro.apps` — ready-made resources (bounded buffer, database,
  marketplace) used by the examples and benchmarks.
"""

from repro.errors import ReproError, SecurityException

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "SecurityException",
    "__version__",
    # convenience re-exports (lazy; see __getattr__)
    "Agent",
    "register_trusted_agent_class",
    "Itinerary",
    "Testbed",
    "AgentServer",
    "Rights",
    "SecurityPolicy",
    "PolicyRule",
    "URN",
    "ResourceImpl",
    "AccessProtocol",
    "export",
]

_LAZY_EXPORTS = {
    "Agent": ("repro.agents.agent", "Agent"),
    "register_trusted_agent_class": ("repro.agents.agent",
                                     "register_trusted_agent_class"),
    "Itinerary": ("repro.agents.itinerary", "Itinerary"),
    "Testbed": ("repro.server.testbed", "Testbed"),
    "AgentServer": ("repro.server.agent_server", "AgentServer"),
    "Rights": ("repro.credentials.rights", "Rights"),
    "SecurityPolicy": ("repro.core.policy", "SecurityPolicy"),
    "PolicyRule": ("repro.core.policy", "PolicyRule"),
    "URN": ("repro.naming.urn", "URN"),
    "ResourceImpl": ("repro.core.resource", "ResourceImpl"),
    "AccessProtocol": ("repro.core.access_protocol", "AccessProtocol"),
    "export": ("repro.core.resource", "export"),
}


def __getattr__(name: str):
    """Lazy top-level convenience imports (keeps ``import repro`` light)."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)

"""Thread groups: how the security manager identifies protection domains.

Section 5.3, "Domain identification": every agent executes under its own
thread group; all server threads share the server group.  The *current*
group is derived from execution context — a stack kept in OS-thread-local
storage — never from arguments a caller could forge.  Simulated threads
(each of which is its own OS thread) establish their group at start; the
server establishes its group around kernel-context callbacks; tests and
micro-benchmarks use :func:`enter_group` directly.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sandbox.domain import ProtectionDomain
    from repro.sim.threads import SimThread

__all__ = ["ThreadGroup", "current_group", "enter_group", "wrap_in_group"]

_tls = threading.local()


class ThreadGroup:
    """A named group; parent links form the server>agents hierarchy."""

    __slots__ = ("name", "parent", "domain", "_members")

    def __init__(self, name: str, parent: "ThreadGroup | None" = None) -> None:
        self.name = name
        self.parent = parent
        self.domain: "ProtectionDomain | None" = None  # backref, set by domain
        # Weak refs to the simulated threads running in this group, so
        # group-wide control (terminate a whole agent, runaway kills)
        # reaches worker threads too — not just the resident's main
        # thread.  Weak so finished threads do not pin memory.
        self._members: list["weakref.ref[SimThread]"] = []

    def is_within(self, other: "ThreadGroup") -> bool:
        """True if this group equals ``other`` or descends from it."""
        node: ThreadGroup | None = self
        while node is not None:
            if node is other:
                return True
            node = node.parent
        return False

    def adopt(self, thread: "SimThread") -> None:
        """Track ``thread`` as a member (section 5.3: "all threads
        created by the agent belong to the same thread group")."""
        self._members.append(weakref.ref(thread))

    def live_threads(self) -> list["SimThread"]:
        """The group's currently alive simulated threads (prunes dead)."""
        alive: list["SimThread"] = []
        keep: list["weakref.ref[SimThread]"] = []
        for ref in self._members:
            thread = ref()
            if thread is not None and thread.is_alive:
                alive.append(thread)
                keep.append(ref)
        self._members = keep
        return alive

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadGroup({self.name!r})"


def _stack() -> list[ThreadGroup]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current_group() -> ThreadGroup | None:
    """The thread group of the currently executing code (None = unmanaged)."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def enter_group(group: ThreadGroup) -> Iterator[None]:
    """Execute the body under ``group``.

    Only infrastructure code (the server, the scheduler glue, tests) calls
    this; it is never exposed to agent namespaces, so agents cannot forge
    their identity by switching groups.
    """
    stack = _stack()
    stack.append(group)
    try:
        yield
    finally:
        popped = stack.pop()
        assert popped is group, "thread-group stack corrupted"


def wrap_in_group(group: ThreadGroup, target: Callable[[], Any]) -> Callable[[], Any]:
    """A callable that runs ``target`` inside ``group`` (for thread targets)."""

    def runner() -> Any:
        with enter_group(group):
            return target()

    return runner

"""Loop instrumentation: execution budgets for untrusted code.

The lifetime limit (`AgentServer.resident_lifetime_limit`) is measured in
*virtual* time, so it catches agents that sleep or block forever — but a
CPU-bound spin (``while True: pass``) never yields to the kernel and
never lets virtual time advance.  On real Ajanta the JVM scheduler would
preempt such an agent; in a cooperative simulator something must bound it
*inside* the code.

The answer is Telescript-style permits, enforced by AST rewriting: after
verification, every ``while``/``for`` body is prefixed with a call to a
budget hook, so

    while True:
        x = x + 1

executes as

    while True:
        __loop_check__()
        x = x + 1

The hook lives in the namespace's globals under a dunder name, which the
verifier makes unreachable from agent code: it cannot be called, read,
shadowed, or reset by the agent — assignments and references to dunder
names are verification errors.  When the budget runs out the hook raises
:class:`~repro.errors.ExecutionBudgetExceeded`, which the hosting server
treats like any other security violation.

Honesty note: this bounds *Python-level* iteration.  A hostile agent can
still burn real CPU inside C-level builtins (``sum(range(10**9))``); the
verifier's source-size caps and this budget close the common cases, not
all of them (see docs/security-model.md).
"""

from __future__ import annotations

import ast

__all__ = ["LOOP_CHECK_NAME", "instrument_loops", "LoopBudget"]

LOOP_CHECK_NAME = "__loop_check__"


class LoopBudget:
    """The counter behind the injected hook."""

    __slots__ = ("limit", "used")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("loop budget must be positive")
        self.limit = limit
        self.used = 0

    def check(self) -> None:
        self.used += 1
        if self.used > self.limit:
            from repro.errors import ExecutionBudgetExceeded

            raise ExecutionBudgetExceeded(
                f"execution budget of {self.limit} loop iterations exhausted"
            )

    def reset(self) -> None:
        self.used = 0


class _LoopInstrumenter(ast.NodeTransformer):
    """Prefix every loop body (and else-clause loops) with the hook call."""

    def _hook_call(self) -> ast.Expr:
        return ast.Expr(
            value=ast.Call(
                func=ast.Name(id=LOOP_CHECK_NAME, ctx=ast.Load()),
                args=[],
                keywords=[],
            )
        )

    def _instrument(self, node: "ast.While | ast.For") -> ast.AST:
        self.generic_visit(node)
        node.body = [self._hook_call()] + node.body
        return node

    def visit_While(self, node: ast.While) -> ast.AST:
        return self._instrument(node)

    def visit_For(self, node: ast.For) -> ast.AST:
        return self._instrument(node)


def instrument_loops(tree: ast.Module) -> ast.Module:
    """Rewrite ``tree`` in place, injecting budget checks into all loops.

    Must run *after* verification (the rewrite introduces a dunder name
    the verifier would reject) and before compilation.
    """
    instrumented = _LoopInstrumenter().visit(tree)
    ast.fix_missing_locations(instrumented)
    return instrumented

"""The Java-security-model analogue (section 3.2 → section 5.3).

Four mechanisms, mirroring the three Java components the paper builds on
plus the thread-group domain identification of section 5.3:

- :mod:`repro.sandbox.verifier` — AST-level verification of shipped agent
  source (the byte-code verifier analogue): rejects code that could reach
  outside the type/encapsulation model before it ever runs.
- :mod:`repro.sandbox.namespace` — per-agent namespaces with
  impostor-class rejection (the class-loader analogue): privileged names
  always resolve to the server's trusted classes, and one agent's code
  can never be seen or shadowed by another's.
- :mod:`repro.sandbox.threadgroup` — thread groups identify protection
  domains; the *current* group is derived from execution context, never
  from caller-supplied arguments.
- :mod:`repro.sandbox.security_manager` — the reference monitor: every
  privileged operation funnels through ``check``, which decides based on
  the current domain and writes an audit record.

Honesty note: CPython cannot be made watertight against hostile code the
way the JVM's verifier + SecurityManager were believed to be in 1998.
This package *models* those mechanisms faithfully enough to reproduce the
paper's architecture and experiments; the verifier blocks the standard
escape vectors (dunder access, introspection builtins, imports) but is a
research artifact, not a production sandbox.
"""

from repro.sandbox.verifier import VerifierPolicy, verify_source
from repro.sandbox.namespace import AgentNamespace
from repro.sandbox.threadgroup import (
    ThreadGroup,
    current_group,
    enter_group,
)
from repro.sandbox.domain import ProtectionDomain, current_domain
from repro.sandbox.security_manager import SecurityManager

__all__ = [
    "VerifierPolicy",
    "verify_source",
    "AgentNamespace",
    "ThreadGroup",
    "current_group",
    "enter_group",
    "ProtectionDomain",
    "current_domain",
    "SecurityManager",
]

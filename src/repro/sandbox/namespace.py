"""Per-agent namespaces: the class-loader analogue.

Section 5.3, "Domain creation": loading each agent through its own class
loader (1) forces privileged classes to resolve from the local trusted
classpath — an agent cannot install an "impostor" class under a trusted
name — and (2) isolates agents from one another.

:class:`AgentNamespace` reproduces both properties.  Verified agent
source executes in a fresh globals dict seeded with a restricted builtin
set plus the server's *trusted bindings*; top-level definitions that
would shadow a trusted name are rejected (:class:`NamespaceError`), and
every namespace is a separate dict, so nothing an agent defines is
visible to any other agent.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import NamespaceError
from repro.sandbox.instrument import LOOP_CHECK_NAME, LoopBudget, instrument_loops
from repro.sandbox.verifier import VerifierPolicy, verify_source

__all__ = ["AgentNamespace", "SAFE_BUILTINS"]


def _make_safe_builtins() -> dict[str, Any]:
    """The builtin names agent code may use.

    Everything here is either pure computation or an exception type; the
    reflective / IO builtins are absent *and* banned by the verifier
    (defence in depth).
    """
    import builtins

    safe_names = [
        # constructors / conversions
        "bool", "int", "float", "str", "bytes", "bytearray", "list", "dict",
        "set", "frozenset", "tuple", "complex",
        # pure functions
        "abs", "all", "any", "divmod", "enumerate", "filter", "format",
        "hash", "isinstance", "issubclass", "iter", "len", "map", "max",
        "min", "next", "pow", "range", "repr", "reversed", "round", "sorted",
        "sum", "zip", "chr", "ord", "hex", "oct", "bin", "callable", "slice",
        "super",
        # exceptions agents may raise/catch
        "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
        "IndexError", "AttributeError", "RuntimeError", "StopIteration",
        "ZeroDivisionError", "ArithmeticError", "LookupError", "NameError",
        "UnboundLocalError", "NotImplementedError", "OverflowError",
        # constants
        "True", "False", "None", "NotImplemented",
    ]
    table: dict[str, Any] = {}
    for name in safe_names:
        if hasattr(builtins, name):
            table[name] = getattr(builtins, name)
    # class statements need __build_class__ under the hood
    table["__build_class__"] = builtins.__build_class__
    return table


SAFE_BUILTINS = _make_safe_builtins()


class AgentNamespace:
    """An isolated namespace for one agent's code."""

    def __init__(
        self,
        name: str,
        trusted: Mapping[str, Any] | None = None,
        policy: VerifierPolicy | None = None,
    ) -> None:
        self.name = name
        self.policy = policy or VerifierPolicy()
        self._trusted = dict(trusted or {})
        for key in self._trusted:
            if key.startswith("__"):
                raise NamespaceError(f"trusted binding {key!r} may not be a dunder")
        builtins_table = dict(SAFE_BUILTINS)
        builtins_table["__import__"] = self._restricted_import
        self._budget = LoopBudget(self.policy.max_loop_iterations)
        self._globals: dict[str, Any] = {
            "__builtins__": builtins_table,
            "__name__": f"agentns:{name}",
            # The execution-budget hook: a dunder name is unreachable from
            # verified agent code (cannot be called, read, or shadowed).
            LOOP_CHECK_NAME: self._budget.check,
            **self._trusted,
        }
        self._loaded_sources = 0

    def _restricted_import(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Import hook honouring the verifier's allowlist (defence in depth)."""
        import importlib

        root = name.split(".", 1)[0]
        if root not in self.policy.allowed_imports:
            raise NamespaceError(
                f"namespace {self.name!r}: import of {name!r} denied"
            )
        return importlib.import_module(name)

    # -- loading ------------------------------------------------------------

    def load(self, source: str) -> dict[str, Any]:
        """Verify and execute ``source``; returns the new top-level names.

        Raises :class:`CodeVerificationError` if the verifier rejects the
        code and :class:`NamespaceError` if a top-level definition would
        shadow a trusted binding (the impostor-class defence).
        """
        tree = verify_source(source, self.policy)
        impostors = sorted(
            self._top_level_names(tree) & set(self._trusted)
        )
        if impostors:
            raise NamespaceError(
                f"namespace {self.name!r}: code attempts to shadow trusted"
                f" name(s) {', '.join(impostors)}"
            )
        before = set(self._globals)
        tree = instrument_loops(tree)
        code = compile(tree, filename=f"<agentns:{self.name}>", mode="exec")
        exec(code, self._globals)  # noqa: S102 - verified + restricted globals
        self._loaded_sources += 1
        return {
            key: value
            for key, value in self._globals.items()
            if key not in before
        }

    @staticmethod
    def _top_level_names(tree) -> set[str]:
        import ast

        names: set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".", 1)[0])
        return names

    # -- access ----------------------------------------------------------------

    def get(self, name: str) -> Any:
        """Fetch a name defined by the loaded code (or a trusted binding)."""
        try:
            return self._globals[name]
        except KeyError:
            raise NamespaceError(
                f"namespace {self.name!r} has no binding {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._globals

    @property
    def loaded_sources(self) -> int:
        return self._loaded_sources

    # -- execution budget (Telescript-permit analogue) ---------------------------

    def reset_execution_budget(self) -> None:
        """Refill the loop budget (the server does this per entry method)."""
        self._budget.reset()

    @property
    def loop_iterations_used(self) -> int:
        return self._budget.used

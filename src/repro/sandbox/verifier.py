"""AST-level verification of shipped agent code.

Analogue of the Java byte-code verifier (section 3.2, component 1): agent
code arriving over the network is statically checked *before* it is
loaded, and rejected if it could express an operation that escapes the
encapsulation model.  The verifier collects **all** violations (not just
the first) so a rejected transfer can be diagnosed in one round trip.

What is rejected, and the escape it blocks:

====================================  =======================================
construct                             escape vector
====================================  =======================================
``import`` outside the allowlist      filesystem / os / network access
dunder & underscore attributes        ``__class__``/``__globals__`` ladders,
                                      "private" state of proxies
banned builtins (``eval``, ``exec``,  dynamic code, reflection, attribute
``getattr``, ``type``, ...)           forging, import machinery
``global`` / ``nonlocal`` at odd      rebinding trusted names
scopes are allowed — namespaces are
per-agent anyway
oversized source / AST                resource-consumption (denial of
                                      service) at load time
====================================  =======================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.errors import CodeVerificationError

__all__ = ["VerifierPolicy", "verify_source", "DEFAULT_ALLOWED_IMPORTS",
           "BANNED_BUILTINS"]

DEFAULT_ALLOWED_IMPORTS = frozenset({"math", "itertools", "functools"})

BANNED_BUILTINS = frozenset(
    {
        "eval",
        "exec",
        "compile",
        "open",
        "input",
        "__import__",
        "globals",
        "locals",
        "vars",
        "getattr",
        "setattr",
        "delattr",
        "hasattr",
        "type",
        "object",
        "memoryview",
        "breakpoint",
        "exit",
        "quit",
        "help",
        "dir",
        "id",
        "classmethod",
        "staticmethod",
        "property",
    }
)


@dataclass(frozen=True, slots=True)
class VerifierPolicy:
    """Limits applied by :func:`verify_source`."""

    allowed_imports: frozenset[str] = DEFAULT_ALLOWED_IMPORTS
    banned_names: frozenset[str] = BANNED_BUILTINS
    max_source_bytes: int = 256 * 1024
    max_ast_nodes: int = 50_000
    # Telescript-permit analogue, enforced by loop instrumentation at load
    # time (see repro.sandbox.instrument): total loop iterations allowed
    # per entry-method invocation.
    max_loop_iterations: int = 1_000_000


@dataclass
class _Findings:
    violations: list[str] = field(default_factory=list)

    def add(self, node: ast.AST | None, reason: str) -> None:
        line = getattr(node, "lineno", "?")
        self.violations.append(f"line {line}: {reason}")


class _Checker(ast.NodeVisitor):
    def __init__(self, policy: VerifierPolicy, findings: _Findings) -> None:
        self.policy = policy
        self.findings = findings

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root not in self.policy.allowed_imports:
                self.findings.add(node, f"import of {alias.name!r} not allowed")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".", 1)[0]
        if node.level != 0:
            self.findings.add(node, "relative imports not allowed")
        elif root not in self.policy.allowed_imports:
            self.findings.add(node, f"import from {node.module!r} not allowed")
        self.generic_visit(node)

    # -- attribute access ---------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.startswith("_"):
            self.findings.add(
                node, f"access to underscore attribute {node.attr!r} not allowed"
            )
        self.generic_visit(node)

    # -- names ------------------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.policy.banned_names:
            self.findings.add(node, f"use of banned name {node.id!r}")
        elif node.id.startswith("__") and node.id.endswith("__"):
            self.findings.add(node, f"use of dunder name {node.id!r}")
        self.generic_visit(node)

    # -- definitions: dunder method names are allowed only for a safe set ---------

    _SAFE_DUNDER_DEFS = frozenset(
        {
            "__init__",
            "__repr__",
            "__str__",
            "__eq__",
            "__ne__",
            "__lt__",
            "__le__",
            "__gt__",
            "__ge__",
            "__hash__",
            "__len__",
            "__iter__",
            "__next__",
            "__contains__",
            "__add__",
            "__sub__",
            "__mul__",
            "__call__",
        }
    )

    def _check_def_name(self, node: ast.AST, name: str) -> None:
        if name.startswith("__") and name.endswith("__"):
            if name not in self._SAFE_DUNDER_DEFS:
                self.findings.add(node, f"definition of dunder {name!r} not allowed")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Decorator expressions are ordinary Name/Attribute nodes and are
        # covered by generic_visit.
        self._check_def_name(node, node.name)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.findings.add(node, "async functions not allowed in agent code")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_def_name(node, node.name)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    self._check_def_name(sub, sub.id)
        self.generic_visit(node)

    # -- misc dangerous constructs ---------------------------------------------------

    def visit_Await(self, node: ast.Await) -> None:
        self.findings.add(node, "await not allowed in agent code")

    def visit_Yield(self, node: ast.Yield) -> None:
        # generators are fine; nothing to check
        self.generic_visit(node)


def verify_source(source: str, policy: VerifierPolicy | None = None) -> ast.Module:
    """Verify agent source; returns the parsed module or raises.

    Raises :class:`~repro.errors.CodeVerificationError` whose message
    lists every violation found.
    """
    policy = policy or VerifierPolicy()
    raw = source.encode("utf-8", errors="replace")
    if len(raw) > policy.max_source_bytes:
        raise CodeVerificationError(
            f"source too large ({len(raw)} bytes > {policy.max_source_bytes})"
        )
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise CodeVerificationError(f"syntax error: {exc}") from exc
    node_count = sum(1 for _ in ast.walk(tree))
    if node_count > policy.max_ast_nodes:
        raise CodeVerificationError(
            f"AST too large ({node_count} nodes > {policy.max_ast_nodes})"
        )
    findings = _Findings()
    _Checker(policy, findings).visit(tree)
    if findings.violations:
        detail = "; ".join(findings.violations)
        raise CodeVerificationError(f"code verification failed: {detail}")
    return tree

"""The security manager: a reference monitor for privileged operations.

Section 3.2 (component 3) and section 5.3: all security-sensitive
host-level operations call ``check`` before proceeding.  Decisions are a
function of the *current protection domain* (derived from the thread
group, section 5.3) and, for agent domains, the agent's effective rights
(``system.<operation>`` permissions).  Every decision — allow or deny —
is written to the audit log, as a reference monitor must be auditable.

Per the paper's design choice (section 5.4), the security manager is kept
*generic*: it protects system-level operations (thread manipulation,
domain-database writes, registry mutation) and does **not** mediate
application resources — those are the proxies' job.  The
``SecurityManagerChecked`` baseline in :mod:`repro.core.baselines`
deliberately violates this separation so the benchmarks can quantify why
the paper avoided it.
"""

from __future__ import annotations

from repro.errors import PrivilegeError
from repro.sandbox.domain import ProtectionDomain, current_domain
from repro.sandbox.threadgroup import ThreadGroup
from repro.util.audit import AuditLog

__all__ = ["SecurityManager"]


class SecurityManager:
    """Reference monitor bound to one server's domain."""

    def __init__(self, server_domain: ProtectionDomain, audit: AuditLog) -> None:
        if not server_domain.is_server:
            raise PrivilegeError("security manager must be anchored to a server domain")
        self._server_domain = server_domain
        self._audit = audit
        self._sealed = False

    # -- installation semantics ----------------------------------------------

    def seal(self) -> None:
        """After sealing, the manager can never be replaced (section 3.2)."""
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    # -- the mediation point ---------------------------------------------------

    def _requester(self) -> ProtectionDomain | None:
        return current_domain()

    def check(self, operation: str, target: str = "", detail: str = "") -> None:
        """Allow or deny ``operation`` for the current domain.

        Server-domain code is fully privileged.  Agent-domain code needs
        a ``system.<operation>`` permission in its effective rights.
        Unmanaged contexts (no domain at all) are denied: fail closed.
        """
        domain = self._requester()
        if domain is None:
            self._audit.record("<none>", f"secman.{operation}", target, False,
                               "no protection domain")
            raise PrivilegeError(
                f"operation {operation!r} attempted outside any protection domain"
            )
        if domain.is_server:
            self._audit.record(domain.domain_id, f"secman.{operation}", target,
                               True, "server domain")
            return
        permission = f"system.{operation}"
        credentials = domain.credentials
        allowed = (
            credentials is not None
            and credentials.effective_rights().permits(permission)
        )
        self._audit.record(
            domain.domain_id, f"secman.{operation}", target, allowed, detail
        )
        if not allowed:
            raise PrivilegeError(
                f"domain {domain.domain_id!r} denied {operation!r}"
                + (f" on {target!r}" if target else "")
            )

    # -- specific checks used across the server ----------------------------------

    def check_thread_create(self, target_group: ThreadGroup) -> None:
        """Threads may only be created inside the requester's own group.

        The paper's worked example (section 5.3): "a thread executing in
        an agent's domain is not allowed to create a new thread in a
        different thread group whereas a server thread is allowed to".
        """
        domain = self._requester()
        if domain is None:
            self._audit.record("<none>", "secman.thread_create",
                               target_group.name, False, "no protection domain")
            raise PrivilegeError("thread creation outside any protection domain")
        if domain.is_server:
            self._audit.record(domain.domain_id, "secman.thread_create",
                               target_group.name, True, "server domain")
            return
        if target_group.is_within(domain.thread_group):
            self._audit.record(domain.domain_id, "secman.thread_create",
                               target_group.name, True, "own group")
            return
        self._audit.record(domain.domain_id, "secman.thread_create",
                           target_group.name, False, "foreign group")
        raise PrivilegeError(
            f"domain {domain.domain_id!r} may not create threads in"
            f" group {target_group.name!r}"
        )

    def check_group_modify(self, target_group: ThreadGroup, detail: str = "") -> None:
        """Thread-group manipulation is a privileged operation (section 5.3).

        ``detail`` lets interventions carry their reason into the audit
        trail (e.g. runaway kills), so post-mortems read the *why* from
        the record instead of correlating log lines.
        """
        domain = self._requester()
        allowed = domain is not None and domain.is_server
        self._audit.record(
            domain.domain_id if domain else "<none>",
            "secman.group_modify",
            target_group.name,
            allowed,
            detail,
        )
        if not allowed:
            raise PrivilegeError("thread-group manipulation is server-only")

    def check_server_only(self, operation: str, target: str = "") -> None:
        """Operations only the server domain may perform (domain-db writes,
        registry mutation, security-manager replacement)."""
        domain = self._requester()
        allowed = domain is not None and domain.is_server
        self._audit.record(
            domain.domain_id if domain else "<none>",
            f"secman.{operation}",
            target,
            allowed,
        )
        if not allowed:
            raise PrivilegeError(f"operation {operation!r} is server-only")

"""Protection domains: one per agent, one for the server itself.

A domain ties together the three per-agent isolation artifacts of
section 5.3 — the thread group (identification), the namespace (code
isolation), and the agent's validated credentials (authorization input) —
under a single id that the domain database and audit log key on.

Each domain also carries its protection **ring** — the trust tier the
admission policy assigned on arrival (``repro.core.token``: ring 0
trusted launcher, ring 1 verified, ring 2 untrusted).  The ring selects
how much per-invocation bookkeeping the domain's proxies pay; it never
affects *whether* an access is authorized.  The default is ring 1 for
every kind of domain, so deployments without an explicit ring policy
behave exactly as before rings existed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.token import RING_VERIFIED
from repro.sandbox.namespace import AgentNamespace
from repro.sandbox.threadgroup import ThreadGroup, current_group

if TYPE_CHECKING:  # pragma: no cover
    from repro.credentials.delegation import DelegatedCredentials

__all__ = ["ProtectionDomain", "current_domain"]


class ProtectionDomain:
    """The unit of isolation and authorization on a server."""

    __slots__ = (
        "domain_id", "kind", "thread_group", "namespace", "credentials", "ring",
    )

    def __init__(
        self,
        domain_id: str,
        kind: str,  # "server" | "agent"
        thread_group: ThreadGroup,
        namespace: AgentNamespace | None = None,
        credentials: "DelegatedCredentials | None" = None,
        ring: int = RING_VERIFIED,
    ) -> None:
        if kind not in ("server", "agent"):
            raise ValueError(f"domain kind must be 'server' or 'agent', not {kind!r}")
        self.domain_id = domain_id
        self.kind = kind
        self.thread_group = thread_group
        self.namespace = namespace
        self.credentials = credentials
        self.ring = ring
        thread_group.domain = self

    @property
    def is_server(self) -> bool:
        return self.kind == "server"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProtectionDomain({self.domain_id!r}, {self.kind})"


def current_domain() -> ProtectionDomain | None:
    """The protection domain of the currently executing code.

    Walks up the thread-group hierarchy so that a child thread group an
    agent was allowed to create still maps back to the agent's domain.
    """
    group = current_group()
    while group is not None:
        if group.domain is not None:
            return group.domain
        group = group.parent
    return None

"""Seeded random-number streams.

Experiments need independent, reproducible randomness per component (one
stream for the workload generator, one per adversary, one for key
generation, ...).  Substreams are derived from a master seed and a string
label via SHA-256, so adding a new component never perturbs the streams of
existing ones — the standard trick for reproducible parallel experiments.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_seed", "make_rng"]


def derive_seed(master_seed: int, label: str) -> int:
    """Derive a 64-bit substream seed from ``master_seed`` and ``label``."""
    material = f"{master_seed}:{label}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(master_seed: int, label: str = "") -> random.Random:
    """Return an independent :class:`random.Random` substream.

    Two calls with the same ``(master_seed, label)`` produce identical
    streams; different labels produce statistically independent ones.
    """
    return random.Random(derive_seed(master_seed, label))

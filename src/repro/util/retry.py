"""Retries with backoff, and circuit breakers, on the simulation clock.

The transfer protocol ships agents over an open, unreliable internet
(section 2): requests and replies get lost, links flap, peers crash.  The
recovery idiom everywhere in the codebase is the same — retry with
exponential backoff and seeded jitter, give up after a bounded number of
attempts or an overall deadline, and stop hammering a destination that
keeps failing.  This module packages that idiom once:

* :class:`RetryPolicy` — the immutable knobs (attempts, backoff curve,
  jitter, deadlines).  Jitter draws from a caller-supplied seeded RNG
  stream (:mod:`repro.util.rng`), so runs stay bit-reproducible.
* :func:`call_with_retries` — drives a callable under a policy from a
  simulated thread; sleeps between attempts burn *virtual* time on the
  kernel clock, never wall time.
* :class:`CircuitBreaker` — per-destination failure accounting
  (closed → open → half-open) so a dead host fails fast instead of
  burning a full retry schedule per caller.

Retries are only safe when the remote operation is idempotent; the agent
transfer path makes itself idempotent with transfer-id deduplication
(:mod:`repro.server.journal`) before using this machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import (
    CircuitOpenError,
    NetworkError,
    RetryExhaustedError,
    SimulationError,
)
from repro.obs import runtime as _obs
from repro.sim.kernel import Kernel

__all__ = ["RetryPolicy", "CircuitBreaker", "call_with_retries"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How often, and how patiently, to retry a failing operation.

    ``attempts`` counts *total* tries (1 = no retries).  The delay before
    retry *k* (k >= 1) is ``base_delay * multiplier**(k-1)`` capped at
    ``max_delay``, then spread by ``jitter`` (a ±fraction drawn from the
    caller's RNG).  ``overall_deadline`` bounds the whole schedule in
    virtual seconds from the first attempt.
    """

    attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 15.0
    jitter: float = 0.25
    overall_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1.0:
            raise ValueError("invalid backoff parameters")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delay_before(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before attempt number ``attempt`` (1-based retries)."""
        if attempt < 1:
            return 0.0
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class CircuitBreaker:
    """Per-destination failure gate: closed → open → half-open.

    After ``failure_threshold`` consecutive recorded failures the breaker
    opens: :meth:`allow` answers False (callers should fail fast) until
    ``reset_timeout`` virtual seconds pass, at which point the breaker
    half-opens and lets probes through.  A success closes it again; a
    failure while half-open re-opens it immediately.
    """

    def __init__(
        self,
        clock,
        *,
        failure_threshold: int = 8,
        reset_timeout: float = 60.0,
    ) -> None:
        if failure_threshold < 1 or reset_timeout < 0:
            raise ValueError("invalid circuit-breaker parameters")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self.times_opened = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (time-aware)."""
        if (
            self._state == "open"
            and self._clock.now() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half_open"
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """May a caller attempt the destination right now?"""
        return self.state != "open"

    def record_success(self) -> None:
        self._failures = 0
        self._state = "closed"

    def record_failure(self) -> None:
        self._failures += 1
        state = self.state
        if state == "half_open" or (
            state == "closed" and self._failures >= self.failure_threshold
        ):
            self._state = "open"
            self._opened_at = self._clock.now()
            self.times_opened += 1


def call_with_retries(
    fn: Callable[[int], Any],
    *,
    kernel: Kernel,
    policy: RetryPolicy,
    rng: random.Random | None = None,
    retry_on: tuple[type[BaseException], ...] = (NetworkError,),
    breaker: CircuitBreaker | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
    exhausted: type[RetryExhaustedError] = RetryExhaustedError,
    describe: str = "operation",
) -> Any:
    """Run ``fn(attempt_index)`` under ``policy``; return its result.

    Backoff sleeps require a simulated-thread context (they park the
    calling thread on the kernel clock).  ``on_retry(attempt, exc)``
    fires after a retryable failure, *before* the backoff sleep — the
    hook point for dropping a possibly-stale channel or bumping stats.
    Raises ``exhausted`` (default :class:`RetryExhaustedError`) wrapping
    the last error once every attempt failed, or
    :class:`CircuitOpenError` as soon as ``breaker`` refuses.
    """
    clock = kernel.clock
    deadline = (
        clock.now() + policy.overall_deadline
        if policy.overall_deadline is not None
        else None
    )
    last: BaseException | None = None
    attempts_made = 0
    for attempt in range(policy.attempts):
        if breaker is not None and not breaker.allow():
            if _obs.TRACING:
                # An event, not a span: the fast-fail does no work worth
                # timing, but the trace must show *why* nothing happened.
                _obs.TRACER.add_event(
                    "breaker_open",
                    describe=describe,
                    failures=breaker.consecutive_failures,
                )
            raise CircuitOpenError(
                f"circuit open for {describe} "
                f"(after {breaker.consecutive_failures} consecutive failures)"
            )
        if attempt:
            delay = policy.delay_before(attempt, rng)
            if deadline is not None:
                remaining = deadline - clock.now()
                if remaining <= 0:
                    break
                delay = min(delay, remaining)
            if delay > 0:
                thread = kernel.current_thread()
                if thread is None:
                    raise SimulationError(
                        "call_with_retries backoff requires a simulated thread"
                    )
                thread.sleep(delay)
        attempts_made += 1
        try:
            result = fn(attempt)
        except retry_on as exc:
            last = exc
            if breaker is not None:
                breaker.record_failure()
            if _obs.TRACING:
                # Retransmissions are span *events* on the current span,
                # never fresh spans — a lossy transfer stays one hop in
                # the trace no matter how many resends it took.
                _obs.TRACER.add_event(
                    "retry",
                    describe=describe,
                    attempt=attempt + 1,
                    error=f"{type(exc).__name__}: {exc}",
                )
            if deadline is not None and clock.now() >= deadline:
                break
            if attempt + 1 < policy.attempts and on_retry is not None:
                on_retry(attempt + 1, exc)
            continue
        if breaker is not None:
            breaker.record_success()
        return result
    raise exhausted(
        f"{describe} failed after {attempts_made} attempt(s): {last}",
        attempts=attempts_made,
        last_error=last,
    ) from last

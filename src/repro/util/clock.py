"""Clock abstraction.

Security mechanisms in the paper are time-dependent — credential
expiration (section 5.2), proxy expiration and time-based revocation
(section 5.5), elapsed-time usage metering — so every component reads time
through a :class:`Clock` rather than calling ``time.time()`` directly.

Two implementations are provided:

* :class:`VirtualClock` — driven by the discrete-event simulation kernel;
  deterministic, lets tests express "advance past the proxy's expiry".
* :class:`WallClock` — real time, for the micro-benchmarks that measure
  actual Python-level overheads.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.errors import SchedulingError

__all__ = ["Clock", "VirtualClock", "WallClock"]


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now()`` returning seconds as a float."""

    def now(self) -> float:
        """Current time in seconds."""
        ...


class VirtualClock:
    """A settable clock advanced explicitly (by tests or the sim kernel)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise SchedulingError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time; must not move backwards."""
        if timestamp < self._now:
            raise SchedulingError(
                f"clock cannot move backwards ({timestamp} < {self._now})"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now})"


class WallClock:
    """Real time via ``time.monotonic`` (offset so it starts near zero)."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

"""Deterministic unique-id generation.

The whole reproduction is deterministic by default (seeded RNG, virtual
clock), so ids are counter-based rather than random UUIDs.  Each
:class:`IdGenerator` owns an independent counter; components that need
globally unique ids derive them from a generator scoped to their owner
(e.g. one per agent server), prefixed with the owner's name.
"""

from __future__ import annotations

import itertools
import threading

__all__ = ["IdGenerator"]


class IdGenerator:
    """Produce unique string ids of the form ``<prefix>-<n>``.

    Thread-safe: benches optionally run servers on real threads, and id
    collisions there would corrupt the domain database.
    """

    def __init__(self, prefix: str = "id") -> None:
        self._prefix = prefix
        self._counter = itertools.count()
        self._lock = threading.Lock()

    @property
    def prefix(self) -> str:
        return self._prefix

    def next(self) -> str:
        """Return the next unique id."""
        with self._lock:
            n = next(self._counter)
        return f"{self._prefix}-{n}"

    def next_int(self) -> int:
        """Return the next unique integer (no prefix)."""
        with self._lock:
            return next(self._counter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdGenerator(prefix={self._prefix!r})"

"""Security audit log.

The security manager acts as a *reference monitor* (section 3.2, citing
Ames et al.); a reference monitor must be auditable.  Every mediated
decision — allow or deny — is appended here, so tests and operators can
assert not just that an attack failed but *which mechanism* stopped it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.util.clock import Clock, VirtualClock

__all__ = ["AuditRecord", "AuditLog"]


@dataclass(frozen=True, slots=True)
class AuditRecord:
    """One mediated security decision."""

    time: float
    domain: str  # protection-domain id of the requester ("<server>" for host)
    operation: str  # e.g. "proxy.invoke", "secman.check_thread_create"
    target: str  # resource/method/thread-group the operation addressed
    allowed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - human formatting
        verdict = "ALLOW" if self.allowed else "DENY"
        return f"[{self.time:10.4f}] {verdict:5s} {self.domain} {self.operation} {self.target} {self.detail}"


class AuditLog:
    """Append-only list of :class:`AuditRecord`, with query helpers."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock: Clock = clock if clock is not None else VirtualClock()
        self._records: list[AuditRecord] = []

    def record(
        self,
        domain: str,
        operation: str,
        target: str,
        allowed: bool,
        detail: str = "",
    ) -> AuditRecord:
        rec = AuditRecord(
            time=self._clock.now(),
            domain=domain,
            operation=operation,
            target=target,
            allowed=allowed,
            detail=detail,
        )
        self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def records(
        self,
        *,
        domain: str | None = None,
        operation: str | None = None,
        allowed: bool | None = None,
    ) -> list[AuditRecord]:
        """Filtered view of the log."""
        out = []
        for rec in self._records:
            if domain is not None and rec.domain != domain:
                continue
            if operation is not None and rec.operation != operation:
                continue
            if allowed is not None and rec.allowed != allowed:
                continue
            out.append(rec)
        return out

    def denials(self) -> list[AuditRecord]:
        """All denied operations (the attacks that were stopped)."""
        return self.records(allowed=False)

    def clear(self) -> None:
        self._records.clear()

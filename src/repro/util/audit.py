"""Security audit log.

The security manager acts as a *reference monitor* (section 3.2, citing
Ames et al.); a reference monitor must be auditable.  Every mediated
decision — allow or deny — is appended here, so tests and operators can
assert not just that an attack failed but *which mechanism* stopped it.

Long simulations used to grow the log without bound; a ``capacity``
turns it into a ring buffer (oldest records dropped, tallied in
:attr:`AuditLog.dropped`).  The default stays unlimited so short-lived
tests see everything; the testbed wires a sane default for whole-world
runs.

When tracing is enabled (:mod:`repro.obs.runtime`), each record is
stamped with the span id current at record time, which is what lets the
flight recorder tie an audit decision ("DENY resource.get_proxy") to the
exact protocol step span that produced it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.obs import runtime as _obs
from repro.util.clock import Clock, VirtualClock

__all__ = ["AuditRecord", "AuditLog"]


@dataclass(frozen=True, slots=True)
class AuditRecord:
    """One mediated security decision."""

    time: float
    domain: str  # protection-domain id of the requester ("<server>" for host)
    operation: str  # e.g. "proxy.invoke", "secman.check_thread_create"
    target: str  # resource/method/thread-group the operation addressed
    allowed: bool
    detail: str = ""
    span_id: str = ""  # the trace span active at record time ("" untraced)

    def __str__(self) -> str:  # pragma: no cover - human formatting
        verdict = "ALLOW" if self.allowed else "DENY"
        return f"[{self.time:10.4f}] {verdict:5s} {self.domain} {self.operation} {self.target} {self.detail}"


class AuditLog:
    """Append-only list of :class:`AuditRecord`, with query helpers.

    ``capacity=None`` (default) keeps every record; with a capacity the
    log is a ring buffer and :attr:`dropped` counts evictions.
    """

    def __init__(
        self, clock: Clock | None = None, *, capacity: int | None = None
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("audit capacity must be positive (or None)")
        self._clock: Clock = clock if clock is not None else VirtualClock()
        self.capacity = capacity
        self._records: deque[AuditRecord] = deque(maxlen=capacity)
        self.dropped = 0

    def record(
        self,
        domain: str,
        operation: str,
        target: str,
        allowed: bool,
        detail: str = "",
    ) -> AuditRecord:
        span_id = ""
        if _obs.TRACING:
            span = _obs.TRACER.current_span()
            if span is not None:
                span_id = span.span_id
        rec = AuditRecord(
            time=self._clock.now(),
            domain=domain,
            operation=operation,
            target=target,
            allowed=allowed,
            detail=detail,
            span_id=span_id,
        )
        if (
            self.capacity is not None
            and len(self._records) == self.capacity
        ):
            self.dropped += 1  # deque(maxlen) evicts the oldest on append
        self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    def records(
        self,
        *,
        domain: str | None = None,
        operation: str | None = None,
        allowed: bool | None = None,
    ) -> list[AuditRecord]:
        """Filtered view of the log."""
        out = []
        for rec in self._records:
            if domain is not None and rec.domain != domain:
                continue
            if operation is not None and rec.operation != operation:
                continue
            if allowed is not None and rec.allowed != allowed:
                continue
            out.append(rec)
        return out

    def as_dict(self) -> dict[str, int | float]:
        """Metrics-source protocol (``register_source("audit", log)``).

        ``dropped`` is the load-bearing number: silent ring-buffer
        evictions mean security decisions went unrecorded, which the
        SLO watchdog (:func:`repro.obs.slo.audit_drop_residual`) treats
        as a violated conservation law.  ``records`` and ``occupancy``
        are floats (gauge semantics — a ring buffer's fill level is
        instantaneous, not monotone).
        """
        capacity = self.capacity
        occupancy = (
            len(self._records) / capacity if capacity else 0.0
        )
        return {
            "dropped": self.dropped,
            "records": float(len(self._records)),
            "capacity": float(capacity or 0),
            "occupancy": occupancy,
        }

    def by_span(self, span_id: str) -> list[AuditRecord]:
        """Records stamped with the given trace span id."""
        return [rec for rec in self._records if rec.span_id == span_id]

    def denials(self) -> list[AuditRecord]:
        """All denied operations (the attacks that were stopped)."""
        return self.records(allowed=False)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

"""Canonical, pickle-free structured serialization.

Two properties drive this design, both demanded by the paper:

1. **Safety.**  Agent servers decode byte strings received from untrusted
   peers (arriving agents, section 5.1).  ``pickle`` would let a malicious
   sender execute arbitrary code during decoding — precisely the attack the
   whole system exists to prevent.  This codec instantiates only classes
   explicitly registered with :func:`register_serializable`, and object
   reconstruction goes through the class's own ``from_state`` with plain
   data, never through ``__reduce__``-style code execution.

2. **Canonicality.**  Credentials (section 5.2) and the agent transfer
   protocol sign serialized values; signature verification requires that
   the same value always encodes to the same bytes.  Dictionaries and sets
   are therefore encoded with entries sorted by their encoded byte string,
   ints use a zigzag varint, and floats a fixed 8-byte IEEE-754 encoding.

Supported values: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``list``, ``tuple``, ``set``, ``frozenset``, ``dict`` and
registered :class:`Serializable` objects, nested arbitrarily (up to a depth
guard).  Cycles are rejected.
"""

from __future__ import annotations

import struct
from typing import Any, Protocol, runtime_checkable

from repro.errors import SerializationError

__all__ = [
    "Serializable",
    "register_serializable",
    "registered_class",
    "encode",
    "decode",
    "canonical_digest",
    "MAX_DEPTH",
]

MAX_DEPTH = 64

# Type tags (single ASCII byte each).
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_TUPLE = b"U"
_T_SET = b"E"
_T_FROZENSET = b"R"
_T_DICT = b"M"
_T_OBJECT = b"O"


@runtime_checkable
class Serializable(Protocol):
    """Objects that can cross the wire.

    ``to_state`` must return a value composed only of supported types;
    ``from_state`` must reconstruct an equivalent object from such a value.
    """

    def to_state(self) -> Any: ...

    @classmethod
    def from_state(cls, state: Any) -> "Serializable": ...


_ENCODERS: dict[type, str] = {}
_DECODERS: dict[str, type] = {}

# Value-interning for immutable registered classes (``intern=True``):
# certificates, public keys and appraisal links recur verbatim in every
# credential chain and every appraisal record that crosses the wire, so
# their frames are memoized in both directions — value → frame bytes on
# encode, (name, state bytes) → shared instance on decode.  Only safe
# for deeply immutable classes, because decoded instances are shared.
_INTERN_TYPES: set[type] = set()
_ENCODE_CACHE: dict[Any, bytes] = {}
_DECODE_CACHE: dict[tuple[str, bytes], Any] = {}
_INTERN_CAPACITY = 4096


def register_serializable(
    cls: type, name: str | None = None, *, intern: bool = False
) -> type:
    """Register ``cls`` for object serialization (usable as a decorator).

    The registered *name* (default: ``module:qualname``) is what appears in
    the byte stream; decoding a name that was never registered raises
    :class:`SerializationError` instead of importing anything.

    ``intern=True`` opts the class into frame memoization: its instances
    must be deeply immutable and hashable by value, and decoding equal
    bytes may return a shared instance.
    """
    if not hasattr(cls, "to_state") or not hasattr(cls, "from_state"):
        raise SerializationError(
            f"{cls!r} must define to_state() and from_state() to be serializable"
        )
    key = name if name is not None else f"{cls.__module__}:{cls.__qualname__}"
    existing = _DECODERS.get(key)
    if existing is not None and existing is not cls:
        raise SerializationError(f"serialization name {key!r} already registered")
    _ENCODERS[cls] = key
    _DECODERS[key] = cls
    if intern:
        _INTERN_TYPES.add(cls)
    return cls


def registered_class(name: str) -> type:
    """Look up the class registered under ``name``."""
    try:
        return _DECODERS[name]
    except KeyError:
        raise SerializationError(f"unknown serializable type {name!r}") from None


# ---------------------------------------------------------------------------
# Varint primitives (unsigned LEB128; zigzag for signed ints)
# ---------------------------------------------------------------------------


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 1024:  # ints can be big (RSA moduli) but not unbounded
            raise SerializationError("varint too long")


def _zigzag_encode(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _zigzag_decode(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def _encode_into(out: bytearray, value: Any, depth: int, active: set[int]) -> None:
    if depth > MAX_DEPTH:
        raise SerializationError(f"value nesting exceeds MAX_DEPTH={MAX_DEPTH}")
    if value is None:
        out += _T_NONE
    elif value is True:
        out += _T_TRUE
    elif value is False:
        out += _T_FALSE
    elif type(value) is int:
        out += _T_INT
        _write_uvarint(out, _zigzag_encode(value))
    elif type(value) is float:
        out += _T_FLOAT
        out += struct.pack(">d", value)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out += _T_STR
        _write_uvarint(out, len(raw))
        out += raw
    elif type(value) in (bytes, bytearray):
        out += _T_BYTES
        _write_uvarint(out, len(value))
        out += bytes(value)
    elif type(value) is list:
        _encode_sequence(out, _T_LIST, value, depth, active)
    elif type(value) is tuple:
        _encode_sequence(out, _T_TUPLE, value, depth, active)
    elif type(value) in (set, frozenset):
        tag = _T_SET if type(value) is set else _T_FROZENSET
        items = sorted(_encode_one(v, depth + 1, active) for v in value)
        out += tag
        _write_uvarint(out, len(items))
        for item in items:
            out += item
    elif type(value) is dict:
        entries = sorted(
            (_encode_one(k, depth + 1, active), _encode_one(v, depth + 1, active))
            for k, v in value.items()
        )
        out += _T_DICT
        _write_uvarint(out, len(entries))
        for key_bytes, val_bytes in entries:
            out += key_bytes
            out += val_bytes
    else:
        _encode_object(out, value, depth, active)


def _encode_sequence(
    out: bytearray, tag: bytes, value: Any, depth: int, active: set[int]
) -> None:
    marker = id(value)
    if marker in active:
        raise SerializationError("cyclic value cannot be serialized")
    active.add(marker)
    try:
        out += tag
        _write_uvarint(out, len(value))
        for item in value:
            _encode_into(out, item, depth + 1, active)
    finally:
        active.discard(marker)


def _encode_object(out: bytearray, value: Any, depth: int, active: set[int]) -> None:
    name = _ENCODERS.get(type(value))
    if name is None:
        raise SerializationError(
            f"cannot serialize unregistered type {type(value).__qualname__}"
        )
    interned = type(value) in _INTERN_TYPES
    if interned:
        cached = _ENCODE_CACHE.get(value)
        if cached is not None:
            out += cached
            return
    marker = id(value)
    if marker in active:
        raise SerializationError("cyclic value cannot be serialized")
    active.add(marker)
    try:
        raw = name.encode("utf-8")
        frame = bytearray()
        frame += _T_OBJECT
        _write_uvarint(frame, len(raw))
        frame += raw
        state = bytearray()
        _encode_into(state, value.to_state(), depth + 1, active)
        _write_uvarint(frame, len(state))
        frame += state
        out += frame
        if interned:
            if len(_ENCODE_CACHE) >= _INTERN_CAPACITY:
                _ENCODE_CACHE.clear()
            _ENCODE_CACHE[value] = bytes(frame)
    finally:
        active.discard(marker)


def _encode_one(value: Any, depth: int, active: set[int]) -> bytes:
    buf = bytearray()
    _encode_into(buf, value, depth, active)
    return bytes(buf)


def encode(value: Any) -> bytes:
    """Serialize ``value`` to canonical bytes."""
    out = bytearray()
    _encode_into(out, value, 0, set())
    return bytes(out)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _decode_from(data: bytes, pos: int, depth: int) -> tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise SerializationError(f"value nesting exceeds MAX_DEPTH={MAX_DEPTH}")
    if pos >= len(data):
        raise SerializationError("truncated value")
    tag = data[pos : pos + 1]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        raw, pos = _read_uvarint(data, pos)
        return _zigzag_decode(raw), pos
    if tag == _T_FLOAT:
        if pos + 8 > len(data):
            raise SerializationError("truncated float")
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == _T_STR:
        length, pos = _read_uvarint(data, pos)
        _check_length(data, pos, length)
        try:
            return data[pos : pos + length].decode("utf-8"), pos + length
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid utf-8 in string") from exc
    if tag == _T_BYTES:
        length, pos = _read_uvarint(data, pos)
        _check_length(data, pos, length)
        return data[pos : pos + length], pos + length
    if tag in (_T_LIST, _T_TUPLE, _T_SET, _T_FROZENSET):
        count, pos = _read_uvarint(data, pos)
        _check_length(data, pos, count)  # each item is at least one byte
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos, depth + 1)
            items.append(item)
        if tag == _T_LIST:
            return items, pos
        if tag == _T_TUPLE:
            return tuple(items), pos
        if tag == _T_SET:
            return set(items), pos
        return frozenset(items), pos
    if tag == _T_DICT:
        count, pos = _read_uvarint(data, pos)
        _check_length(data, pos, count)
        result: dict[Any, Any] = {}
        # Canonical encodings list entries sorted by encoded key, so the
        # key bytes must be strictly increasing.  Enforcing that here
        # rejects duplicate keys (a smuggling vector: two ``transfer_id``
        # entries where validation sees one and use sees the other) and
        # makes every accepted encoding bit-for-bit re-encodable.
        prev_key: bytes | None = None
        for _ in range(count):
            key_start = pos
            key, pos = _decode_from(data, pos, depth + 1)
            key_bytes = data[key_start:pos]
            if prev_key is not None and key_bytes <= prev_key:
                raise SerializationError(
                    "non-canonical dict encoding (duplicate or unsorted keys)"
                )
            prev_key = key_bytes
            val, pos = _decode_from(data, pos, depth + 1)
            result[key] = val
        return result, pos
    if tag == _T_OBJECT:
        length, pos = _read_uvarint(data, pos)
        _check_length(data, pos, length)
        try:
            name = data[pos : pos + length].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid utf-8 in type name") from exc
        pos += length
        cls = registered_class(name)
        state_len, pos = _read_uvarint(data, pos)
        _check_length(data, pos, state_len)
        end = pos + state_len
        if cls in _INTERN_TYPES:
            key = (name, data[pos:end])
            cached = _DECODE_CACHE.get(key)
            if cached is not None:
                return cached, end
        state, state_end = _decode_from(data, pos, depth + 1)
        if state_end != end:
            raise SerializationError(
                f"object state length mismatch for {name!r}"
            )
        try:
            obj = cls.from_state(state)
        except SerializationError:
            raise
        except Exception as exc:
            raise SerializationError(
                f"from_state failed for {name!r}: {exc}"
            ) from exc
        if cls in _INTERN_TYPES:
            if len(_DECODE_CACHE) >= _INTERN_CAPACITY:
                _DECODE_CACHE.clear()
            _DECODE_CACHE[name, data[pos:end]] = obj
        return obj, end
    raise SerializationError(f"unknown type tag {tag!r}")


def _check_length(data: bytes, pos: int, length: int) -> None:
    if length > len(data) - pos:
        raise SerializationError("declared length exceeds remaining data")


def decode(data: bytes) -> Any:
    """Deserialize canonical bytes produced by :func:`encode`.

    Safe on untrusted input: no code execution beyond registered
    ``from_state`` constructors, and all declared lengths are validated
    against the buffer before allocation.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise SerializationError(f"decode expects bytes, got {type(data).__name__}")
    value, pos = _decode_from(bytes(data), 0, 0)
    if pos != len(data):
        raise SerializationError(f"{len(data) - pos} trailing bytes after value")
    return value


def canonical_digest(value: Any) -> bytes:
    """SHA-256 digest of the canonical encoding of ``value``.

    This is what credentials and transfer envelopes actually sign.
    """
    import hashlib

    return hashlib.sha256(encode(value)).digest()

"""Shared utilities: ids, clocks, RNG streams, serialization, audit log."""

from repro.util.clock import Clock, VirtualClock, WallClock
from repro.util.ids import IdGenerator
from repro.util.rng import derive_seed, make_rng
from repro.util.serialization import (
    Serializable,
    canonical_digest,
    decode,
    encode,
    register_serializable,
)
from repro.util.audit import AuditLog, AuditRecord

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "IdGenerator",
    "derive_seed",
    "make_rng",
    "Serializable",
    "canonical_digest",
    "decode",
    "encode",
    "register_serializable",
    "AuditLog",
    "AuditRecord",
]

"""Deterministic, schedule-driven fault injection for experiments.

A :class:`FaultInjector` turns a handful of adversity primitives — link
flaps, partitions, loss bursts, server crash/restart — into kernel
events: a test or benchmark declares its whole fault schedule up front
and then simply runs the simulation.  Everything keys off the virtual
clock, and loss bursts draw from seeded RNG substreams
(:func:`repro.util.rng.make_rng`), so a given schedule replays
bit-for-bit across runs.

The injector never reaches into protocol internals: links go down via
:meth:`Network.set_link_state` (routing recomputes, messages in flight
on the link are lost), loss is the links' own Bernoulli drop, and a
crash is whatever the crashed object's ``crash()``/``restart()`` methods
implement (duck-typed; :class:`repro.server.agent_server.AgentServer`
provides the fail-stop-with-journal semantics).

**Malicious hosts** (the red-team campaign of the integrity layer) are
the one exception to the wire-only rule: :meth:`FaultInjector.compromise`
installs a :class:`MaliciousHost` controller as a server's
``outbound_tamper`` hook, turning that server into an adversary that
rewrites agent state, edits travel history, forges itineraries, diverts
agents to a colluding partner, or captures images for later replay
(:meth:`FaultInjector.replay_capture`).  Behaviors are pure functions
over the outgoing ``(image, destination)`` pair, composed in order, so a
scenario is declared the same way a link flap is — scheduled up front,
deterministic, and annotated in the fault log and trace.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.agents.integrity import APPRAISAL_ATTRIBUTE, COMMITMENT_ATTRIBUTE
from repro.agents.itinerary import ItineraryCommitment
from repro.agents.transfer import AgentImage
from repro.crypto.mac import HmacKey
from repro.errors import ReproError
from repro.net.network import Network
from repro.obs import runtime as _obs
from repro.sim.kernel import Kernel
from repro.sim.monitor import Counter
from repro.sim.threads import SimThread
from repro.util.rng import make_rng
from repro.util.serialization import decode, encode

__all__ = [
    "FaultInjector",
    "MaliciousHost",
    "capture",
    "drop_hop",
    "forge_itinerary",
    "redirect",
    "reorder_hops",
    "strip_chain",
    "strip_delegation",
    "strip_itinerary",
    "tamper_state",
]

# A malicious-host behavior: rewrites what a compromised server is about
# to put on the wire.  Composable; applied in order.
Behavior = Callable[
    ["MaliciousHost", AgentImage, str], "tuple[AgentImage, str]"
]


class MaliciousHost:
    """One compromised server's outbound-tamper controller.

    Installed (and removed) on schedule by
    :meth:`FaultInjector.compromise`; every agent the server forwards
    while compromised passes through the behavior list.  The controller
    keeps what the behaviors saw (``captured``) and how often it fired
    (``applied``) for test assertions.
    """

    def __init__(
        self, injector: "FaultInjector", server: Any, behaviors: tuple
    ) -> None:
        self.injector = injector
        self.server = server
        self.behaviors = behaviors
        self.applied = 0
        self.captured: list[tuple[AgentImage, str]] = []

    def __call__(
        self, image: AgentImage, destination: str
    ) -> tuple[AgentImage, str]:
        for behavior in self.behaviors:
            image, destination = behavior(self, image, destination)
        self.applied += 1
        self.injector._note(
            "malice_applied",
            f"{getattr(self.server, 'name', self.server)}->{destination}",
        )
        return image, destination


# -- behaviors (the attack catalogue) ---------------------------------------


def tamper_state(**updates: Any) -> Behavior:
    """State rewrite: doctor the captured state *after* it was sealed."""

    def behavior(host, image, destination):
        return (
            dataclasses.replace(image, state={**image.state, **updates}),
            destination,
        )

    return behavior


def drop_hop(index: int = -1) -> Behavior:
    """Hop deletion: erase one visited server from history (trace + link)."""

    def behavior(host, image, destination):
        chain = image.attributes.get(APPRAISAL_ATTRIBUTE) or ()
        trace = list(image.trace)
        if chain and len(trace) == len(chain):
            idx = index % len(chain)
            chain = tuple(link for i, link in enumerate(chain) if i != idx)
            del trace[idx]
        return (
            dataclasses.replace(
                image, trace=tuple(trace)
            ).with_attributes(**{APPRAISAL_ATTRIBUTE: chain}),
            destination,
        )

    return behavior


def reorder_hops(i: int = 0, j: int = 1) -> Behavior:
    """Hop reorder: swap two entries of the travel history."""

    def behavior(host, image, destination):
        chain = list(image.attributes.get(APPRAISAL_ATTRIBUTE) or ())
        trace = list(image.trace)
        if len(chain) > max(i, j) and len(trace) == len(chain):
            chain[i], chain[j] = chain[j], chain[i]
            trace[i], trace[j] = trace[j], trace[i]
        return (
            dataclasses.replace(
                image, trace=tuple(trace)
            ).with_attributes(**{APPRAISAL_ATTRIBUTE: tuple(chain)}),
            destination,
        )

    return behavior


def strip_chain() -> Behavior:
    """Remove the appraisal record entirely (a host hiding all history)."""

    def behavior(host, image, destination):
        attributes = {
            k: v
            for k, v in image.attributes.items()
            if k != APPRAISAL_ATTRIBUTE
        }
        return dataclasses.replace(image, attributes=attributes), destination

    return behavior


def forge_itinerary(
    stops: "tuple[tuple[str, str], ...]", key: bytes = b"attacker"
) -> Behavior:
    """Forged itinerary entries: substitute a commitment over ``stops``.

    The attacker MACs the forgery under its own key — the best it can do
    without the home server's secret — so the home-side re-appraisal
    fails the commitment check.
    """

    def behavior(host, image, destination):
        original = image.attributes.get(COMMITMENT_ATTRIBUTE)
        forged = ItineraryCommitment.issue(
            HmacKey(key),
            agent=str(image.name),
            home=original.home if original is not None else image.home_site,
            stops=stops,
            issued_at=original.issued_at if original is not None else 0.0,
        )
        return (
            image.with_attributes(**{COMMITMENT_ATTRIBUTE: forged}),
            destination,
        )

    return behavior


def strip_itinerary() -> Behavior:
    """Drop the itinerary commitment (detected at home: it was sealed)."""

    def behavior(host, image, destination):
        attributes = {
            k: v
            for k, v in image.attributes.items()
            if k != COMMITMENT_ATTRIBUTE
        }
        return dataclasses.replace(image, attributes=attributes), destination

    return behavior


def strip_delegation() -> Behavior:
    """Delegation abuse: shed every attenuating link from the carried
    credentials, regaining the owner-granted rights a forwarding host
    deliberately narrowed.  The stripped chain still *verifies* (each
    link is self-certifying, and zero links is a valid chain) — what
    catches it is the appraisal seal, whose state digest covers the
    credentials as forwarded."""

    def behavior(host, image, destination):
        credentials = image.credentials
        if getattr(credentials, "links", ()):
            credentials = dataclasses.replace(credentials, links=())
            image = dataclasses.replace(image, credentials=credentials)
        return image, destination

    return behavior


def redirect(to: str) -> Behavior:
    """Collusion: divert the agent to a partner host off the sealed path."""

    def behavior(host, image, destination):
        return image, to

    return behavior


def capture() -> Behavior:
    """Passive capture: record the sealed image for later replay."""

    def behavior(host, image, destination):
        host.captured.append((image, destination))
        return image, destination

    return behavior


class FaultInjector:
    """Schedules faults against one network on one kernel."""

    def __init__(self, kernel: Kernel, network: Network, seed: int = 0) -> None:
        self.kernel = kernel
        self.network = network
        self._seed = seed
        self._burst_ids = 0
        self._bursts: dict[int, list[float]] = {}
        # name → severed (a, b) pairs, for named partition/heal pairs.
        self._partitions: dict[str, list[tuple[str, str]]] = {}
        # Partitions already restored: a second heal is a logged no-op.
        self._healed: set[str] = set()
        self.stats = Counter()
        # (virtual time, kind, detail) — what actually fired, for tests
        # and for annotating benchmark output.
        self.log: list[tuple[float, str, str]] = []

    def _note(self, kind: str, detail: str) -> None:
        self.stats.add(kind)
        self.log.append((self.kernel.now(), kind, detail))
        if _obs.TRACING:
            # ``injected=True`` distinguishes scheduled adversity from
            # organic failures when reading a trace.
            _obs.annotate(f"fault.{kind}", detail, injected=True)

    # -- link failures -------------------------------------------------------

    def link_down(
        self, a: str, b: str, at: float, *, duration: float | None = None
    ) -> None:
        """Take the ``a``<->``b`` connection down at virtual time ``at``.

        With ``duration`` the connection comes back by itself; without,
        it stays down until an explicit :meth:`link_up`.
        """
        self.kernel.schedule_at(at, self._set_link, a, b, False)
        if duration is not None:
            self.kernel.schedule_at(at + duration, self._set_link, a, b, True)

    def link_up(self, a: str, b: str, at: float) -> None:
        self.kernel.schedule_at(at, self._set_link, a, b, True)

    def flap(
        self, a: str, b: str, *, start: float, period: float,
        down_for: float, count: int,
    ) -> None:
        """``count`` down/up cycles: down at ``start + k*period``, each
        outage lasting ``down_for`` (must be < ``period`` to be a flap)."""
        for k in range(count):
            self.link_down(a, b, start + k * period, duration=down_for)

    def partition(
        self,
        group_a: list[str],
        group_b: list[str],
        at: float,
        *,
        duration: float | None = None,
    ) -> int:
        """Cut every direct link between the two groups at ``at``.

        Returns how many connections the partition severs.  (Only direct
        links are cut; if the topology routes around the cut, the groups
        can still talk — that is the experiment's business.)
        """
        pairs = [
            (a, b)
            for a in group_a
            for b in group_b
            if self.network.has_link(a, b)
        ]
        for a, b in pairs:
            self.link_down(a, b, at, duration=duration)
        return len(pairs)

    def named_partition(
        self,
        name: str,
        group_a: list[str],
        group_b: list[str],
        *,
        at: float,
        heal_at: float | None = None,
    ) -> int:
        """A :meth:`partition` with a name, begin/heal log events, and an
        explicit heal handle.

        Replication experiments schedule several overlapping partition
        windows and assert on them individually; the name ties the
        ``partition_begin:<name>`` / ``partition_heal:<name>`` fault-log
        entries (and trace annotations) to the scenario step.  Pass
        ``heal_at`` to schedule the heal up front, or call
        :meth:`heal_partition` later.  Returns how many direct links the
        partition severs (computed now, against the current topology).
        """
        if name in self._partitions:
            raise ValueError(f"partition {name!r} already scheduled")
        pairs = [
            (a, b)
            for a in group_a
            for b in group_b
            if self.network.has_link(a, b)
        ]
        self._partitions[name] = pairs
        self.kernel.schedule_at(at, self._begin_partition, name)
        if heal_at is not None:
            if heal_at <= at:
                raise ValueError("heal_at must be after the partition time")
            self.heal_partition(name, at=heal_at)
        return len(pairs)

    def heal_partition(self, name: str, *, at: float) -> None:
        """Restore every link a named partition severed, at time ``at``.

        Idempotent: healing a partition that was never scheduled, or one
        already healed, is a logged no-op — recovery orchestration (and
        chaos scripts replaying fault plans) may issue belt-and-braces
        heals without tracking which fired first.
        """
        if name not in self._partitions:
            self._note(
                f"partition_heal_noop:{name}",
                f"unknown partition {name!r} (nothing to heal)",
            )
            return
        self.kernel.schedule_at(at, self._heal_partition, name)

    def _begin_partition(self, name: str) -> None:
        pairs = self._partitions.get(name, ())
        for a, b in pairs:
            self.network.set_link_state(a, b, False)
        self._healed.discard(name)
        self._note(f"partition_begin:{name}", f"{len(pairs)} links cut")

    def _heal_partition(self, name: str) -> None:
        if name in self._healed:
            self._note(
                f"partition_heal_noop:{name}", "already healed (no-op)"
            )
            return
        pairs = self._partitions.get(name, ())
        for a, b in pairs:
            self.network.set_link_state(a, b, True)
        self._healed.add(name)
        self._note(f"partition_heal:{name}", f"{len(pairs)} links restored")

    def _set_link(self, a: str, b: str, up: bool) -> None:
        self.network.set_link_state(a, b, up)
        self._note("link_up" if up else "link_down", f"{a}<->{b}")

    # -- loss bursts ---------------------------------------------------------

    def loss_burst(
        self, a: str, b: str, *, at: float, duration: float, loss_rate: float
    ) -> None:
        """Degrade both directions of ``a``<->``b`` to ``loss_rate`` for
        the window ``[at, at+duration)``, then restore the previous rates.

        The burst's drop decisions come from a dedicated seeded
        substream, so adding a burst never perturbs other randomness.
        """
        token = self._burst_ids
        self._burst_ids += 1
        self.kernel.schedule_at(at, self._begin_burst, token, a, b, loss_rate)
        self.kernel.schedule_at(at + duration, self._end_burst, token, a, b)

    def _begin_burst(self, token: int, a: str, b: str, loss_rate: float) -> None:
        saved: list[float] = []
        for src, dst in ((a, b), (b, a)):
            link = self.network.link(src, dst)
            saved.append(link.loss_rate)
            link.set_loss_rate(
                loss_rate, make_rng(self._seed, f"burst{token}:{src}->{dst}")
            )
        self._bursts[token] = saved
        self._note("loss_burst_begin", f"{a}<->{b} rate={loss_rate}")

    def _end_burst(self, token: int, a: str, b: str) -> None:
        saved = self._bursts.pop(token, None)
        if saved is None:  # pragma: no cover - defensive
            return
        for (src, dst), rate in zip(((a, b), (b, a)), saved):
            self.network.link(src, dst).set_loss_rate(rate)
        self._note("loss_burst_end", f"{a}<->{b}")

    # -- crashes -------------------------------------------------------------

    def crash(
        self, server: Any, at: float, *, restart_at: float | None = None
    ) -> None:
        """Fail-stop ``server`` at ``at``; optionally restart it later.

        ``server`` is duck-typed: anything with ``crash()`` and
        ``restart()`` (and a ``name`` for the log) works.
        """
        self.kernel.schedule_at(at, self._crash, server)
        if restart_at is not None:
            if restart_at <= at:
                raise ValueError("restart_at must be after the crash time")
            self.kernel.schedule_at(restart_at, self._restart, server)

    def _crash(self, server: Any) -> None:
        server.crash()
        self._note("crashes", getattr(server, "name", repr(server)))

    def _restart(self, server: Any) -> None:
        server.restart()
        self._note("restarts", getattr(server, "name", repr(server)))

    # -- malicious hosts (red-team campaign) -----------------------------------

    def compromise(
        self,
        server: Any,
        *behaviors: Behavior,
        at: float,
        duration: float | None = None,
    ) -> MaliciousHost:
        """Turn ``server`` hostile at ``at``: every agent it forwards is
        run through ``behaviors`` (see the module-level attack catalogue).

        With ``duration`` the compromise ends by itself (the hook is
        removed, but only if it is still this controller's — a later
        re-compromise is not clobbered).  Returns the controller, whose
        ``captured``/``applied`` fields the red-team suite asserts on.
        ``server`` is duck-typed: anything with an ``outbound_tamper``
        attribute and a ``name`` works.
        """
        controller = MaliciousHost(self, server, behaviors)
        self.kernel.schedule_at(at, self._install_malice, server, controller)
        if duration is not None:
            if duration <= 0:
                raise ValueError("compromise duration must be positive")
            self.kernel.schedule_at(
                at + duration, self._remove_malice, server, controller
            )
        return controller

    def _install_malice(self, server: Any, controller: MaliciousHost) -> None:
        server.outbound_tamper = controller
        self._note("host_compromised", getattr(server, "name", repr(server)))

    def _remove_malice(self, server: Any, controller: MaliciousHost) -> None:
        if server.outbound_tamper is controller:
            server.outbound_tamper = None
            self._note("host_restored", getattr(server, "name", repr(server)))

    def replay_capture(
        self,
        server: Any,
        controller: MaliciousHost,
        *,
        at: float,
        index: int = 0,
        destination: str | None = None,
    ) -> None:
        """Replay a captured agent image from ``server`` at time ``at``.

        The replayed offer carries a *fresh* transfer id (a replaying
        attacker is not going to reuse the one the dedup table already
        answered), so only the integrity layer's chain-tip replay record
        can catch it.  ``index`` picks which capture; ``destination``
        overrides the captured one.
        """

        def launch_replay() -> None:
            if index >= len(controller.captured):
                self._note("replay_skipped", "nothing captured")
                return

            image, original_destination = controller.captured[index]
            target = destination or original_destination
            fresh = image.with_attributes(
                transfer_id=server._transfer_ids.next()
            )

            def offer() -> None:
                try:
                    channel = server.secure.connect(target)
                    reply = decode(channel.call("atp.transfer", encode(fresh)))
                    self._note(
                        "replay_offered",
                        f"{getattr(server, 'name', server)}->{target} "
                        f"status={reply.get('status')}",
                    )
                except ReproError as exc:
                    self._note("replay_failed", f"{target}: {exc}")

            SimThread(
                self.kernel, offer,
                name=f"replay/{getattr(server, 'name', 'host')}",
                on_error="store",
            ).start()

        self.kernel.schedule_at(at, launch_replay)

    # -- resource faults -------------------------------------------------------

    def resource_fault(
        self,
        server: Any,
        resource: Any,
        *,
        at: float,
        duration: float | None = None,
        method: str | None = None,
        mode: str = "error",
        wedge_for: float = 60.0,
    ) -> None:
        """Degrade one supervised resource for a window starting at ``at``.

        ``mode="error"`` makes supervised invocations of ``resource`` on
        ``server`` fail immediately with
        :class:`~repro.errors.ResourceFaultError`; ``mode="wedge"`` parks
        each invoking thread for ``wedge_for`` virtual seconds first —
        the degradation the supervisor's watchdog scores as a deadline
        overrun.  ``method=None`` hits the whole interface.  With
        ``duration`` the fault clears by itself.  Requires the server to
        be running with supervision enabled (duck-typed: anything with a
        ``supervisor`` exposing ``inject_fault``/``clear_fault`` works).
        """
        if mode not in ("error", "wedge"):
            raise ValueError(f"unknown resource-fault mode {mode!r}")
        self.kernel.schedule_at(
            at, self._begin_resource_fault, server, resource, mode, method,
            wedge_for,
        )
        if duration is not None:
            if duration <= 0:
                raise ValueError("fault duration must be positive")
            self.kernel.schedule_at(
                at + duration, self._end_resource_fault, server, resource,
                method,
            )

    def _begin_resource_fault(
        self, server: Any, resource: Any, mode: str, method: str | None,
        wedge_for: float,
    ) -> None:
        server.supervisor.inject_fault(
            resource, mode=mode, method=method, wedge_for=wedge_for
        )
        self._note(
            "resource_fault_begin",
            f"{getattr(server, 'name', server)}:{resource} mode={mode}",
        )

    def _end_resource_fault(
        self, server: Any, resource: Any, method: str | None
    ) -> None:
        server.supervisor.clear_fault(resource, method=method)
        self._note(
            "resource_fault_end",
            f"{getattr(server, 'name', server)}:{resource}",
        )

"""Deterministic, schedule-driven fault injection for experiments.

A :class:`FaultInjector` turns a handful of adversity primitives — link
flaps, partitions, loss bursts, server crash/restart — into kernel
events: a test or benchmark declares its whole fault schedule up front
and then simply runs the simulation.  Everything keys off the virtual
clock, and loss bursts draw from seeded RNG substreams
(:func:`repro.util.rng.make_rng`), so a given schedule replays
bit-for-bit across runs.

The injector never reaches into protocol internals: links go down via
:meth:`Network.set_link_state` (routing recomputes, messages in flight
on the link are lost), loss is the links' own Bernoulli drop, and a
crash is whatever the crashed object's ``crash()``/``restart()`` methods
implement (duck-typed; :class:`repro.server.agent_server.AgentServer`
provides the fail-stop-with-journal semantics).
"""

from __future__ import annotations

from typing import Any

from repro.net.network import Network
from repro.obs import runtime as _obs
from repro.sim.kernel import Kernel
from repro.sim.monitor import Counter
from repro.util.rng import make_rng

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules faults against one network on one kernel."""

    def __init__(self, kernel: Kernel, network: Network, seed: int = 0) -> None:
        self.kernel = kernel
        self.network = network
        self._seed = seed
        self._burst_ids = 0
        self._bursts: dict[int, list[float]] = {}
        self.stats = Counter()
        # (virtual time, kind, detail) — what actually fired, for tests
        # and for annotating benchmark output.
        self.log: list[tuple[float, str, str]] = []

    def _note(self, kind: str, detail: str) -> None:
        self.stats.add(kind)
        self.log.append((self.kernel.now(), kind, detail))
        if _obs.TRACING:
            # ``injected=True`` distinguishes scheduled adversity from
            # organic failures when reading a trace.
            _obs.annotate(f"fault.{kind}", detail, injected=True)

    # -- link failures -------------------------------------------------------

    def link_down(
        self, a: str, b: str, at: float, *, duration: float | None = None
    ) -> None:
        """Take the ``a``<->``b`` connection down at virtual time ``at``.

        With ``duration`` the connection comes back by itself; without,
        it stays down until an explicit :meth:`link_up`.
        """
        self.kernel.schedule_at(at, self._set_link, a, b, False)
        if duration is not None:
            self.kernel.schedule_at(at + duration, self._set_link, a, b, True)

    def link_up(self, a: str, b: str, at: float) -> None:
        self.kernel.schedule_at(at, self._set_link, a, b, True)

    def flap(
        self, a: str, b: str, *, start: float, period: float,
        down_for: float, count: int,
    ) -> None:
        """``count`` down/up cycles: down at ``start + k*period``, each
        outage lasting ``down_for`` (must be < ``period`` to be a flap)."""
        for k in range(count):
            self.link_down(a, b, start + k * period, duration=down_for)

    def partition(
        self,
        group_a: list[str],
        group_b: list[str],
        at: float,
        *,
        duration: float | None = None,
    ) -> int:
        """Cut every direct link between the two groups at ``at``.

        Returns how many connections the partition severs.  (Only direct
        links are cut; if the topology routes around the cut, the groups
        can still talk — that is the experiment's business.)
        """
        pairs = [
            (a, b)
            for a in group_a
            for b in group_b
            if self.network.has_link(a, b)
        ]
        for a, b in pairs:
            self.link_down(a, b, at, duration=duration)
        return len(pairs)

    def _set_link(self, a: str, b: str, up: bool) -> None:
        self.network.set_link_state(a, b, up)
        self._note("link_up" if up else "link_down", f"{a}<->{b}")

    # -- loss bursts ---------------------------------------------------------

    def loss_burst(
        self, a: str, b: str, *, at: float, duration: float, loss_rate: float
    ) -> None:
        """Degrade both directions of ``a``<->``b`` to ``loss_rate`` for
        the window ``[at, at+duration)``, then restore the previous rates.

        The burst's drop decisions come from a dedicated seeded
        substream, so adding a burst never perturbs other randomness.
        """
        token = self._burst_ids
        self._burst_ids += 1
        self.kernel.schedule_at(at, self._begin_burst, token, a, b, loss_rate)
        self.kernel.schedule_at(at + duration, self._end_burst, token, a, b)

    def _begin_burst(self, token: int, a: str, b: str, loss_rate: float) -> None:
        saved: list[float] = []
        for src, dst in ((a, b), (b, a)):
            link = self.network.link(src, dst)
            saved.append(link.loss_rate)
            link.set_loss_rate(
                loss_rate, make_rng(self._seed, f"burst{token}:{src}->{dst}")
            )
        self._bursts[token] = saved
        self._note("loss_burst_begin", f"{a}<->{b} rate={loss_rate}")

    def _end_burst(self, token: int, a: str, b: str) -> None:
        saved = self._bursts.pop(token, None)
        if saved is None:  # pragma: no cover - defensive
            return
        for (src, dst), rate in zip(((a, b), (b, a)), saved):
            self.network.link(src, dst).set_loss_rate(rate)
        self._note("loss_burst_end", f"{a}<->{b}")

    # -- crashes -------------------------------------------------------------

    def crash(
        self, server: Any, at: float, *, restart_at: float | None = None
    ) -> None:
        """Fail-stop ``server`` at ``at``; optionally restart it later.

        ``server`` is duck-typed: anything with ``crash()`` and
        ``restart()`` (and a ``name`` for the log) works.
        """
        self.kernel.schedule_at(at, self._crash, server)
        if restart_at is not None:
            if restart_at <= at:
                raise ValueError("restart_at must be after the crash time")
            self.kernel.schedule_at(restart_at, self._restart, server)

    def _crash(self, server: Any) -> None:
        server.crash()
        self._note("crashes", getattr(server, "name", repr(server)))

    def _restart(self, server: Any) -> None:
        server.restart()
        self._note("restarts", getattr(server, "name", repr(server)))

    # -- resource faults -------------------------------------------------------

    def resource_fault(
        self,
        server: Any,
        resource: Any,
        *,
        at: float,
        duration: float | None = None,
        method: str | None = None,
        mode: str = "error",
        wedge_for: float = 60.0,
    ) -> None:
        """Degrade one supervised resource for a window starting at ``at``.

        ``mode="error"`` makes supervised invocations of ``resource`` on
        ``server`` fail immediately with
        :class:`~repro.errors.ResourceFaultError`; ``mode="wedge"`` parks
        each invoking thread for ``wedge_for`` virtual seconds first —
        the degradation the supervisor's watchdog scores as a deadline
        overrun.  ``method=None`` hits the whole interface.  With
        ``duration`` the fault clears by itself.  Requires the server to
        be running with supervision enabled (duck-typed: anything with a
        ``supervisor`` exposing ``inject_fault``/``clear_fault`` works).
        """
        if mode not in ("error", "wedge"):
            raise ValueError(f"unknown resource-fault mode {mode!r}")
        self.kernel.schedule_at(
            at, self._begin_resource_fault, server, resource, mode, method,
            wedge_for,
        )
        if duration is not None:
            if duration <= 0:
                raise ValueError("fault duration must be positive")
            self.kernel.schedule_at(
                at + duration, self._end_resource_fault, server, resource,
                method,
            )

    def _begin_resource_fault(
        self, server: Any, resource: Any, mode: str, method: str | None,
        wedge_for: float,
    ) -> None:
        server.supervisor.inject_fault(
            resource, mode=mode, method=method, wedge_for=wedge_for
        )
        self._note(
            "resource_fault_begin",
            f"{getattr(server, 'name', server)}:{resource} mode={mode}",
        )

    def _end_resource_fault(
        self, server: Any, resource: Any, method: str | None
    ) -> None:
        server.supervisor.clear_fault(resource, method=method)
        self._note(
            "resource_fault_end",
            f"{getattr(server, 'name', server)}:{resource}",
        )

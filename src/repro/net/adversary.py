"""Link-level adversaries: the attack classes of section 2.

Every adversary observes (and may rewrite) the messages crossing one
link.  ``intercept`` maps one in-flight message to a list of messages
that actually continue down the wire:

* return ``[message]`` unchanged — pure observation (passive attack);
* return ``[]`` — deletion;
* return a modified message — tampering;
* return extra messages — injection / replay / impersonation.

The secure-channel tests pair each adversary with the mechanism that
defeats it (AEAD integrity, sequence numbers, certificate-backed
authentication); the insecure-transport tests show each attack *succeeds*
without those mechanisms, reproducing the paper's motivation.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.net.message import Message

__all__ = [
    "Adversary",
    "Eavesdropper",
    "Tamperer",
    "Dropper",
    "Replayer",
    "Impersonator",
]


class Adversary:
    """Base class: a transparent tap."""

    def intercept(self, message: Message, now: float) -> list[Message]:
        return [message]


class Eavesdropper(Adversary):
    """Passive attack: records a copy of everything it sees."""

    def __init__(self) -> None:
        self.captured: list[Message] = []

    def intercept(self, message: Message, now: float) -> list[Message]:
        self.captured.append(message.copy())
        return [message]

    def saw_substring(self, needle: bytes) -> bool:
        """Did any captured payload contain ``needle`` in the clear?"""
        return any(needle in m.payload for m in self.captured)


class Tamperer(Adversary):
    """Active attack: flips bits in payloads with probability ``rate``."""

    def __init__(self, rng: random.Random, rate: float = 1.0) -> None:
        self._rng = rng
        self.rate = rate
        self.tampered_count = 0

    def intercept(self, message: Message, now: float) -> list[Message]:
        if message.payload and self._rng.random() < self.rate:
            data = bytearray(message.payload)
            index = self._rng.randrange(len(data))
            data[index] ^= 1 << self._rng.randrange(8)
            message.payload = bytes(data)
            self.tampered_count += 1
        return [message]


class Dropper(Adversary):
    """Active attack: deletes messages with probability ``rate``."""

    def __init__(self, rng: random.Random, rate: float = 1.0) -> None:
        self._rng = rng
        self.rate = rate
        self.dropped_count = 0

    def intercept(self, message: Message, now: float) -> list[Message]:
        if self._rng.random() < self.rate:
            self.dropped_count += 1
            return []
        return [message]


class Replayer(Adversary):
    """Active attack: records messages and re-injects them later.

    ``should_replay`` selects targets (default: everything); each selected
    message is duplicated ``copies`` times.
    """

    def __init__(
        self,
        copies: int = 1,
        should_replay: Callable[[Message], bool] | None = None,
    ) -> None:
        self.copies = copies
        self._should_replay = should_replay or (lambda m: True)
        self.replayed_count = 0

    def intercept(self, message: Message, now: float) -> list[Message]:
        out = [message]
        if self._should_replay(message):
            for _ in range(self.copies):
                out.append(message.copy())
                self.replayed_count += 1
        return out


class Impersonator(Adversary):
    """Active attack: injects a forged message claiming to be ``claim_src``.

    Fires once, alongside the first message it observes (so the forgery
    arrives interleaved with legitimate traffic).
    """

    def __init__(self, claim_src: str, kind: str, payload: bytes, dst: str) -> None:
        self.claim_src = claim_src
        self.kind = kind
        self.payload = payload
        self.dst = dst
        self.injected = False

    def intercept(self, message: Message, now: float) -> list[Message]:
        if self.injected:
            return [message]
        self.injected = True
        forged = Message(
            src=self.claim_src, dst=self.dst, kind=self.kind, payload=self.payload
        )
        return [message, forged]

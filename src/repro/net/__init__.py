"""Simulated network substrate.

The paper's threat model (section 2) is defined at the message level:
passive eavesdropping, and active modification / deletion / injection /
impersonation.  A simulated network lets every one of those attacks be
*injected on demand* and the countermeasure verified — the reason this
reproduction simulates links instead of opening sockets.

Layers, bottom-up:

- :mod:`repro.net.message` — the wire unit.
- :mod:`repro.net.link` — latency / bandwidth / loss, with adversary taps.
- :mod:`repro.net.network` — topology, shortest-path routing, delivery.
- :mod:`repro.net.adversary` — the attack classes of section 2.
- :mod:`repro.net.transport` — named endpoints, one-way sends and
  blocking request/response for simulated threads.
- :mod:`repro.net.secure_channel` — mutual authentication, AEAD sealing
  and replay protection over the transport.
"""

from repro.net.message import Message
from repro.net.link import Link
from repro.net.network import Network
from repro.net.transport import Endpoint
from repro.net.adversary import (
    Adversary,
    Dropper,
    Eavesdropper,
    Impersonator,
    Replayer,
    Tamperer,
)
from repro.net.secure_channel import SecureChannel, SecureHost

__all__ = [
    "Message",
    "Link",
    "Network",
    "Endpoint",
    "Adversary",
    "Eavesdropper",
    "Tamperer",
    "Dropper",
    "Replayer",
    "Impersonator",
    "SecureChannel",
    "SecureHost",
]

"""Named endpoints: typed handlers, one-way sends, blocking calls.

An :class:`Endpoint` is a node's mailbox.  Handlers are registered per
message *kind* and run in kernel context (no blocking); a handler that
returns bytes generates an immediate reply.  Simulated threads get a
synchronous ``call`` with correlation ids and timeouts — this is the
primitive both the RPC baseline and the agent transfer protocol are built
on.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ChannelClosedError, NetworkError
from repro.net.message import Message
from repro.net.network import Network
from repro.obs import runtime as _obs
from repro.sim.monitor import Counter
from repro.sim.sync import SimEvent
from repro.util.ids import IdGenerator

__all__ = ["Endpoint"]

Handler = Callable[[Message], "bytes | None"]

_TIMEOUT = object()


class Endpoint:
    """One node's transport endpoint."""

    def __init__(self, network: Network, name: str) -> None:
        self.network = network
        self.kernel = network.kernel
        self.name = name
        self._handlers: dict[str, Handler] = {}
        self._pending: dict[str, SimEvent] = {}
        self._corr_ids = IdGenerator(f"corr:{name}")
        self._closed = False
        self.stats = Counter()
        network.attach(name, self._on_message)

    # -- handler registration --------------------------------------------------

    def bind(self, kind: str, handler: Handler) -> None:
        """Register ``handler`` for messages of ``kind``.

        The handler runs in kernel context.  If it returns bytes, they are
        sent back as the reply to the originating call.
        """
        if kind in self._handlers:
            raise NetworkError(f"{self.name}: handler for {kind!r} already bound")
        self._handlers[kind] = handler

    def unbind(self, kind: str) -> None:
        self._handlers.pop(kind, None)

    # -- sending -----------------------------------------------------------------

    def send(self, dst: str, kind: str, payload: bytes) -> None:
        """One-way message."""
        self._check_open()
        self.network.send(
            Message(src=self.name, dst=dst, kind=kind, payload=payload)
        )

    def call(
        self, dst: str, kind: str, payload: bytes, timeout: float | None = None
    ) -> bytes:
        """Blocking request/response; must run in a simulated thread."""
        if _obs.TRACING:
            with _obs.TRACER.span(
                "rpc.call", src=self.name, dst=dst, kind=kind
            ):
                return self._call(dst, kind, payload, timeout)
        return self._call(dst, kind, payload, timeout)

    def _call(
        self, dst: str, kind: str, payload: bytes, timeout: float | None
    ) -> bytes:
        self._check_open()
        corr_id = self._corr_ids.next()
        event = SimEvent(self.kernel)
        self._pending[corr_id] = event
        timer = None
        try:
            if timeout is not None:
                timer = self.kernel.schedule(timeout, event.set, _TIMEOUT)
            self.network.send(
                Message(
                    src=self.name, dst=dst, kind=kind, payload=payload,
                    corr_id=corr_id,
                )
            )
            result = event.wait()
        finally:
            # Cancel on *every* exit — success, timeout, interruption, or a
            # send failure — so abandoned calls leave no stale kernel timers
            # (cancelling an already-fired timer is a no-op).
            self._pending.pop(corr_id, None)
            if timer is not None:
                timer.cancel()
        if result is _TIMEOUT:
            self.stats.add("call_timeouts")
            raise NetworkError(
                f"{self.name}: call {kind!r} to {dst!r} timed out after {timeout}s"
            )
        assert isinstance(result, Message)
        return result.payload

    def reply(self, request: Message, payload: bytes) -> None:
        """Send a (possibly deferred) reply to ``request``."""
        self._check_open()
        self.network.send(
            Message(
                src=self.name,
                dst=request.src,
                kind=request.kind,
                payload=payload,
                corr_id=request.corr_id,
                is_reply=True,
            )
        )

    def close(self) -> None:
        """Refuse all further traffic (simulates a crashed server)."""
        self._closed = True

    def open(self) -> None:
        """Accept traffic again (simulates a restarted server process).

        Re-attaches to the network for explicitness; a restarted process
        binds its port anew.
        """
        self._closed = False
        self.network.attach(self.name, self._on_message)

    @property
    def is_open(self) -> bool:
        return not self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ChannelClosedError(f"endpoint {self.name!r} is closed")

    # -- receiving ---------------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        if self._closed:
            self.stats.add("dropped_closed")
            return
        if message.is_reply:
            event = self._pending.get(message.corr_id)
            if event is None:
                # Late (the caller timed out and moved on) or replayed.
                self.stats.add("replies_unmatched")
                return
            if event.is_set:
                # A duplicate arriving before the caller resumed.
                self.stats.add("replies_duplicate")
                return
            event.set(message)
            return
        handler = self._handlers.get(message.kind)
        if handler is None:
            return  # unhandled kinds are silently discarded, like a closed port
        result = handler(message)
        if result is not None and message.corr_id:
            self.reply(message, result)

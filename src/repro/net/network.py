"""Topology and delivery: nodes, connections, shortest-path routing.

Messages travel hop-by-hop over :class:`~repro.net.link.Link` objects, so
an adversary tapped onto any link along the route sees (and can attack)
the traffic, exactly as in the paper's open-internet threat model.
Routes are shortest-latency paths (Dijkstra), recomputed when the
topology changes.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import NetworkError, UnreachableError
from repro.net.link import Link
from repro.net.message import Message
from repro.sim.kernel import Kernel
from repro.sim.monitor import Counter
from repro.util.rng import make_rng

__all__ = ["Network"]

Receiver = Callable[[Message], None]


class Network:
    """A graph of named nodes with attached receivers."""

    def __init__(self, kernel: Kernel, seed: int = 0) -> None:
        self.kernel = kernel
        self._seed = seed
        self._receivers: dict[str, Receiver] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._neighbors: dict[str, set[str]] = {}
        self._routes: dict[str, dict[str, str]] = {}  # src -> dst -> next hop
        self._routes_dirty = True
        self.stats = Counter()

    # -- topology ------------------------------------------------------------

    def add_node(self, name: str) -> None:
        if name in self._neighbors:
            raise NetworkError(f"node {name!r} already exists")
        self._neighbors[name] = set()
        self._routes_dirty = True

    def attach(self, name: str, receiver: Receiver) -> None:
        """Install the function invoked when a message reaches ``name``."""
        if name not in self._neighbors:
            raise NetworkError(f"unknown node {name!r}")
        self._receivers[name] = receiver

    def connect(
        self,
        a: str,
        b: str,
        *,
        latency: float = 0.001,
        bandwidth: float = 1e7,
        loss_rate: float = 0.0,
    ) -> tuple[Link, Link]:
        """Create a bidirectional connection (two directed links)."""
        for name in (a, b):
            if name not in self._neighbors:
                raise NetworkError(f"unknown node {name!r}")
        if (a, b) in self._links:
            raise NetworkError(f"{a!r} and {b!r} are already connected")
        rng_ab = make_rng(self._seed, f"link:{a}->{b}") if loss_rate else None
        rng_ba = make_rng(self._seed, f"link:{b}->{a}") if loss_rate else None
        fwd = Link(self.kernel, a, b, latency=latency, bandwidth=bandwidth,
                   loss_rate=loss_rate, rng=rng_ab)
        rev = Link(self.kernel, b, a, latency=latency, bandwidth=bandwidth,
                   loss_rate=loss_rate, rng=rng_ba)
        self._links[(a, b)] = fwd
        self._links[(b, a)] = rev
        self._neighbors[a].add(b)
        self._neighbors[b].add(a)
        self._routes_dirty = True
        return fwd, rev

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise NetworkError(f"no link {src!r}->{dst!r}") from None

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        """Bring both directions of a connection up or down."""
        self.link(a, b).up = up
        self.link(b, a).up = up
        self._routes_dirty = True

    def nodes(self) -> list[str]:
        return sorted(self._neighbors)

    # -- routing --------------------------------------------------------------

    def _recompute_routes(self) -> None:
        """All-sources Dijkstra over link latency (only live links)."""
        self._routes = {}
        for source in self._neighbors:
            dist: dict[str, float] = {source: 0.0}
            first_hop: dict[str, str] = {}
            heap: list[tuple[float, str, str | None]] = [(0.0, source, None)]
            visited: set[str] = set()
            while heap:
                d, node, hop = heapq.heappop(heap)
                if node in visited:
                    continue
                visited.add(node)
                if hop is not None:
                    first_hop[node] = hop
                for neighbor in sorted(self._neighbors[node]):
                    link = self._links[(node, neighbor)]
                    if not link.up:
                        continue
                    nd = d + link.latency
                    if neighbor not in dist or nd < dist[neighbor]:
                        dist[neighbor] = nd
                        next_hop = hop if hop is not None else neighbor
                        heapq.heappush(heap, (nd, neighbor, next_hop))
            self._routes[source] = first_hop
        self._routes_dirty = False

    def next_hop(self, src: str, dst: str) -> str:
        if self._routes_dirty:
            self._recompute_routes()
        try:
            return self._routes[src][dst]
        except KeyError:
            raise UnreachableError(f"no route from {src!r} to {dst!r}") from None

    def path(self, src: str, dst: str) -> list[str]:
        """The full node sequence a message will traverse."""
        hops = [src]
        current = src
        while current != dst:
            current = self.next_hop(current, dst)
            hops.append(current)
        return hops

    # -- delivery ---------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Inject a message at its source node; it is forwarded hop-by-hop."""
        if message.src not in self._neighbors:
            raise NetworkError(f"unknown source node {message.src!r}")
        self.stats.add("sent")
        self.stats.add("sent_bytes", message.size)
        self._forward(message.src, message)

    def _forward(self, at: str, message: Message) -> None:
        if at == message.dst:
            self._deliver(message)
            return
        try:
            hop = self.next_hop(at, message.dst)
        except UnreachableError:
            self.stats.add("unroutable")
            return
        self._links[(at, hop)].transmit(
            message, lambda msg, _hop=hop: self._forward(_hop, msg)
        )

    def _deliver(self, message: Message) -> None:
        receiver = self._receivers.get(message.dst)
        if receiver is None:
            self.stats.add("undeliverable")
            return
        self.stats.add("delivered")
        receiver(message)

    # -- measurement ----------------------------------------------------------

    def total_bytes_on_wire(self) -> int:
        """Sum of bytes that crossed every link (each hop counts)."""
        return sum(link.stats["bytes"] for link in self._links.values())

"""The wire unit: an addressed, typed, byte-payload message.

Payloads are always *bytes* (the canonical serialization of whatever the
layer above is sending).  That matters for the threat model: adversaries
on links operate on bytes, exactly like an attacker on a real wire, so
"can a tamperer corrupt an agent in transit?" is answered by actually
flipping payload bits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

__all__ = ["Message", "HEADER_OVERHEAD"]

# Fixed per-message framing cost added to the payload size when computing
# transmission time (addresses, kind, correlation id).
HEADER_OVERHEAD = 64

_msg_counter = itertools.count()


@dataclass(slots=True)
class Message:
    """One network message."""

    src: str
    dst: str
    kind: str
    payload: bytes
    corr_id: str = ""  # request/response correlation
    is_reply: bool = False
    msg_id: int = field(default_factory=lambda: next(_msg_counter))

    @property
    def size(self) -> int:
        """Bytes on the wire (payload + framing)."""
        return len(self.payload) + HEADER_OVERHEAD

    def copy(self) -> "Message":
        """A detached copy (used by eavesdroppers and replayers)."""
        return replace(self, msg_id=next(_msg_counter))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.msg_id} {self.src}->{self.dst} {self.kind}"
            f" {len(self.payload)}B{' reply' if self.is_reply else ''})"
        )

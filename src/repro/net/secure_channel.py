"""Authenticated, private, replay-protected channels between hosts.

Implements the section-2 requirements end-to-end:

* **Mutual authentication** — a four-flight handshake in which both sides
  present CA-issued certificates and prove possession of their private
  keys (the responder by deriving the KEM session key, the initiator by
  signing the key-exchange transcript).
* **Privacy + integrity** — every data payload is sealed with the AEAD
  cipher (:func:`repro.crypto.cipher.seal_payload`); tampering raises
  :class:`~repro.errors.IntegrityError` at the receiver and the message
  is discarded (and counted).
* **Replay protection** — strictly increasing sequence numbers inside the
  sealed envelope; duplicates are rejected.

Handshake transcript (all timing/bytes go over the plain transport, so
adversaries can attack every flight)::

    A -> B  sec.hello   {cert_A, nonce_A}
    B -> A  (reply)     {cert_B, nonce_B, sig_B(nonce_A, nonce_B, A, B)}
    A -> B  sec.keyex   {channel, kem_ct, sig_A(nonce_A, nonce_B, kem_ct, A, B)}
    B -> A  (reply)     {confirm = HMAC(K, "confirm" || nonce_A)}

with ``K = SHA256(kem_shared || nonce_A || nonce_B)``.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.crypto.cert import Certificate
from repro.crypto.trust import TrustAnchor
from repro.crypto.cipher import NONCE_SIZE, SealContext
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair
from repro.crypto.mac import hmac_sha256, verify_hmac
from repro.errors import (
    AuthenticationError,
    CredentialError,
    IntegrityError,
    NetworkError,
    ReplayError,
    SecurityException,
)
from repro.net.message import Message
from repro.net.transport import Endpoint
from repro.obs import runtime as _obs
from repro.sim.monitor import Counter
from repro.util.clock import Clock
from repro.util.ids import IdGenerator
from repro.util.serialization import canonical_digest, decode, encode

__all__ = ["SecureHost", "SecureChannel"]

AppHandler = Callable[[str, bytes], "bytes | None"]
# app handler signature: (peer_name, body) -> optional reply body

_HELLO = "sec.hello"
_KEYEX = "sec.keyex"
_DATA = "sec.data"


class SecureChannel:
    """One established channel; symmetric at both ends."""

    def __init__(
        self,
        host: "SecureHost",
        channel_id: str,
        peer: str,
        session_key: bytes,
    ) -> None:
        self.host = host
        self.channel_id = channel_id
        self.peer = peer  # authenticated peer principal name
        self._key = session_key
        # Enc/MAC subkeys and the HMAC key schedule are derived once per
        # session here, not once per message (the old seal_payload path
        # re-derived both for every frame).
        self._seal = SealContext(session_key)
        self._aad = channel_id.encode()
        self._send_seq = 0
        self._recv_seq = 0
        self._pending: dict[str, object] = {}
        self._corr = IdGenerator(f"scorr:{channel_id}")

    # -- sending ------------------------------------------------------------

    def _envelope(
        self, app_kind: str, body: bytes, corr: str, is_reply: bool
    ) -> bytes:
        self._send_seq += 1
        plaintext = encode(
            {
                "seq": self._send_seq,
                "app_kind": app_kind,
                "corr": corr,
                "is_reply": is_reply,
                "body": body,
            }
        )
        nonce = self.host.rng.randbytes(NONCE_SIZE)
        return self._seal.seal(nonce, plaintext, associated_data=self._aad)

    def send(self, app_kind: str, body: bytes) -> None:
        """One-way secure message."""
        sealed = self._envelope(app_kind, body, corr="", is_reply=False)
        self.host.endpoint.send(self.peer_node(), _DATA, self._tag(sealed))

    def send_many(self, app_kind: str, bodies: list[bytes]) -> None:
        """One-way secure *batch*: N messages, one sealed frame.

        The transfer path often emits bursts of small messages to the
        same peer (state deltas, report fragments); sealing each one
        separately pays a nonce, a keystream tail block, and a MAC per
        message.  A batch amortizes all three: one envelope, one
        sequence number, one MAC.  The receiver unpacks the batch and
        dispatches each body to the ``app_kind`` handler in order, so
        handler semantics match N individual :meth:`send` calls.
        Replay/tamper protection covers the whole batch (a dropped or
        reordered batch is detected exactly like a dropped message).
        """
        if not bodies:
            return
        self._send_seq += 1
        plaintext = encode(
            {
                "seq": self._send_seq,
                "app_kind": app_kind,
                "corr": "",
                "is_reply": False,
                "batch": list(bodies),
            }
        )
        nonce = self.host.rng.randbytes(NONCE_SIZE)
        sealed = self._seal.seal(nonce, plaintext, associated_data=self._aad)
        self.host.endpoint.send(self.peer_node(), _DATA, self._tag(sealed))
        self.host.stats.add("batches_sent")

    def call(self, app_kind: str, body: bytes, timeout: float | None = None) -> bytes:
        """Blocking secure request/response (from a simulated thread)."""
        if _obs.TRACING:
            with _obs.TRACER.span(
                "secure.call", peer=self.peer, kind=app_kind
            ):
                return self._secure_call(app_kind, body, timeout)
        return self._secure_call(app_kind, body, timeout)

    def _secure_call(
        self, app_kind: str, body: bytes, timeout: float | None
    ) -> bytes:
        from repro.sim.sync import SimEvent

        corr = self._corr.next()
        event = SimEvent(self.host.kernel)
        self._pending[corr] = event
        timer = None
        try:
            if timeout is not None:
                timer = self.host.kernel.schedule(timeout, event.set, None)
            sealed = self._envelope(app_kind, body, corr=corr, is_reply=False)
            self.host.endpoint.send(self.peer_node(), _DATA, self._tag(sealed))
            result = event.wait()
        finally:
            # Cancel on every exit so abandoned calls leave no stale timers.
            self._pending.pop(corr, None)
            if timer is not None:
                timer.cancel()
        if result is None:
            raise NetworkError(
                f"secure call {app_kind!r} to {self.peer!r} timed out"
            )
        return result

    def _reply(self, app_kind: str, body: bytes, corr: str) -> None:
        sealed = self._envelope(app_kind, body, corr=corr, is_reply=True)
        self.host.endpoint.send(self.peer_node(), _DATA, self._tag(sealed))

    def _tag(self, sealed: bytes) -> bytes:
        """Prefix the channel id so the receiving host can route it."""
        return encode({"channel": self.channel_id, "sealed": sealed})

    def peer_node(self) -> str:
        return self.peer

    # -- receiving ----------------------------------------------------------

    def _accept(self, sealed: bytes) -> None:
        plaintext = self._seal.open(
            sealed, associated_data=self._aad
        )  # raises IntegrityError on tampering
        envelope = decode(plaintext)
        seq = envelope["seq"]
        if seq <= self._recv_seq:
            raise ReplayError(
                f"channel {self.channel_id}: sequence {seq} replayed"
                f" (last accepted {self._recv_seq})"
            )
        self._recv_seq = seq
        if envelope["is_reply"]:
            event = self._pending.get(envelope["corr"])
            if event is not None:
                event.set(envelope["body"])
            return
        handler = self.host.app_handler(envelope["app_kind"])
        if handler is None:
            self.host.stats.add("unhandled_app_kind")
            return
        batch = envelope.get("batch")
        if batch is not None:
            # A send_many frame: each body dispatches as if sent alone.
            self.host.stats.add("batches_received")
            for body in batch:
                handler(self.peer, body)
            return
        result = handler(self.peer, envelope["body"])
        if result is not None and envelope["corr"]:
            self._reply(envelope["app_kind"], result, envelope["corr"])


class SecureHost:
    """The per-node secure-channel service.

    Owns the node's key pair and certificate, runs the responder side of
    the handshake, routes sealed traffic to channels, and exposes
    ``connect`` for the initiator side.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        name: str,
        keys: KeyPair,
        certificate: Certificate,
        trust_anchor: TrustAnchor,
        clock: Clock,
        rng: random.Random,
    ) -> None:
        if certificate.subject != name:
            raise CredentialError(
                f"certificate names {certificate.subject!r}, host is {name!r}"
            )
        self.endpoint = endpoint
        self.kernel = endpoint.kernel
        self.name = name
        self.keys = keys
        self.certificate = certificate
        self.trust = trust_anchor
        self.clock = clock
        self.rng = rng
        self.stats = Counter()
        self._channels: dict[str, SecureChannel] = {}
        self._by_peer: dict[str, SecureChannel] = {}
        # nonce_a -> (validated initiator certificate, nonce_b)
        self._pending_hello: dict[bytes, tuple[Certificate, bytes]] = {}
        self._app_handlers: dict[str, AppHandler] = {}
        self._channel_ids = IdGenerator(f"chan:{name}")
        endpoint.bind(_HELLO, self._on_hello)
        endpoint.bind(_KEYEX, self._on_keyex)
        endpoint.bind(_DATA, self._on_data)

    # -- application surface ---------------------------------------------------

    def bind_app(self, app_kind: str, handler: AppHandler) -> None:
        """Register a handler for authenticated application messages."""
        if app_kind in self._app_handlers:
            raise NetworkError(f"{self.name}: app handler {app_kind!r} already bound")
        self._app_handlers[app_kind] = handler

    def app_handler(self, app_kind: str) -> AppHandler | None:
        return self._app_handlers.get(app_kind)

    def channel_to(self, peer: str) -> SecureChannel | None:
        """An already-established channel to ``peer``, if any."""
        return self._by_peer.get(peer)

    def open_channels(self) -> int:
        """Established channels currently held (telemetry gauge)."""
        return len(self._channels)

    def drop_channel(self, peer: str) -> bool:
        """Forget the cached channel to ``peer`` (if any).

        The next :meth:`connect` runs a fresh handshake.  Used by retry
        loops when a call timed out: the peer may have crashed and
        restarted, in which case its end of the old channel no longer
        exists and every frame we send on it is discarded unread.
        """
        channel = self._by_peer.pop(peer, None)
        if channel is None:
            return False
        self._channels.pop(channel.channel_id, None)
        self.stats.add("channels_dropped")
        return True

    def reset_channels(self) -> None:
        """Forget *all* channel state (simulates a process crash).

        Session keys, sequence numbers and half-done handshakes live in
        process memory; a crashed-and-restarted server has none of them.
        """
        self._channels.clear()
        self._by_peer.clear()
        self._pending_hello.clear()
        self.stats.add("channel_resets")

    # -- initiator side ------------------------------------------------------------

    def connect(self, peer: str, timeout: float | None = 30.0) -> SecureChannel:
        """Establish (or reuse) an authenticated channel to ``peer``.

        Must run in a simulated thread.  Raises
        :class:`AuthenticationError` if the peer cannot prove its identity.
        """
        existing = self._by_peer.get(peer)
        if existing is not None:
            return existing
        nonce_a = self.rng.randbytes(NONCE_SIZE)
        hello = encode({"cert": self.certificate, "nonce": nonce_a})
        raw = self.endpoint.call(peer, _HELLO, hello, timeout=timeout)
        response = decode(raw)
        if "error" in response:
            raise AuthenticationError(
                f"{peer} refused handshake: {response['error']}"
            )
        peer_cert: Certificate = response["cert"]
        nonce_b: bytes = response["nonce"]
        try:
            self.trust.validate(peer_cert)
        except CredentialError as exc:
            raise AuthenticationError(f"{peer} presented a bad certificate") from exc
        if peer_cert.subject != peer:
            raise AuthenticationError(
                f"certificate names {peer_cert.subject!r}, expected {peer!r}"
            )
        transcript = canonical_digest(
            {"na": nonce_a, "nb": nonce_b, "a": self.name, "b": peer}
        )
        try:
            peer_cert.public_key.verify(transcript, response["sig"])
        except SecurityException as exc:
            raise AuthenticationError(
                f"{peer} failed to prove possession of its key"
            ) from exc
        # Key transport.
        kem_ct, shared = peer_cert.public_key.encapsulate(self.rng)
        session_key = sha256(shared, nonce_a, nonce_b)
        channel_id = self._channel_ids.next()
        keyex_transcript = canonical_digest(
            {"na": nonce_a, "nb": nonce_b, "kem": kem_ct, "a": self.name, "b": peer}
        )
        keyex = encode(
            {
                "channel": channel_id,
                "nonce_a": nonce_a,
                "kem": kem_ct,
                "sig": self.keys.private.sign(keyex_transcript),
            }
        )
        raw = self.endpoint.call(peer, _KEYEX, keyex, timeout=timeout)
        confirm = decode(raw)
        if "error" in confirm:
            raise AuthenticationError(
                f"{peer} rejected key exchange: {confirm['error']}"
            )
        if not verify_hmac(session_key, b"confirm" + nonce_a, confirm["confirm"]):
            raise AuthenticationError(f"{peer} failed key confirmation")
        channel = SecureChannel(self, channel_id, peer, session_key)
        self._register_channel(channel)
        self.stats.add("channels_initiated")
        return channel

    def _register_channel(self, channel: SecureChannel) -> None:
        self._channels[channel.channel_id] = channel
        self._by_peer[channel.peer] = channel

    # -- responder side ---------------------------------------------------------------

    def _on_hello(self, message: Message) -> bytes:
        try:
            hello = decode(message.payload)
            peer_cert: Certificate = hello["cert"]
            nonce_a: bytes = hello["nonce"]
            self.trust.validate(peer_cert)
            if peer_cert.subject != message.src:
                raise AuthenticationError("certificate/source mismatch")
        except SecurityException as exc:
            self.stats.add("handshake_rejected")
            return encode({"error": str(exc)})
        except Exception:
            self.stats.add("handshake_malformed")
            return encode({"error": "malformed hello"})
        nonce_b = self.rng.randbytes(NONCE_SIZE)
        self._pending_hello[nonce_a] = (peer_cert, nonce_b)
        transcript = canonical_digest(
            {"na": nonce_a, "nb": nonce_b, "a": peer_cert.subject, "b": self.name}
        )
        return encode(
            {
                "cert": self.certificate,
                "nonce": nonce_b,
                "sig": self.keys.private.sign(transcript),
            }
        )

    def _on_keyex(self, message: Message) -> bytes:
        try:
            keyex = decode(message.payload)
            nonce_a = keyex["nonce_a"]
            pending = self._pending_hello.pop(nonce_a, None)
            if pending is None:
                raise AuthenticationError("no matching hello")
            peer_cert, nonce_b = pending
            if peer_cert.subject != message.src:
                raise AuthenticationError("keyex source mismatch")
            kem_ct = keyex["kem"]
            transcript = canonical_digest(
                {
                    "na": nonce_a,
                    "nb": nonce_b,
                    "kem": kem_ct,
                    "a": peer_cert.subject,
                    "b": self.name,
                }
            )
            peer_cert.public_key.verify(transcript, keyex["sig"])
            shared = self.keys.private.decapsulate(kem_ct)
        except SecurityException as exc:
            self.stats.add("handshake_rejected")
            return encode({"error": str(exc)})
        except Exception:
            self.stats.add("handshake_malformed")
            return encode({"error": "malformed keyex"})
        session_key = sha256(shared, nonce_a, nonce_b)
        channel = SecureChannel(
            self, keyex["channel"], peer_cert.subject, session_key
        )
        self._register_channel(channel)
        self.stats.add("channels_accepted")
        return encode({"confirm": hmac_sha256(session_key, b"confirm" + nonce_a)})

    # -- data plane ----------------------------------------------------------------

    def _on_data(self, message: Message) -> None:
        try:
            frame = decode(message.payload)
            channel = self._channels.get(frame["channel"])
            if channel is None:
                self.stats.add("unknown_channel")
                return
            channel._accept(frame["sealed"])
        except IntegrityError:
            self.stats.add("rejected_tampered")
        except ReplayError:
            self.stats.add("rejected_replayed")
        except Exception:
            self.stats.add("rejected_malformed")

"""A directed link: latency + serialization delay + random loss + taps.

Timing model (classic store-and-forward):

    start    = max(now, link busy-until)          # FIFO serialization
    done     = start + size / bandwidth           # transmission delay
    arrival  = done + latency                     # propagation delay

Random loss models an unreliable medium; it is distinct from a
:class:`~repro.net.adversary.Dropper`, which models a deliberate attack
(the distinction matters when deciding whether retransmission or
integrity checking is the right response).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import NetworkError
from repro.net.adversary import Adversary
from repro.net.message import Message
from repro.sim.kernel import Kernel
from repro.sim.monitor import Counter

__all__ = ["Link"]


class Link:
    """One direction of a connection between two adjacent nodes."""

    def __init__(
        self,
        kernel: Kernel,
        src: str,
        dst: str,
        *,
        latency: float = 0.001,
        bandwidth: float = 1e7,
        loss_rate: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        if latency < 0 or bandwidth <= 0 or not (0.0 <= loss_rate <= 1.0):
            raise NetworkError(
                f"invalid link parameters: latency={latency},"
                f" bandwidth={bandwidth}, loss_rate={loss_rate}"
            )
        if loss_rate > 0.0 and rng is None:
            raise NetworkError("lossy links need an RNG stream")
        self.kernel = kernel
        self.src = src
        self.dst = dst
        self.latency = latency
        self.bandwidth = bandwidth
        self.loss_rate = loss_rate
        self.up = True
        self._rng = rng
        self._busy_until = 0.0
        self._taps: list[Adversary] = []
        self.stats = Counter()

    def set_loss_rate(
        self, loss_rate: float, rng: random.Random | None = None
    ) -> None:
        """Change the link's random-loss probability mid-simulation.

        Turning loss on for a previously lossless link requires an RNG
        stream (pass one, e.g. from :func:`repro.util.rng.make_rng`);
        the fault injector uses this for bounded loss bursts.
        """
        if not (0.0 <= loss_rate <= 1.0):
            raise NetworkError(f"invalid loss rate {loss_rate}")
        if rng is not None:
            self._rng = rng
        if loss_rate > 0.0 and self._rng is None:
            raise NetworkError("lossy links need an RNG stream")
        self.loss_rate = loss_rate

    def add_tap(self, adversary: Adversary) -> None:
        """Attach an adversary to this link."""
        self._taps.append(adversary)

    def remove_tap(self, adversary: Adversary) -> None:
        self._taps.remove(adversary)

    def transmit(
        self, message: Message, deliver: Callable[[Message], None]
    ) -> None:
        """Send ``message`` across the link; ``deliver`` fires at arrival.

        Messages an adversary injects are transmitted too (they occupy
        wire time like any other bytes).
        """
        if not self.up:
            self.stats.add("blackholed")
            return
        outgoing = [message]
        for tap in self._taps:
            next_round: list[Message] = []
            for msg in outgoing:
                next_round.extend(tap.intercept(msg, self.kernel.now()))
            outgoing = next_round
        if not outgoing:
            self.stats.add("suppressed")
            return
        for msg in outgoing:
            if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
                self.stats.add("lost")
                continue
            start = max(self.kernel.now(), self._busy_until)
            done = start + msg.size / self.bandwidth
            self._busy_until = done
            arrival_delay = (done + self.latency) - self.kernel.now()
            self.stats.add("messages")
            self.stats.add("bytes", msg.size)
            self.kernel.schedule(arrival_delay, deliver, msg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"Link({self.src}->{self.dst}, {state})"

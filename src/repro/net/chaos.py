"""Seeded chaos campaigns: randomized-but-deterministic fault plans.

The robustness suites so far scripted each fault by hand.  A
:class:`ChaosSchedule` instead *draws* a plan — hard crashes,
crash/restart cycles, named partition windows, loss bursts, drains —
from a dedicated seeded RNG substream and schedules it through the
PR 3 :class:`~repro.net.faults.FaultInjector`.  Same seed, same plan,
same virtual-time trace: CI replays the campaign under several
``REPRO_STRESS_SEED`` values and asserts *invariants* (exactly-one
completion, zero lost agents, healed conservation) rather than golden
outputs.

The planner enforces a safety envelope so the assertions remain
meaningful rather than vacuous:

* ``spare`` servers (typically the home/coordinator site) are never
  faulted — somebody has to be alive to *observe* exactly-once;
* at most ``max_concurrent_down`` servers are dark at any instant, so
  the survivor set is never empty;
* partition windows default to **shorter than the failure detector's
  confirm-death threshold** — a partitioned-but-alive server must not
  be declared dead and its agents re-homed into a split brain.  Chaos
  that *wants* split-brain pressure can widen the window explicitly.

Every planned fault is recorded in :attr:`ChaosSchedule.plan` (and
pretty-printed by :meth:`describe`) so a failing seed can be replayed
and read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.util.rng import make_rng

__all__ = ["ChaosConfig", "ChaosSchedule"]


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """How much adversity to draw, and the safety envelope around it."""

    start: float = 5.0            # plan window opens (let the bed settle)
    horizon: float = 90.0         # plan window closes
    hard_crashes: int = 1         # crash, never restart
    crash_restarts: int = 1       # crash with a later restart
    partitions: int = 1           # named partition windows
    loss_bursts: int = 1
    drains: int = 0
    outage: tuple[float, float] = (6.0, 15.0)      # crash->restart gap
    partition_window: tuple[float, float] = (2.0, 8.0)
    burst_window: tuple[float, float] = (3.0, 10.0)
    loss_rate: float = 0.3
    max_concurrent_down: int = 1
    spare: tuple[str, ...] = ()   # never faulted (the coordinator site)

    def __post_init__(self) -> None:
        if self.horizon <= self.start:
            raise ReproError("chaos horizon must extend past its start")
        if self.max_concurrent_down < 1:
            raise ReproError("max_concurrent_down must be >= 1")
        for lo, hi in (self.outage, self.partition_window, self.burst_window):
            if not 0 < lo <= hi:
                raise ReproError(f"bad chaos window ({lo}, {hi})")


@dataclass(slots=True)
class _Window:
    """One server's scheduled dark time (crash or partition)."""

    target: str
    t0: float
    t1: float  # float("inf") for a hard crash


class ChaosSchedule:
    """Draw a deterministic fault plan and arm it on a fault injector.

    ``servers`` are the fault candidates (AgentServer instances —
    anything with ``name``/``crash``/``restart``/``drain`` works).  The
    plan is fully materialised and scheduled at construction; inspect
    :attr:`plan` or :meth:`describe` afterwards, and read the
    injector's own ``log`` for what actually fired.
    """

    def __init__(
        self,
        faults: Any,
        servers: list[Any],
        *,
        seed: int,
        config: ChaosConfig | None = None,
    ) -> None:
        self.faults = faults
        self.config = config or ChaosConfig()
        self.seed = seed
        self.rng = make_rng(seed, "chaos")
        self.plan: list[dict[str, Any]] = []
        self._windows: list[_Window] = []
        self._by_name = {
            s.name: s for s in servers if s.name not in self.config.spare
        }
        if not self._by_name:
            raise ReproError("chaos needs at least one non-spare server")
        self._draw_plan()

    # -- planning ----------------------------------------------------------------

    def _draw_plan(self) -> None:
        cfg = self.config
        for _ in range(cfg.hard_crashes):
            self._plan_crash(restart=False)
        for _ in range(cfg.crash_restarts):
            self._plan_crash(restart=True)
        for _ in range(cfg.partitions):
            self._plan_partition()
        for _ in range(cfg.loss_bursts):
            self._plan_burst()
        for _ in range(cfg.drains):
            self._plan_drain()
        self.plan.sort(key=lambda entry: entry["at"])

    def _down_at(self, t0: float, t1: float, exclude: str = "") -> int:
        return sum(
            1
            for w in self._windows
            if w.target != exclude and w.t0 < t1 and t0 < w.t1
        )

    def _draw_slot(
        self,
        span: float,
        *,
        down_counts: bool,
        window_span: float | None = None,
    ) -> tuple[str, float] | None:
        """A (target, start) pair respecting the concurrency envelope.

        ``span`` positions the start inside the plan window;
        ``window_span`` (default ``span``) is the dark time the fault
        actually occupies — infinite for a hard crash.  Deterministic
        rejection sampling: bounded draws from the seeded substream, or
        ``None`` when the envelope is saturated.
        """
        cfg = self.config
        dark = span if window_span is None else window_span
        names = sorted(self._by_name)
        for _ in range(64):
            target = self.rng.choice(names)
            t0 = self.rng.uniform(cfg.start, max(cfg.start, cfg.horizon - span))
            t1 = t0 + dark
            if self._down_at(t0, t1, exclude=target) >= (
                cfg.max_concurrent_down if down_counts else 10**9
            ):
                continue
            # Never stack two faults on the same server's window.
            if any(
                w.target == target and w.t0 < t1 and t0 < w.t1
                for w in self._windows
            ):
                continue
            return target, t0
        return None

    def _plan_crash(self, *, restart: bool) -> None:
        cfg = self.config
        gap = self.rng.uniform(*cfg.outage)
        # A hard crash is drawn over the same slot length as a restart
        # cycle (so it can land anywhere in the plan window), but its
        # dark window extends forever: the envelope accounting treats
        # the server as down for the rest of the campaign.
        span = gap if restart else float("inf")
        slot = self._draw_slot(
            gap, down_counts=True, window_span=None if restart else span
        )
        if slot is None:
            return
        target, t0 = slot
        self._windows.append(_Window(target, t0, t0 + span))
        server = self._by_name[target]
        if restart:
            self.faults.crash(server, at=t0, restart_at=t0 + gap)
            self.plan.append(
                {"at": t0, "kind": "crash_restart", "target": target,
                 "restart_at": t0 + gap}
            )
        else:
            self.faults.crash(server, at=t0)
            self.plan.append(
                {"at": t0, "kind": "crash", "target": target}
            )

    def _plan_partition(self) -> None:
        cfg = self.config
        span = self.rng.uniform(*cfg.partition_window)
        slot = self._draw_slot(span, down_counts=True)
        if slot is None:
            return
        target, t0 = slot
        self._windows.append(_Window(target, t0, t0 + span))
        others = [n for n in sorted(self._by_name) if n != target]
        others += list(cfg.spare)
        name = f"chaos{len(self.plan)}"
        self.faults.named_partition(
            name, [target], others, at=t0, heal_at=t0 + span
        )
        self.plan.append(
            {"at": t0, "kind": "partition", "target": target,
             "heal_at": t0 + span, "name": name}
        )

    def _plan_burst(self) -> None:
        cfg = self.config
        span = self.rng.uniform(*cfg.burst_window)
        slot = self._draw_slot(span, down_counts=False)
        if slot is None:
            return
        target, t0 = slot
        # Lossy, not dark: bursts do not occupy a down window.
        peers = [n for n in sorted(self._by_name) if n != target]
        peers += list(cfg.spare)
        peer = self.rng.choice(sorted(peers))
        self.faults.loss_burst(
            target, peer, at=t0, duration=span, loss_rate=cfg.loss_rate
        )
        self.plan.append(
            {"at": t0, "kind": "loss_burst", "target": target, "peer": peer,
             "until": t0 + span, "loss_rate": cfg.loss_rate}
        )

    def _plan_drain(self) -> None:
        cfg = self.config
        # A drained server stops hosting: treat it as down for the rest
        # of the plan so the envelope keeps a live survivor set.
        slot = self._draw_slot(
            self.rng.uniform(*cfg.outage),
            down_counts=True,
            window_span=float("inf"),
        )
        if slot is None:
            return
        target, t0 = slot
        self._windows.append(_Window(target, t0, float("inf")))
        server = self._by_name[target]
        self.faults.kernel.schedule_at(t0, server.drain)
        self.plan.append({"at": t0, "kind": "drain", "target": target})

    # -- reporting ---------------------------------------------------------------

    def describe(self) -> list[str]:
        """One human-readable line per planned fault, in firing order."""
        lines = []
        for entry in self.plan:
            extras = ", ".join(
                f"{k}={v}" for k, v in sorted(entry.items())
                if k not in ("at", "kind", "target")
            )
            suffix = f" ({extras})" if extras else ""
            lines.append(
                f"t={entry['at']:7.2f}  {entry['kind']:<14}"
                f" {entry['target']}{suffix}"
            )
        return lines

"""Global, location-independent naming.

Section 4: "All agents, agent servers, and resources are assigned global,
location-independent names."  :class:`~repro.naming.urn.URN` is the name
syntax; :class:`~repro.naming.registry.NameService` maps names to current
locations (which server currently hosts an agent, where a resource lives),
so itineraries can say "co-locate with X" without hard-coding hosts.
"""

from repro.naming.urn import URN
from repro.naming.registry import NameRecord, NameService

__all__ = ["URN", "NameRecord", "NameService"]

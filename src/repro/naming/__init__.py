"""Global, location-independent naming.

Section 4: "All agents, agent servers, and resources are assigned global,
location-independent names."  :class:`~repro.naming.urn.URN` is the name
syntax; :class:`~repro.naming.registry.NameService` maps names to current
locations (which server currently hosts an agent, where a resource lives),
so itineraries can say "co-locate with X" without hard-coding hosts.

Deployment shapes, smallest to largest: the in-process
:class:`~repro.naming.registry.NameService`; one networked registry node
(:class:`~repro.naming.remote.NameServiceHost` +
:class:`~repro.naming.remote.RemoteNameService`); and the
partition-tolerant replicated directory
(:mod:`repro.naming.replicated`) — a consistent-hash ring of shards
(:class:`~repro.naming.shard.HashRing`), quorum reads/writes, hinted
handoff and anti-entropy repair, with
:class:`~repro.naming.replicated.ReplicatedNameClient` as the
failover-aware drop-in client.  See ``docs/naming.md``.
"""

from repro.naming.urn import URN
from repro.naming.registry import NameRecord, NameService
from repro.naming.shard import HashRing
from repro.naming.replicated import (
    DirectoryOracle,
    ReplicaNameHost,
    ReplicatedNameClient,
    ShardStore,
    VersionedRecord,
)

__all__ = [
    "URN",
    "NameRecord",
    "NameService",
    "HashRing",
    "VersionedRecord",
    "ShardStore",
    "ReplicaNameHost",
    "ReplicatedNameClient",
    "DirectoryOracle",
]

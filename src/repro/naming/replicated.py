"""Partition-tolerant replicated naming: quorum directory + repair.

The paper's open federation (sections 5.2, 5.5) assumes agents can
always answer "where is agent X / resource Y"; a single
:class:`~repro.naming.remote.NameServiceHost` makes that answer hostage
to one node's uptime.  This module replicates the directory:

* Names are assigned to shards by a :class:`~repro.naming.shard.HashRing`;
  each shard is served by N replica hosts (:class:`ReplicaNameHost`).
* Records are *versioned* (:class:`VersionedRecord`): a per-record
  ``(epoch, seq)`` vector under the registering owner token.  ``epoch``
  counts registration generations of the name (re-registering after an
  unregister starts a new epoch); ``seq`` counts owner updates within a
  generation.  Total order ``(epoch, seq, stamped, token)`` makes
  replica merge deterministic and resolves concurrent same-token
  writers last-writer-wins by virtual time.
* Writes are owner-authenticated quorum writes (W of N acks); reads are
  quorum reads (R of N) with read-repair of stale repliers; an
  unreachable replica gets *hinted handoff* (a reachable peer stores the
  record and delivers it later); a periodic *anti-entropy sweep*
  reconciles replicas pairwise via Merkle-style bucket digests over
  :class:`~repro.net.secure_channel.SecureChannel`.
* Failover is client-driven (:class:`ReplicatedNameClient`): route by
  ring position, retry across replicas with the PR 2
  :class:`~repro.util.retry.RetryPolicy` + per-replica
  :class:`~repro.util.retry.CircuitBreaker`, and — when no read quorum
  is reachable — degrade to a *stale-but-flagged* read whose staleness
  is surfaced in the record attributes (``ns.stale``, ``ns.age``,
  ``ns.replies``) and bounded by ``stale_read_limit``.

Quorum arithmetic: with ``R + W > N`` every read quorum intersects every
committed write, and with ``2W > N`` two concurrent registrations of the
same name cannot both commit — the defaults (N=3, W=2, R=2) satisfy
both, and the client enforces them at construction.

Authority model: the owner token is a bearer secret, exactly as in
:class:`~repro.naming.registry.NameService` (section 5.5's "ownership
information ... used to prevent any unauthorized modifications").
Replicas check it on client writes (``put``); replica-to-replica repair
traffic (``repair``/``pull``/``digest``) merges purely by version order
and is therefore restricted to authenticated ring peers of the same
shard — see ``docs/naming.md`` for the failure matrix and the residual
trust this places in directory nodes.

:class:`DirectoryOracle` is the god's-eye view: the Testbed's
kernel-context bootstrap interface (launch-time registration happens
before the simulation runs, where no secure channel can be driven) and
the conservation oracle for tests and benchmarks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import (
    DuplicateNameError,
    NamingError,
    NetworkError,
    ReproError,
    SimulationError,
    UnknownNameError,
)
from repro.naming.registry import NameRecord
from repro.naming.shard import HashRing, bucket_of, stable_hash
from repro.naming.urn import URN
from repro.net.secure_channel import SecureHost
from repro.obs import runtime as _obs
from repro.sim.kernel import Kernel
from repro.sim.monitor import Counter
from repro.sim.threads import SimThread
from repro.util.ids import IdGenerator
from repro.util.retry import CircuitBreaker, RetryPolicy
from repro.util.serialization import (
    canonical_digest,
    decode,
    encode,
    register_serializable,
)

__all__ = [
    "SHARD_APP_KIND",
    "VersionedRecord",
    "ShardStore",
    "ReplicaNameHost",
    "ReplicatedNameClient",
    "DirectoryOracle",
]

SHARD_APP_KIND = "ns.shard"

_ERROR_KINDS = {
    "unknown": UnknownNameError,
    "duplicate": DuplicateNameError,
    "naming": NamingError,
}


def _raise_reply_error(reply: dict) -> None:
    raise _ERROR_KINDS.get(reply.get("kind"), NamingError)(reply["error"])


# ---------------------------------------------------------------------------
# Versioned records
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class VersionedRecord:
    """One name binding plus the version vector that orders replicas.

    ``version`` is ``(epoch, seq, stamped, token)``.  The ``stamped``
    component makes concurrent same-token writers — the home server's
    launch-time relocation racing the arrival server's, both holding the
    owner token — resolve last-writer-wins by virtual time, exactly the
    order a single serializing registry would impose.  The final token
    tiebreak only matters for the transient same-epoch registration
    race, where it makes the replicas converge on *one* loser
    deterministically (the racing client that failed its write quorum
    already got :class:`~repro.errors.DuplicateNameError`).
    """

    name: URN
    location: str
    attributes: dict[str, Any]
    token: str
    epoch: int
    seq: int
    tombstone: bool = False
    stamped: float = 0.0  # virtual time of the write (staleness bound)

    def __post_init__(self) -> None:
        if not isinstance(self.name, URN):
            raise NamingError("record names must be URN instances")
        if not isinstance(self.token, str) or not self.token:
            raise NamingError("record token must be a non-empty string")
        if not isinstance(self.epoch, int) or self.epoch < 1:
            raise NamingError("record epoch must be a positive int")
        if not isinstance(self.seq, int) or self.seq < 1:
            raise NamingError("record seq must be a positive int")
        if not isinstance(self.attributes, dict):
            raise NamingError("record attributes must be a dict")
        if not isinstance(self.location, str):
            raise NamingError("record location must be a string")

    @property
    def version(self) -> tuple[int, int, float, str]:
        return (self.epoch, self.seq, self.stamped, self.token)

    def canonical(self) -> tuple:
        """A normalized tuple for digesting (attribute order erased)."""
        return (
            str(self.name),
            self.location,
            tuple(sorted(self.attributes.items())),
            self.token,
            self.epoch,
            self.seq,
            self.tombstone,
            self.stamped,
        )

    def to_state(self) -> tuple:
        return (
            self.name,
            self.location,
            dict(self.attributes),
            self.token,
            self.epoch,
            self.seq,
            self.tombstone,
            self.stamped,
        )

    @classmethod
    def from_state(cls, state: Any) -> "VersionedRecord":
        if not isinstance(state, (tuple, list)) or len(state) != 8:
            raise NamingError("malformed VersionedRecord state")
        name, location, attributes, token, epoch, seq, tombstone, stamped = state
        return cls(
            name=name,
            location=location,
            attributes=dict(attributes),
            token=token,
            epoch=epoch,
            seq=seq,
            tombstone=bool(tombstone),
            stamped=float(stamped),
        )


register_serializable(VersionedRecord)


# ---------------------------------------------------------------------------
# Per-replica storage
# ---------------------------------------------------------------------------


class ShardStore:
    """One replica's record table — its "stable storage".

    Survives ``crash()``/``restart()`` of the owning host, exactly as the
    agent server's departure journal does.  All access is under one lock;
    the check-then-write of :meth:`put_checked` is atomic, and every
    read returns either an immutable record reference (records are
    frozen; their attribute dicts are copied at the NameService surface)
    or a fresh list.
    """

    def __init__(self) -> None:
        self._records: dict[URN, VersionedRecord] = {}
        self._lock = threading.Lock()

    def get(self, name: URN) -> VersionedRecord | None:
        with self._lock:
            return self._records.get(name)

    def merge(self, record: VersionedRecord) -> bool:
        """Version-order merge (the repair path): apply iff strictly newer."""
        with self._lock:
            existing = self._records.get(record.name)
            if existing is None or record.version > existing.version:
                self._records[record.name] = record
                return True
            return False

    def put_checked(self, record: VersionedRecord) -> bool:
        """Owner-authenticated client write.

        Returns True if applied, False if this replica already holds the
        same or a newer version under the same token (an idempotent
        retransmit — still an ack: the state is at least as new as the
        write being acknowledged).  Raises on authority violations.
        """
        with self._lock:
            existing = self._records.get(record.name)
            if existing is None:
                self._records[record.name] = record
                return True
            if record.token == existing.token:
                if record.version > existing.version:
                    self._records[record.name] = record
                    return True
                return False
            # Different owner token.  A *later epoch* is a committed
            # re-registration this replica missed (the writer's probe
            # read a quorum and saw no live record; quorum intersection
            # says a committed live record would have been visible) —
            # accept it.  Same or earlier epoch is a rejection: a racing
            # registration (seq == 1) or a forged update token.
            if record.epoch > existing.epoch:
                self._records[record.name] = record
                return True
            if record.seq == 1:
                raise DuplicateNameError(
                    f"{record.name} is already registered "
                    f"(epoch {existing.epoch})"
                )
            raise NamingError(f"bad owner token for {record.name}")

    # -- enumeration / digests ----------------------------------------------

    def records(self) -> list[VersionedRecord]:
        with self._lock:
            return list(self._records.values())

    def names(self) -> list[URN]:
        """Live (non-tombstone) names held by this replica."""
        with self._lock:
            return [n for n, r in self._records.items() if not r.tombstone]

    def digests(self, n_buckets: int) -> list[bytes]:
        """Per-bucket digests of everything held, tombstones included."""
        with self._lock:
            buckets: list[list[VersionedRecord]] = [[] for _ in range(n_buckets)]
            for name, record in self._records.items():
                buckets[bucket_of(str(name), n_buckets)].append(record)
        out = []
        for group in buckets:
            group.sort(key=lambda r: str(r.name))
            out.append(canonical_digest([r.canonical() for r in group]))
        return out

    def bucket_records(self, bucket: int, n_buckets: int) -> list[VersionedRecord]:
        with self._lock:
            records = [
                r
                for n, r in self._records.items()
                if bucket_of(str(n), n_buckets) == bucket
            ]
        records.sort(key=lambda r: str(r.name))
        return records

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for r in self._records.values() if not r.tombstone)


# ---------------------------------------------------------------------------
# The replica host
# ---------------------------------------------------------------------------


class ReplicaNameHost:
    """One directory node: serves one shard's records over ``ns.shard``.

    Fail-stop semantics match :class:`~repro.server.agent_server
    .AgentServer`: ``crash()`` closes the endpoint and forgets session
    keys but keeps the :class:`ShardStore` (stable storage); duck-typing
    makes it schedulable by :meth:`~repro.net.faults.FaultInjector.crash`.

    Anti-entropy is opt-in: :meth:`start_sweeps` schedules periodic
    reconciliation rounds (phase-offset per node, so replicas do not
    sweep in lockstep), or a test drives :meth:`anti_entropy_round`
    directly from a simulated thread.
    """

    def __init__(
        self,
        secure_host: SecureHost,
        ring: HashRing,
        shard_id: str,
        *,
        n_buckets: int = 16,
        timeout: float = 10.0,
        hint_capacity: int = 1024,
    ) -> None:
        if secure_host.name not in ring.replicas(shard_id):
            raise NamingError(
                f"{secure_host.name} is not a replica of shard {shard_id!r}"
            )
        self.secure = secure_host
        self.kernel: Kernel = secure_host.kernel
        self.name: str = secure_host.name
        self.ring = ring
        self.shard_id = shard_id
        self.peers = tuple(
            node for node in ring.replicas(shard_id) if node != self.name
        )
        self.store = ShardStore()
        self.n_buckets = n_buckets
        self.stats = Counter()
        self._timeout = timeout
        # Held hints: (target replica, name) → newest record awaiting
        # delivery.  Bounded; overflow drops the incoming hint (counted).
        self._hints: dict[tuple[str, URN], VersionedRecord] = {}
        self._hint_capacity = hint_capacity
        self._crashed = False
        self._sweep_interval: float | None = None
        self._sweep_timer = None
        secure_host.bind_app(SHARD_APP_KIND, self._on_op)
        # Directory nodes join the cluster telemetry plane like agent
        # servers do: same scrape op, labels naming the node and shard so
        # the collector's merged view can slice per replica group.
        from repro.obs.aggregate import TelemetryUnit

        self.telemetry = TelemetryUnit(
            self.name, secure_host.clock, node=self.name, shard=shard_id
        )
        self.telemetry.register_source("ns_replica", self.stats)
        self.telemetry.gauge(
            "ns_replica.records", fn=lambda: float(len(self.store))
        )
        self.telemetry.gauge(
            "ns_replica.hints_pending", fn=lambda: float(len(self._hints))
        )
        self.telemetry.bind(secure_host)

    # -- the wire protocol ---------------------------------------------------

    def _on_op(self, peer: str, body: bytes) -> bytes:
        try:
            request = decode(body)
            op = request.get("op")
            if op == "put":
                applied = self.store.put_checked(self._record_arg(request))
                self.stats.add("puts_applied" if applied else "puts_stale")
                return encode({"ok": {"applied": applied}})
            if op == "get":
                self.stats.add("gets")
                return encode({"ok": self.store.get(self._name_arg(request))})
            if op == "digest":
                return encode(
                    {"ok": self.store.digests(self._buckets_arg(request))}
                )
            if op == "pull":
                n = self._buckets_arg(request)
                bucket = request.get("bucket")
                if not isinstance(bucket, int) or not 0 <= bucket < n:
                    raise NamingError(f"bad bucket index {bucket!r}")
                return encode({"ok": self.store.bucket_records(bucket, n)})
            if op == "repair":
                # Version-order merge without token checks: restricted to
                # authenticated ring peers of this shard (read-repair from
                # clients goes through the token-checked "put").
                if peer not in self.peers:
                    raise NamingError(
                        f"repair on {self.shard_id} restricted to ring peers, "
                        f"not {peer}"
                    )
                applied = self.store.merge(self._record_arg(request))
                self.stats.add("repairs_applied" if applied else "repairs_stale")
                return encode({"ok": {"applied": applied}})
            if op == "hint":
                self._store_hint(request.get("target"), self._record_arg(request))
                return encode({"ok": True})
            raise NamingError(f"unknown shard op {op!r}")
        except UnknownNameError as exc:
            return encode({"error": str(exc), "kind": "unknown"})
        except DuplicateNameError as exc:
            return encode({"error": str(exc), "kind": "duplicate"})
        except NamingError as exc:
            return encode({"error": str(exc), "kind": "naming"})
        except ReproError as exc:
            return encode({"error": str(exc), "kind": "naming"})

    def _record_arg(self, request: dict) -> VersionedRecord:
        record = request.get("record")
        if not isinstance(record, VersionedRecord):
            raise NamingError("request carries no record")
        if self.ring.shard_for(record.name) != self.shard_id:
            raise NamingError(
                f"{record.name} belongs to shard "
                f"{self.ring.shard_for(record.name)!r}, not {self.shard_id!r}"
            )
        return record

    def _name_arg(self, request: dict) -> URN:
        name = request.get("name")
        if not isinstance(name, URN):
            raise NamingError("request carries no name")
        return name

    def _buckets_arg(self, request: dict) -> int:
        n = request.get("buckets")
        if not isinstance(n, int) or not 1 <= n <= 4096:
            raise NamingError(f"bad bucket count {n!r}")
        return n

    # -- hinted handoff ------------------------------------------------------

    def _store_hint(self, target: Any, record: VersionedRecord) -> None:
        if target == self.name:
            # A hint for ourselves is just the record.
            self.store.merge(record)
            return
        if target not in self.ring.replicas(self.shard_id):
            raise NamingError(
                f"{target!r} is not a replica of shard {self.shard_id}"
            )
        key = (target, record.name)
        existing = self._hints.get(key)
        if existing is not None and existing.version >= record.version:
            return
        if existing is None and len(self._hints) >= self._hint_capacity:
            self.stats.add("hints_dropped")
            return
        self._hints[key] = record
        self.stats.add("hints_held")

    def _deliver_hints(self, summary: dict[str, int]) -> None:
        if not self._hints:
            return
        by_target: dict[str, list[tuple[tuple[str, URN], VersionedRecord]]] = {}
        for key, record in sorted(self._hints.items(), key=lambda kv: str(kv[0])):
            by_target.setdefault(key[0], []).append((key, record))
        for target, entries in by_target.items():
            if _obs.TRACING:
                with _obs.TRACER.span(
                    "ns.handoff", server=self.name, target=target,
                    records=len(entries),
                ):
                    self._deliver_to(target, entries, summary)
            else:
                self._deliver_to(target, entries, summary)

    def _deliver_to(
        self,
        target: str,
        entries: list[tuple[tuple[str, URN], VersionedRecord]],
        summary: dict[str, int],
    ) -> None:
        try:
            channel = self.secure.connect(target, timeout=self._timeout)
            for key, record in entries:
                reply = decode(
                    channel.call(
                        SHARD_APP_KIND,
                        encode({"op": "repair", "record": record}),
                        timeout=self._timeout,
                    )
                )
                # An error reply means the peer holds something newer —
                # the hint is obsolete either way.
                self._hints.pop(key, None)
                self.stats.add("hints_delivered")
                summary["hints_delivered"] += 1
                if "error" in reply:
                    self.stats.add("hints_obsolete")
        except ReproError:
            self.stats.add("hint_delivery_failed")
            self.secure.drop_channel(target)

    # -- anti-entropy --------------------------------------------------------

    def anti_entropy_round(self) -> dict[str, int]:
        """One reconciliation pass (blocking; simulated-thread context):
        deliver held hints, then digest-exchange with every peer."""
        summary = {
            "hints_delivered": 0,
            "records_in": 0,
            "records_out": 0,
            "peers_unreachable": 0,
        }
        if self._crashed:
            return summary
        if _obs.TRACING:
            with _obs.TRACER.span(
                "ns.repair", server=self.name, shard=self.shard_id
            ) as span:
                self._sweep(summary)
                for key, value in summary.items():
                    span.set_attribute(key, value)
        else:
            self._sweep(summary)
        self.stats.add("sweeps")
        return summary

    def _sweep(self, summary: dict[str, int]) -> None:
        self._deliver_hints(summary)
        for peer in self.peers:
            try:
                self._reconcile(peer, summary)
            except ReproError:
                summary["peers_unreachable"] += 1
                self.stats.add("sweep_peer_unreachable")
                self.secure.drop_channel(peer)

    def _reconcile(self, peer: str, summary: dict[str, int]) -> None:
        channel = self.secure.connect(peer, timeout=self._timeout)
        theirs = self._peer_call(
            channel, {"op": "digest", "buckets": self.n_buckets}
        )
        mine = self.store.digests(self.n_buckets)
        if not isinstance(theirs, list) or len(theirs) != len(mine):
            raise NamingError(f"digest shape mismatch from {peer}")
        for bucket in range(self.n_buckets):
            if mine[bucket] == theirs[bucket]:
                continue
            pulled = self._peer_call(
                channel,
                {"op": "pull", "bucket": bucket, "buckets": self.n_buckets},
            )
            seen: dict[URN, tuple[int, int, float, str]] = {}
            for record in pulled:
                if not isinstance(record, VersionedRecord):
                    raise NamingError(f"non-record in pull reply from {peer}")
                seen[record.name] = record.version
                if self.store.merge(record):
                    summary["records_in"] += 1
                    self.stats.add("repair_records_in")
            for record in self.store.bucket_records(bucket, self.n_buckets):
                known = seen.get(record.name)
                if known is None or known < record.version:
                    self._peer_call(channel, {"op": "repair", "record": record})
                    summary["records_out"] += 1
                    self.stats.add("repair_records_out")

    def _peer_call(self, channel: Any, request: dict) -> Any:
        reply = decode(
            channel.call(SHARD_APP_KIND, encode(request), timeout=self._timeout)
        )
        if "error" in reply:
            _raise_reply_error(reply)
        return reply["ok"]

    # -- periodic sweeps -----------------------------------------------------

    def start_sweeps(
        self, interval: float, *, initial_delay: float | None = None
    ) -> None:
        """Reconcile every ``interval`` virtual seconds.

        Each node starts at a deterministic per-node phase offset so a
        shard's replicas interleave their sweeps rather than colliding.
        Note the timers keep the kernel's event queue non-empty: drive
        the world with ``run(until=...)``, not an open-ended ``run()``.
        """
        if interval <= 0:
            raise ValueError("sweep interval must be positive")
        self._sweep_interval = interval
        if self._sweep_timer is None and not self._crashed:
            if initial_delay is None:
                phase = (stable_hash("sweep:" + self.name) % 1024) / 1024.0
                initial_delay = interval * (0.25 + 0.5 * phase)
            self._schedule_sweep(initial_delay)

    def stop_sweeps(self) -> None:
        self._sweep_interval = None
        if self._sweep_timer is not None:
            self._sweep_timer.cancel()
            self._sweep_timer = None

    def _schedule_sweep(self, delay: float) -> None:
        self._sweep_timer = self.kernel.schedule(delay, self._sweep_tick)

    def _sweep_tick(self) -> None:
        self._sweep_timer = None
        if self._crashed or self._sweep_interval is None:
            return

        def body() -> None:
            try:
                self.anti_entropy_round()
            finally:
                if (
                    not self._crashed
                    and self._sweep_interval is not None
                    and self._sweep_timer is None
                ):
                    self._schedule_sweep(self._sweep_interval)

        SimThread(
            self.kernel, body, f"ns-sweep/{self.name}", on_error="store"
        ).start()

    # -- fail-stop -----------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: drop sessions and refuse traffic; keep the store."""
        self._crashed = True
        if self._sweep_timer is not None:
            self._sweep_timer.cancel()
            self._sweep_timer = None
        self.secure.reset_channels()
        self.secure.endpoint.close()
        self.stats.add("crashes")

    def restart(self) -> None:
        self._crashed = False
        self.secure.endpoint.open()
        self.stats.add("restarts")
        if self._sweep_interval is not None and self._sweep_timer is None:
            # Catch-up round soon after coming back: pull what was missed.
            self._schedule_sweep(self._sweep_interval / 4)

    @property
    def is_crashed(self) -> bool:
        return self._crashed


# ---------------------------------------------------------------------------
# The client
# ---------------------------------------------------------------------------


class ReplicatedNameClient:
    """Client-driven failover over the replica groups.

    Drop-in for :class:`~repro.naming.remote.RemoteNameService`: the
    NameService interface, blocking operations requiring a simulated
    thread, plus kernel-context ``relocate_async``.  Every operation
    routes by ring position and gathers replies from the shard's
    replicas — retrying across rounds under ``retry`` with per-replica
    circuit breakers — until the required quorum answers.
    """

    def __init__(
        self,
        secure_host: SecureHost,
        ring: HashRing,
        *,
        write_quorum: int = 2,
        read_quorum: int = 2,
        timeout: float = 10.0,
        retry: RetryPolicy | None = None,
        retry_rng: Any | None = None,
        stale_read_limit: float | None = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 15.0,
    ) -> None:
        for shard_id in ring.shard_ids():
            n = len(ring.replicas(shard_id))
            if not 1 <= write_quorum <= n or not 1 <= read_quorum <= n:
                raise NamingError(
                    f"quorums W={write_quorum}/R={read_quorum} out of range "
                    f"for shard {shard_id!r} with {n} replicas"
                )
            if read_quorum + write_quorum <= n:
                raise NamingError(
                    f"R + W must exceed N for shard {shard_id!r} "
                    f"(R={read_quorum}, W={write_quorum}, N={n})"
                )
            if 2 * write_quorum <= n:
                raise NamingError(
                    f"write quorum must be a majority of shard {shard_id!r} "
                    f"(W={write_quorum}, N={n})"
                )
        self._host = secure_host
        self.kernel: Kernel = secure_host.kernel
        self._ring = ring
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        self._timeout = timeout
        self._retry = retry or RetryPolicy(
            attempts=3, base_delay=0.2, max_delay=2.0
        )
        self._retry_rng = retry_rng
        self.stale_read_limit = stale_read_limit
        self._breaker_threshold = breaker_threshold
        self._breaker_reset = breaker_reset
        self._breakers: dict[str, CircuitBreaker] = {}
        # Client-minted owner tokens, scoped by the minting host's name
        # so two clients can never collide.
        self._tokens = IdGenerator(f"nstoken:{secure_host.name}")
        self.stats = Counter()

    @property
    def ring(self) -> HashRing:
        return self._ring

    # -- the NameService interface -------------------------------------------

    def register(
        self,
        name: URN,
        location: str,
        attributes: dict[str, Any] | None = None,
    ) -> str:
        self._require_urn(name)
        return self._traced(
            "register", name, lambda span: self._register(
                name, location, dict(attributes or {}), span
            )
        )

    def lookup(self, name: URN) -> NameRecord:
        self._require_urn(name)
        return self._traced(
            "lookup", name, lambda span: self._lookup(name, span)
        )

    def contains(self, name: URN) -> bool:
        try:
            self.lookup(name)
            return True
        except UnknownNameError:
            return False

    def relocate(self, name: URN, token: str, new_location: str) -> None:
        self._require_urn(name)
        self._traced(
            "relocate", name, lambda span: self._update(
                name, token, span, location=new_location
            )
        )

    def unregister(self, name: URN, token: str) -> None:
        self._require_urn(name)
        self._traced(
            "unregister", name, lambda span: self._update(
                name, token, span, tombstone=True
            )
        )

    def relocate_async(
        self,
        kernel: Kernel,
        name: URN,
        token: str,
        new_location: str,
        on_fail: Callable[[], None] | None = None,
        audit: Any | None = None,
    ) -> None:
        """Fire-and-forget relocation from kernel context."""
        from repro.naming.remote import fire_and_forget_relocate

        fire_and_forget_relocate(
            self, kernel, name, token, new_location,
            on_fail=on_fail, audit=audit, stats=self.stats,
        )

    # -- operation bodies ----------------------------------------------------

    def _register(
        self, name: URN, location: str, attributes: dict, span: Any
    ) -> str:
        self.stats.add("registers")
        best, answered = self._probe(name)
        if answered < self.read_quorum:
            self.stats.add("registers_unavailable")
            raise NetworkError(
                f"cannot establish registration epoch for {name}: "
                f"{answered}/{self.read_quorum} replicas answered",
                replies=answered,
            )
        if best is not None and not best.tombstone:
            raise DuplicateNameError(f"{name} is already registered")
        record = VersionedRecord(
            name=name,
            location=location,
            attributes=attributes,
            token=self._tokens.next(),
            epoch=(best.epoch + 1) if best is not None else 1,
            seq=1,
            stamped=self.kernel.clock.now(),
        )
        self._quorum_write(name, record, span)
        return record.token

    def _lookup(self, name: URN, span: Any) -> NameRecord:
        self.stats.add("lookups")
        replies = self._gather(
            name, {"op": "get", "name": name}, want=self.read_quorum
        )
        records = {
            node: reply
            for node, reply in replies.items()
            if not isinstance(reply, ReproError)
        }
        answered = len(records)
        if span is not None:
            span.set_attribute("replies", answered)
        if answered == 0:
            self.stats.add("lookups_unavailable")
            raise NetworkError(
                f"no replica of shard {self._ring.shard_for(name)!r} "
                f"reachable for lookup of {name}"
            )
        best = None
        for record in records.values():
            if record is not None and (
                best is None or record.version > best.version
            ):
                best = record
        stale = answered < self.read_quorum
        if not stale and best is not None:
            self._read_repair(name, best, records)
        if best is None or best.tombstone:
            raise UnknownNameError(
                f"{name} is not registered", stale=stale, replies=answered
            )
        attributes = dict(best.attributes)
        if stale:
            age = max(0.0, self.kernel.clock.now() - best.stamped)
            if self.stale_read_limit is not None and age > self.stale_read_limit:
                self.stats.add("lookups_too_stale")
                raise NetworkError(
                    f"stale read of {name} exceeds bound: age {age:.3f}s "
                    f"> {self.stale_read_limit}s limit",
                    replies=answered,
                )
            self.stats.add("lookups_stale")
            attributes["ns.stale"] = True
            attributes["ns.replies"] = answered
            attributes["ns.age"] = age
            if span is not None:
                span.set_attribute("stale", True)
        return NameRecord(name=name, location=best.location, attributes=attributes)

    def _update(
        self,
        name: URN,
        token: str,
        span: Any,
        *,
        location: str | None = None,
        tombstone: bool = False,
    ) -> None:
        self.stats.add("unregisters" if tombstone else "relocates")
        best, answered = self._probe(name)
        if answered < self.read_quorum:
            raise NetworkError(
                f"no read quorum for update of {name}: "
                f"{answered}/{self.read_quorum} replicas answered",
                replies=answered,
            )
        if best is None or best.tombstone:
            raise UnknownNameError(f"{name} is not registered")
        if best.token != token:
            raise NamingError(f"bad owner token for {name}")
        record = VersionedRecord(
            name=name,
            location=best.location if location is None else location,
            attributes={} if tombstone else dict(best.attributes),
            token=token,
            epoch=best.epoch,
            seq=best.seq + 1,
            tombstone=tombstone,
            stamped=self.kernel.clock.now(),
        )
        self._quorum_write(name, record, span)

    # -- quorum plumbing -----------------------------------------------------

    def _probe(self, name: URN) -> tuple[VersionedRecord | None, int]:
        """Quorum read including tombstones: (newest record, replies)."""
        replies = self._gather(
            name, {"op": "get", "name": name}, want=self.read_quorum
        )
        best = None
        answered = 0
        for reply in replies.values():
            if isinstance(reply, ReproError):
                continue
            answered += 1
            if reply is not None and (
                best is None or reply.version > best.version
            ):
                best = reply
        return best, answered

    def _quorum_write(
        self, name: URN, record: VersionedRecord, span: Any
    ) -> None:
        replicas = self._ring.replicas_for(name)
        replies = self._gather(
            name, {"op": "put", "record": record}, want=self.write_quorum
        )
        acked = [
            node for node, reply in replies.items()
            if not isinstance(reply, ReproError)
        ]
        if span is not None:
            span.set_attribute("acks", len(acked))
        self.stats.add("write_acks", len(acked))
        if len(acked) < self.write_quorum:
            self.stats.add("quorum_write_failures")
            for reply in replies.values():
                if isinstance(reply, (DuplicateNameError, UnknownNameError,
                                      NamingError)):
                    # An authoritative rejection, not an availability gap.
                    raise reply
            raise NetworkError(
                f"write quorum not reached for {name}: "
                f"{len(acked)}/{self.write_quorum} acks",
                acks=len(acked),
            )
        missing = [node for node in replicas if node not in acked]
        if missing:
            self._hand_off(name, record, missing, via=acked[0])

    def _hand_off(
        self, name: URN, record: VersionedRecord, missing: list[str], via: str
    ) -> None:
        """Leave hints for unreachable replicas with a reachable one."""
        if _obs.TRACING:
            with _obs.TRACER.span(
                "ns.handoff", client=self._host.name, via=via,
                targets=",".join(missing), urn=str(name),
            ):
                self._send_hints(record, missing, via)
        else:
            self._send_hints(record, missing, via)

    def _send_hints(
        self, record: VersionedRecord, missing: list[str], via: str
    ) -> None:
        try:
            channel = self._host.connect(via, timeout=self._timeout)
            for target in missing:
                reply = decode(
                    channel.call(
                        SHARD_APP_KIND,
                        encode({
                            "op": "hint", "target": target, "record": record,
                        }),
                        timeout=self._timeout,
                    )
                )
                if "error" not in reply:
                    self.stats.add("hints_sent")
        except NetworkError:
            self.stats.add("hint_send_failed")
            self._host.drop_channel(via)

    def _read_repair(
        self,
        name: URN,
        best: VersionedRecord,
        records: Mapping[str, VersionedRecord | None],
    ) -> None:
        """Push the newest version to repliers that answered stale."""
        for node, record in records.items():
            if record is not None and record.version >= best.version:
                continue
            try:
                channel = self._host.connect(node, timeout=self._timeout)
                channel.call(
                    SHARD_APP_KIND,
                    encode({"op": "put", "record": best}),
                    timeout=self._timeout,
                )
            except NetworkError:
                self.stats.add("read_repair_failed")
                self._host.drop_channel(node)
                continue
            self.stats.add("read_repairs")
            if _obs.TRACING:
                _obs.TRACER.add_event(
                    "ns.read_repair", urn=str(name), node=node
                )

    def _gather(
        self, name: URN, request: dict, *, want: int
    ) -> dict[str, Any]:
        """Collect per-replica replies until ``want`` have answered.

        Every round attempts *all* silent replicas (so a write reaches
        N, not just W, when everyone is up); rounds after the first
        sleep under the retry policy's backoff.  Values are either the
        decoded ``ok`` payload or the mapped server-side error — a
        server that *answered* with an error counts toward ``want``
        (the directory spoke; the network did not fail).
        """
        replicas = self._ring.replicas_for(name)
        want = min(want, len(replicas))
        payload = encode(request)
        replies: dict[str, Any] = {}
        for attempt in range(self._retry.attempts):
            if attempt:
                delay = self._retry.delay_before(attempt, self._retry_rng)
                if delay > 0:
                    thread = self.kernel.current_thread()
                    if thread is None:
                        raise SimulationError(
                            "quorum retries require a simulated thread"
                        )
                    thread.sleep(delay)
                self.stats.add("retry_rounds")
            for node in replicas:
                if node in replies:
                    continue
                breaker = self._breaker(node)
                if not breaker.allow():
                    self.stats.add("breaker_skips")
                    continue
                try:
                    channel = self._host.connect(node, timeout=self._timeout)
                    raw = channel.call(
                        SHARD_APP_KIND, payload, timeout=self._timeout
                    )
                except NetworkError:
                    breaker.record_failure()
                    self.stats.add("replica_failures")
                    self._host.drop_channel(node)
                    continue
                breaker.record_success()
                reply = decode(raw)
                if "error" in reply:
                    replies[node] = _ERROR_KINDS.get(
                        reply.get("kind"), NamingError
                    )(reply["error"])
                else:
                    replies[node] = reply["ok"]
            if len(replies) >= want:
                break
        return replies

    def _breaker(self, node: str) -> CircuitBreaker:
        breaker = self._breakers.get(node)
        if breaker is None:
            breaker = CircuitBreaker(
                self.kernel.clock,
                failure_threshold=self._breaker_threshold,
                reset_timeout=self._breaker_reset,
            )
            self._breakers[node] = breaker
        return breaker

    def _traced(self, op: str, name: URN, body: Callable[[Any], Any]) -> Any:
        if _obs.TRACING:
            with _obs.TRACER.span(
                "ns.quorum", op=op, urn=str(name), client=self._host.name
            ) as span:
                return body(span)
        return body(None)

    @staticmethod
    def _require_urn(name: Any) -> None:
        if not isinstance(name, URN):
            raise NamingError("names must be URN instances")


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


class DirectoryOracle:
    """God's-eye NameService over every replica store.

    Two jobs.  First, the Testbed's kernel-context directory interface:
    launch-time registration happens before the simulation runs, where
    no secure call can block, so the oracle writes straight into the
    replica stores (the simulated equivalent of provisioning the
    directory before opening the doors).  Second, the conservation
    oracle for tests and benchmarks: merged authoritative reads,
    per-name replica counts (:meth:`replicas_holding`) and divergence
    reports (:meth:`divergences`) that say whether anti-entropy actually
    converged the shard.
    """

    def __init__(
        self,
        ring: HashRing,
        hosts: Mapping[str, ReplicaNameHost],
        clock: Any,
    ) -> None:
        missing = [node for node in ring.nodes() if node not in hosts]
        if missing:
            raise NamingError(f"no hosts for ring nodes {missing}")
        self._ring = ring
        self._hosts = dict(hosts)
        self._clock = clock
        self._tokens = IdGenerator("nstoken")

    # -- the NameService interface -------------------------------------------

    def register(
        self,
        name: URN,
        location: str,
        attributes: dict[str, Any] | None = None,
    ) -> str:
        if not isinstance(name, URN):
            raise NamingError("names must be URN instances")
        best = self._best(name)
        if best is not None and not best.tombstone:
            raise DuplicateNameError(f"{name} is already registered")
        record = VersionedRecord(
            name=name,
            location=location,
            attributes=dict(attributes or {}),
            token=self._tokens.next(),
            epoch=(best.epoch + 1) if best is not None else 1,
            seq=1,
            stamped=self._clock.now(),
        )
        for store in self._stores(name):
            store.merge(record)
        return record.token

    def lookup(self, name: URN) -> NameRecord:
        best = self._best(name)
        if best is None or best.tombstone:
            raise UnknownNameError(f"{name} is not registered")
        return NameRecord(
            name=name, location=best.location, attributes=dict(best.attributes)
        )

    def contains(self, name: URN) -> bool:
        best = self._best(name)
        return best is not None and not best.tombstone

    def relocate(self, name: URN, token: str, new_location: str) -> None:
        best = self._authorize(name, token)
        self._apply_everywhere(
            name,
            VersionedRecord(
                name=name,
                location=new_location,
                attributes=dict(best.attributes),
                token=token,
                epoch=best.epoch,
                seq=best.seq + 1,
                stamped=self._clock.now(),
            ),
        )

    def unregister(self, name: URN, token: str) -> None:
        best = self._authorize(name, token)
        self._apply_everywhere(
            name,
            VersionedRecord(
                name=name,
                location=best.location,
                attributes={},
                token=token,
                epoch=best.epoch,
                seq=best.seq + 1,
                tombstone=True,
                stamped=self._clock.now(),
            ),
        )

    def names(self, kind: str | None = None) -> list[URN]:
        """All live names, merged across every replica."""
        best: dict[URN, VersionedRecord] = {}
        for host in self._hosts.values():
            for record in host.store.records():
                known = best.get(record.name)
                if known is None or record.version > known.version:
                    best[record.name] = record
        return [
            name
            for name, record in best.items()
            if not record.tombstone and (kind is None or name.kind == kind)
        ]

    def __len__(self) -> int:
        return len(self.names())

    # -- conservation probes -------------------------------------------------

    def replicas_holding(self, name: URN) -> int:
        """How many of the name's replicas hold a live record for it."""
        count = 0
        for store in self._stores(name):
            record = store.get(name)
            if record is not None and not record.tombstone:
                count += 1
        return count

    def divergences(self) -> list[URN]:
        """Names whose replica group disagrees (missing or differing).

        Empty after a heal plus enough anti-entropy rounds — the
        convergence oracle for partition experiments.
        """
        names: set[URN] = set()
        for host in self._hosts.values():
            for record in host.store.records():
                names.add(record.name)
        diverged = []
        for name in sorted(names, key=str):
            versions = set()
            for store in self._stores(name):
                record = store.get(name)
                versions.add(None if record is None else record.canonical())
            if len(versions) > 1:
                diverged.append(name)
        return diverged

    # -- internals -----------------------------------------------------------

    def _stores(self, name: URN) -> list[ShardStore]:
        return [
            self._hosts[node].store for node in self._ring.replicas_for(name)
        ]

    def _best(self, name: URN) -> VersionedRecord | None:
        best = None
        for store in self._stores(name):
            record = store.get(name)
            if record is not None and (
                best is None or record.version > best.version
            ):
                best = record
        return best

    def _authorize(self, name: URN, token: str) -> VersionedRecord:
        best = self._best(name)
        if best is None or best.tombstone:
            raise UnknownNameError(f"{name} is not registered")
        if best.token != token:
            raise NamingError(f"bad owner token for {name}")
        return best

    def _apply_everywhere(self, name: URN, record: VersionedRecord) -> None:
        for store in self._stores(name):
            store.merge(record)

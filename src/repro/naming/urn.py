"""URN-style global names: ``urn:<kind>:<authority>/<local-path>``.

Modeled on Ajanta's name space: every principal, server, agent and
resource gets a name rooted at the naming authority (typically the owning
organization's domain), e.g.::

    urn:server:umn.edu/agent-server-1
    urn:agent:umn.edu/anand/shopper-17
    urn:resource:store.com/quote-db

Names are immutable value objects, canonical (lower-cased kind and
authority), serializable, and usable as dict keys.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import NamingError
from repro.util.serialization import register_serializable

__all__ = ["URN"]

_KIND_RE = re.compile(r"^[a-z][a-z0-9-]*$")
_AUTHORITY_RE = re.compile(r"^[a-z0-9]([a-z0-9.-]*[a-z0-9])?$")
_LOCAL_RE = re.compile(r"^[A-Za-z0-9._~-]+(/[A-Za-z0-9._~-]+)*$")

KNOWN_KINDS = frozenset({"agent", "server", "resource", "principal", "group"})


@dataclass(frozen=True, slots=True)
class URN:
    """An immutable global name."""

    kind: str
    authority: str
    local: str

    def __post_init__(self) -> None:
        if not _KIND_RE.match(self.kind):
            raise NamingError(f"invalid URN kind {self.kind!r}")
        if not _AUTHORITY_RE.match(self.authority):
            raise NamingError(f"invalid URN authority {self.authority!r}")
        if not _LOCAL_RE.match(self.local):
            raise NamingError(f"invalid URN local part {self.local!r}")

    @classmethod
    def parse(cls, text: str) -> "URN":
        """Parse ``urn:<kind>:<authority>/<local>``."""
        if not isinstance(text, str):
            raise NamingError(f"URN must be a string, got {type(text).__name__}")
        parts = text.split(":", 2)
        if len(parts) != 3 or parts[0] != "urn":
            raise NamingError(f"malformed URN {text!r} (expected urn:<kind>:<rest>)")
        _, kind, rest = parts
        authority, sep, local = rest.partition("/")
        if not sep:
            raise NamingError(f"malformed URN {text!r} (missing /<local> part)")
        return cls(kind=kind.lower(), authority=authority.lower(), local=local)

    @classmethod
    def make(cls, kind: str, authority: str, local: str) -> "URN":
        return cls(kind=kind.lower(), authority=authority.lower(), local=local)

    def child(self, suffix: str) -> "URN":
        """A name nested under this one (e.g. a child agent)."""
        return URN(kind=self.kind, authority=self.authority, local=f"{self.local}/{suffix}")

    def __str__(self) -> str:
        return f"urn:{self.kind}:{self.authority}/{self.local}"

    def to_state(self) -> str:
        return str(self)

    @classmethod
    def from_state(cls, state: str) -> "URN":
        return cls.parse(state)


register_serializable(URN, intern=True)

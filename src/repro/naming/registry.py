"""The name service: global name → current location + public key.

Section 4's domain registry / status-query machinery needs a way to find
"where is agent X now" and "which server exports resource Y".  Ajanta ran
a name registry service; here it is an in-memory authority shared by the
simulation.  Updates are owner-authenticated: a record can only be moved
or removed by presenting the owner token returned at registration
(modelling the registry's "ownership information ... used to prevent any
unauthorized modifications", section 5.5).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import DuplicateNameError, NamingError, UnknownNameError
from repro.naming.urn import URN
from repro.util.ids import IdGenerator

__all__ = ["NameRecord", "NameService"]


@dataclass(frozen=True, slots=True)
class NameRecord:
    """What the name service knows about one name."""

    name: URN
    location: str  # the hosting server's name (as a string URN)
    attributes: dict[str, Any]


class NameService:
    """A flat, authenticated name → record mapping.

    Lock discipline: ``_records`` and ``_owners`` are only ever touched
    under ``_lock`` (they must stay keyed identically — every register
    inserts into both, every unregister deletes from both, atomically),
    and nothing mutable that aliases the protected state escapes a
    method: records are frozen, and the one mutable field (the
    ``attributes`` dict) is copied both on the way in (:meth:`register`)
    and on the way out (:meth:`lookup`), so no caller can reach around
    the lock by editing a returned record's dict in place.
    """

    def __init__(self) -> None:
        self._records: dict[URN, NameRecord] = {}
        self._owners: dict[URN, str] = {}
        self._tokens = IdGenerator("nstoken")
        self._lock = threading.Lock()

    def register(
        self,
        name: URN,
        location: str,
        attributes: dict[str, Any] | None = None,
    ) -> str:
        """Bind ``name``; returns the owner token needed for later updates."""
        if not isinstance(name, URN):
            raise NamingError("names must be URN instances")
        with self._lock:
            if name in self._records:
                raise DuplicateNameError(f"{name} is already registered")
            token = self._tokens.next()
            self._records[name] = NameRecord(
                name=name, location=location, attributes=dict(attributes or {})
            )
            self._owners[name] = token
            return token

    def lookup(self, name: URN) -> NameRecord:
        with self._lock:
            try:
                record = self._records[name]
            except KeyError:
                raise UnknownNameError(f"{name} is not registered") from None
        # Defensive copy: returning the live attributes dict would let a
        # caller mutate registry state without the lock (and leak later
        # registry-side updates into records it already handed out).
        return replace(record, attributes=dict(record.attributes))

    def contains(self, name: URN) -> bool:
        with self._lock:
            return name in self._records

    def relocate(self, name: URN, token: str, new_location: str) -> None:
        """Update a name's location (agent migrated); owner-token gated."""
        with self._lock:
            self._check_owner(name, token)
            self._records[name] = replace(self._records[name], location=new_location)

    def unregister(self, name: URN, token: str) -> None:
        with self._lock:
            self._check_owner(name, token)
            del self._records[name]
            del self._owners[name]

    def _check_owner(self, name: URN, token: str) -> None:
        if name not in self._records:
            raise UnknownNameError(f"{name} is not registered")
        if self._owners[name] != token:
            raise NamingError(f"bad owner token for {name}")

    def names(self, kind: str | None = None) -> list[URN]:
        """All registered names, optionally filtered by kind."""
        with self._lock:
            return [
                n for n in self._records if kind is None or n.kind == kind
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

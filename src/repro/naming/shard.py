"""Consistent-hash ring: which shard owns a name, which replicas serve it.

The federated directory (ROADMAP item 1) splits the flat name space into
*shards*, each served by a small replica group of directory nodes.  The
assignment must be computable by any client from static configuration —
no lookup service in front of the lookup service — and stable under the
addition of shards, which is exactly what consistent hashing gives us:
every shard projects ``points_per_shard`` virtual points onto a 64-bit
ring, and a name belongs to the shard owning the first point at or after
the name's own hash.

Hashing is SHA-256-based and therefore identical across processes and
runs — no dependence on Python's randomized ``hash()``.  The same
primitive also buckets records for the anti-entropy digest exchange
(:func:`bucket_of`), so two replicas always agree on which bucket a
record falls in.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Mapping

from repro.errors import NamingError

__all__ = ["HashRing", "bucket_of", "stable_hash"]

_SPACE_BITS = 64
_SPACE = 1 << _SPACE_BITS


def stable_hash(text: str) -> int:
    """A 64-bit position on the ring, stable across processes."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def bucket_of(text: str, n_buckets: int) -> int:
    """Which of ``n_buckets`` digest buckets ``text`` falls in.

    Replicas exchanging Merkle-style digests must partition their key
    space identically; this is the shared rule.
    """
    if n_buckets < 1:
        raise NamingError("need at least one bucket")
    return stable_hash("bucket:" + text) % n_buckets


class HashRing:
    """Immutable shard map: shard id → replica nodes, on a hash ring.

    ``shards`` maps each shard id to the (ordered) tuple of directory
    node names serving it.  Replica order matters to clients — it is the
    preference order for reads — so it is preserved as given.
    """

    def __init__(
        self,
        shards: Mapping[str, Iterable[str]],
        *,
        points_per_shard: int = 64,
    ) -> None:
        if not shards:
            raise NamingError("a hash ring needs at least one shard")
        if points_per_shard < 1:
            raise NamingError("points_per_shard must be positive")
        replicas: dict[str, tuple[str, ...]] = {}
        for shard_id, nodes in shards.items():
            group = tuple(nodes)
            if not group:
                raise NamingError(f"shard {shard_id!r} has no replicas")
            if len(set(group)) != len(group):
                raise NamingError(f"shard {shard_id!r} repeats a replica")
            replicas[shard_id] = group
        self._replicas = replicas
        points: dict[int, str] = {}
        # Deterministic iteration (sorted shard ids) so a point collision
        # — astronomically unlikely, but possible — resolves identically
        # everywhere.
        for shard_id in sorted(replicas):
            for i in range(points_per_shard):
                point = stable_hash(f"shard:{shard_id}#{i}")
                points.setdefault(point, shard_id)
        self._points = sorted(points)
        self._owners = [points[p] for p in self._points]

    # -- placement -----------------------------------------------------------

    def shard_for(self, name: object) -> str:
        """The shard id owning ``name`` (anything with a stable str)."""
        position = stable_hash(str(name))
        index = bisect_right(self._points, position)
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]

    def replicas_for(self, name: object) -> tuple[str, ...]:
        """The replica nodes serving ``name``, in preference order."""
        return self._replicas[self.shard_for(name)]

    # -- introspection -------------------------------------------------------

    def shard_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._replicas))

    def replicas(self, shard_id: str) -> tuple[str, ...]:
        try:
            return self._replicas[shard_id]
        except KeyError:
            raise NamingError(f"unknown shard {shard_id!r}") from None

    def nodes(self) -> tuple[str, ...]:
        """Every directory node, across all shards (deduplicated)."""
        seen: dict[str, None] = {}
        for shard_id in sorted(self._replicas):
            for node in self._replicas[shard_id]:
                seen.setdefault(node)
        return tuple(seen)

    def shards_of(self, node: str) -> tuple[str, ...]:
        """Which shards ``node`` serves (normally exactly one)."""
        return tuple(
            shard_id
            for shard_id in sorted(self._replicas)
            if node in self._replicas[shard_id]
        )

    def __len__(self) -> int:
        return len(self._replicas)

"""The name service as a network service.

In Ajanta the name registry is itself a server on the network; agents and
agent servers reach it through the same authenticated channels as
everything else.  :class:`NameServiceHost` exports an authoritative
:class:`~repro.naming.registry.NameService` over a
:class:`~repro.net.secure_channel.SecureHost`;
:class:`RemoteNameService` is the client stub other nodes hold.

Blocking semantics: client operations are secure calls, so they must run
in a simulated thread (agent threads qualify — `env.locate` works
naturally).  For the one place the hosting machinery updates the registry
from kernel context — recording an arrival — the stub offers
``relocate_async``, which runs the update in a short-lived thread and
reports failures to a callback instead of blocking the arrival path.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import (
    DuplicateNameError,
    NamingError,
    NetworkError,
    ReproError,
    UnknownNameError,
)
from repro.naming.registry import NameRecord, NameService
from repro.naming.urn import URN
from repro.net.secure_channel import SecureHost
from repro.obs import runtime as _obs
from repro.sim.kernel import Kernel
from repro.sim.monitor import Counter
from repro.sim.threads import SimThread
from repro.util.retry import RetryPolicy, call_with_retries
from repro.util.serialization import decode, encode

__all__ = ["NameServiceHost", "RemoteNameService", "fire_and_forget_relocate"]

_APP_KIND = "ns.op"

_ERROR_KINDS = {
    "unknown": UnknownNameError,
    "duplicate": DuplicateNameError,
    "naming": NamingError,
}


def fire_and_forget_relocate(
    service: Any,
    kernel: Kernel,
    name: URN,
    token: str,
    new_location: str,
    *,
    on_fail: Callable[[], None] | None = None,
    audit: Any | None = None,
    stats: Counter | None = None,
) -> None:
    """Run ``service.relocate`` in a short-lived thread; account failures.

    The arrival path runs in kernel context and must not block on the
    network, but a relocation that silently never lands strands every
    subsequent ``env.locate`` of the agent.  A failure therefore (a)
    bumps ``relocate_failed`` on ``stats``, (b) increments the global
    ``ns_relocate_failed`` metric when a metrics registry is installed,
    (c) writes an audit record when the hosting server's ``audit`` log is
    passed, and (d) only then invokes the legacy ``on_fail`` callback.
    """

    def body() -> None:
        try:
            service.relocate(name, token, new_location)
        except (NamingError, NetworkError, ReproError) as exc:
            if stats is not None:
                stats.add("relocate_failed")
            if _obs.METRICS_ON:
                _obs.METRICS.inc("ns_relocate_failed")
            if audit is not None:
                audit.record(
                    str(name), "ns.relocate_async", new_location, False,
                    f"lost relocation to {new_location}: "
                    f"{type(exc).__name__}: {exc}",
                )
            if on_fail is not None:
                on_fail()

    SimThread(kernel, body, f"ns-relocate:{name.local}").start()


class NameServiceHost:
    """Server side: the authoritative registry behind secure channels."""

    def __init__(self, secure_host: SecureHost, service: NameService | None = None):
        self.service = service if service is not None else NameService()
        self._host = secure_host
        secure_host.bind_app(_APP_KIND, self._on_op)

    def _on_op(self, peer: str, body: bytes) -> bytes:
        try:
            request = decode(body)
            op = request["op"]
            if op == "register":
                token = self.service.register(
                    request["name"], request["location"],
                    request.get("attributes") or {},
                )
                return encode({"ok": token})
            if op == "lookup":
                record = self.service.lookup(request["name"])
                return encode({
                    "ok": {
                        "name": record.name,
                        "location": record.location,
                        "attributes": record.attributes,
                    }
                })
            if op == "contains":
                return encode({"ok": self.service.contains(request["name"])})
            if op == "relocate":
                self.service.relocate(
                    request["name"], request["token"], request["location"]
                )
                return encode({"ok": True})
            if op == "unregister":
                self.service.unregister(request["name"], request["token"])
                return encode({"ok": True})
            return encode({"error": f"unknown op {op!r}", "kind": "naming"})
        except UnknownNameError as exc:
            return encode({"error": str(exc), "kind": "unknown"})
        except DuplicateNameError as exc:
            return encode({"error": str(exc), "kind": "duplicate"})
        except NamingError as exc:
            return encode({"error": str(exc), "kind": "naming"})
        except ReproError as exc:
            return encode({"error": str(exc), "kind": "naming"})


class RemoteNameService:
    """Client stub: the NameService interface over the network.

    All methods except ``relocate_async`` block and therefore require a
    simulated-thread context.
    """

    def __init__(self, secure_host: SecureHost, registry_node: str,
                 timeout: float = 30.0,
                 retry: RetryPolicy | None = None,
                 retry_rng: Any | None = None) -> None:
        self._host = secure_host
        self._registry_node = registry_node
        self._timeout = timeout
        # Idempotent operations (lookup / contains / relocate) retry on
        # network failure; register and unregister do NOT — a retransmit
        # of a register whose reply was lost would mint a second token.
        self._retry = retry or RetryPolicy(attempts=3, base_delay=0.2,
                                           max_delay=5.0)
        self._retry_rng = retry_rng
        self.stats = Counter()

    # -- plumbing ------------------------------------------------------------

    def _call(self, request: dict) -> Any:
        channel = self._host.connect(self._registry_node)
        reply = decode(channel.call(_APP_KIND, encode(request),
                                    timeout=self._timeout))
        if "error" in reply:
            raise _ERROR_KINDS.get(reply.get("kind"), NamingError)(reply["error"])
        return reply["ok"]

    def _call_idempotent(self, request: dict) -> Any:
        def attempt(_: int) -> Any:
            return self._call(request)

        def note_retry(attempt_no: int, exc: BaseException) -> None:
            self.stats.add("retries")
            # The registry may have restarted; force a fresh handshake.
            self._host.drop_channel(self._registry_node)

        return call_with_retries(
            attempt,
            kernel=self._host.kernel,
            policy=self._retry,
            rng=self._retry_rng,
            retry_on=(NetworkError,),
            on_retry=note_retry,
            describe=f"ns.{request['op']} at {self._registry_node}",
        )

    # -- the NameService interface --------------------------------------------

    def register(self, name: URN, location: str,
                 attributes: dict[str, Any] | None = None) -> str:
        return self._call({
            "op": "register", "name": name, "location": location,
            "attributes": dict(attributes or {}),
        })

    def lookup(self, name: URN) -> NameRecord:
        data = self._call_idempotent({"op": "lookup", "name": name})
        return NameRecord(name=data["name"], location=data["location"],
                          attributes=data["attributes"])

    def contains(self, name: URN) -> bool:
        return self._call_idempotent({"op": "contains", "name": name})

    def relocate(self, name: URN, token: str, new_location: str) -> None:
        self._call_idempotent({
            "op": "relocate", "name": name, "token": token,
            "location": new_location,
        })

    def unregister(self, name: URN, token: str) -> None:
        self._call({"op": "unregister", "name": name, "token": token})

    # -- kernel-context-safe update ----------------------------------------------

    def relocate_async(
        self,
        kernel: Kernel,
        name: URN,
        token: str,
        new_location: str,
        on_fail: Callable[[], None] | None = None,
        audit: Any | None = None,
    ) -> None:
        """Fire-and-forget relocation from kernel context."""
        fire_and_forget_relocate(
            self, kernel, name, token, new_location,
            on_fail=on_fail, audit=audit, stats=self.stats,
        )

"""Direct unit tests for the AgentMailbox resource."""

from __future__ import annotations

import pytest

from repro.agents.mailbox import AgentMailbox, mailbox_name_of
from repro.core.policy import SecurityPolicy
from repro.core.resource import exported_methods
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.sandbox.threadgroup import enter_group
from repro.sim.kernel import Kernel
from repro.sim.threads import SimThread

OWNER_AGENT = URN.parse("urn:agent:umn.edu/owner/listener")


def make_mailbox(kernel=None):
    return AgentMailbox(
        OWNER_AGENT, SecurityPolicy.allow_all(confine=False),
        kernel or Kernel(),
    )


def test_resource_identity():
    mailbox = make_mailbox()
    assert mailbox.resource_name() == mailbox_name_of(OWNER_AGENT)
    assert mailbox.resource_owner() == OWNER_AGENT
    assert mailbox.resource_kind() == "AgentMailbox"


def test_exported_interface_is_sender_only():
    methods = set(exported_methods(AgentMailbox))
    assert "deliver" in methods and "pending" in methods
    # The owner-side read path must NOT be proxyable.
    assert "receive" not in methods
    assert "try_receive" not in methods


def test_deliver_records_domain_sender(env):
    mailbox = make_mailbox()
    domain = env.agent_domain(Rights.all())
    with enter_group(domain.thread_group):
        assert mailbox.deliver("hello")
    ok, (sender, message) = mailbox.try_receive()
    assert ok
    assert sender == str(domain.credentials.agent)
    assert message == "hello"


def test_deliver_outside_any_domain_marked_unknown():
    mailbox = make_mailbox()
    mailbox.deliver("anonymous note")
    ok, (sender, message) = mailbox.try_receive()
    assert ok and sender == "<unknown>"


def test_pending_counts():
    mailbox = make_mailbox()
    assert mailbox.pending() == 0
    mailbox.deliver("a")
    mailbox.deliver("b")
    assert mailbox.pending() == 2
    mailbox.try_receive()
    assert mailbox.pending() == 1


def test_blocking_receive_in_sim():
    kernel = Kernel()
    mailbox = make_mailbox(kernel)
    got = []

    def reader():
        got.append(mailbox.receive())

    def writer():
        kernel.current_thread().sleep(2.0)
        mailbox.deliver("late delivery")

    SimThread(kernel, reader, "r").start()
    SimThread(kernel, writer, "w").start()
    kernel.run()
    assert got == [("<unknown>", "late delivery")]
    assert kernel.now() == 2.0


def test_fifo_order():
    mailbox = make_mailbox()
    for i in range(5):
        mailbox.deliver(i)
    received = [mailbox.try_receive()[1][1] for _ in range(5)]
    assert received == [0, 1, 2, 3, 4]

"""Property-based tests for the agent wire format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.itinerary import Itinerary, Stop
from repro.agents.transfer import AgentImage
from repro.credentials.rights import Rights
from repro.util.serialization import decode, encode
from tests.conftest import CoreEnv

ENV = CoreEnv(seed=321)  # module-level: hypothesis reuses it across examples

_state_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=15,
)

_state_dicts = st.dictionaries(
    st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True),
    _state_values,
    max_size=5,
)


@settings(max_examples=100, deadline=None)
@given(state=_state_dicts, trace_len=st.integers(min_value=0, max_value=5))
def test_property_image_roundtrip(state, trace_len):
    creds = ENV.credentials(Rights.all())
    image = AgentImage(
        name=creds.agent,
        credentials=creds,
        class_name="Visitor",
        source="class Visitor(Agent):\n    pass\n",
        state=state,
        entry_method="run",
        home_site="urn:server:h.net/s0",
        trace=tuple(f"urn:server:hop{i}.net/s" for i in range(trace_len)),
    )
    restored = decode(encode(image))
    assert restored == image
    assert restored.state == state
    # Credentials inside the restored image still verify.
    restored.credentials.verify(ENV.ca, ENV.clock.now())


@settings(max_examples=100, deadline=None)
@given(
    servers=st.lists(
        st.from_regex(r"urn:server:[a-z]{2,6}\.net/s[0-9]", fullmatch=True),
        min_size=1,
        max_size=6,
    ),
    advances=st.integers(min_value=0, max_value=6),
)
def test_property_itinerary_progress_survives_wire(servers, advances):
    itinerary = Itinerary.tour(servers)
    for _ in range(min(advances, len(servers))):
        if not itinerary.finished:
            itinerary.advance()
    restored = decode(encode(itinerary))
    assert restored == itinerary
    assert restored.finished == itinerary.finished
    if not itinerary.finished:
        assert restored.current() == itinerary.current()


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_property_with_state_never_mutates_original(data):
    creds = ENV.credentials(Rights.all())
    base_state = data.draw(_state_dicts)
    new_state = data.draw(_state_dicts)
    image = AgentImage(
        name=creds.agent,
        credentials=creds,
        class_name="V",
        source="",
        state=base_state,
        entry_method="run",
        home_site="urn:server:h.net/s0",
    )
    moved = image.with_state(new_state, "report").with_hop("urn:server:a.net/s1")
    assert image.state == base_state
    assert image.trace == ()
    assert moved.state == new_state
    assert moved.entry_method == "report"

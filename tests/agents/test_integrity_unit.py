"""Unit coverage for the appraisal chain and itinerary commitments.

The red-team suite drives whole worlds; these tests pin the primitives —
link sealing/verification, genesis anchoring, tip resealing, the wire
whitelist and commitment MACs — in isolation, where each rejection
reason can be produced surgically.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.agents.integrity import (
    APPRAISAL_ATTRIBUTE,
    AppraisalLink,
    IntegrityAuthority,
    genesis_tag,
    state_digest,
)
from repro.agents.itinerary import Itinerary, ItineraryCommitment
from repro.agents.transfer import AgentImage
from repro.credentials.rights import Rights
from repro.crypto.keys import KeyPair
from repro.crypto.mac import HmacKey
from repro.errors import (
    AgentAttributeError,
    AgentIntegrityError,
    SerializationError,
)
from repro.util.rng import make_rng
from repro.util.serialization import decode, encode

A = "urn:server:site.net/a"
B = "urn:server:site.net/b"
C = "urn:server:site.net/c"


@pytest.fixture
def hosts(env):
    """Integrity authorities for three servers under one CA."""

    def build(name: str, salt: int) -> IntegrityAuthority:
        keys = KeyPair.generate(make_rng(salt, "host"), bits=512)
        return IntegrityAuthority(
            name=name,
            keys=keys,
            certificate=env.ca.issue(name, keys.public),
            trust_anchor=env.ca,
            clock=env.clock,
            rng=random.Random(salt),
        )

    return build(A, 11), build(B, 22), build(C, 33)


@pytest.fixture
def image(env):
    credentials = env.credentials(Rights.all())
    return AgentImage(
        name=credentials.agent,
        credentials=credentials,
        class_name="Probe",
        source="",
        state={"n": 1},
        entry_method="run",
        home_site=A,
    )


def sealed_hop(authority, image, destination):
    """One honest departure: stamp the hop, then seal it."""
    return authority.seal_departure(image.with_hop(authority.name),
                                    destination)


def test_honest_hop_verifies_and_replay_is_refused(hosts, image):
    a, b, _ = hosts
    outgoing = sealed_hop(a, image, B)
    tip = b.verify_arrival(outgoing, peer=A)
    assert tip == outgoing.attributes[APPRAISAL_ATTRIBUTE][-1].tag()
    b.remember(tip)
    with pytest.raises(AgentIntegrityError) as exc:
        b.verify_arrival(outgoing, peer=A)
    assert exc.value.context["reason"] == "replayed"


def test_state_tamper_after_seal_is_detected(hosts, image):
    a, b, _ = hosts
    outgoing = sealed_hop(a, image, B)
    doctored = dataclasses.replace(outgoing, state={"n": 666})
    with pytest.raises(AgentIntegrityError) as exc:
        b.verify_arrival(doctored, peer=A)
    assert exc.value.context["reason"] == "state-tampered"


def test_credentials_are_covered_by_the_seal(env, hosts, image):
    a, b, _ = hosts
    outgoing = sealed_hop(a, image, B)
    swapped = dataclasses.replace(
        outgoing, credentials=env.credentials(Rights.all())
    )
    # The swapped chain names a different agent, but even matching names
    # would fail: the digest covers the credentials as forwarded.
    assert state_digest(swapped) != state_digest(outgoing)
    with pytest.raises(AgentIntegrityError):
        b.verify_arrival(swapped, peer=A)


def test_chain_transplant_breaks_on_genesis(env, hosts, image):
    """A valid chain moved wholesale onto another agent's image fails
    link 0's anchor — the genesis tag binds agent identity and home."""
    a, b, _ = hosts
    outgoing = sealed_hop(a, image, B)
    other_creds = env.credentials(Rights.all())
    victim = dataclasses.replace(
        outgoing, name=other_creds.agent, credentials=other_creds
    )
    # Re-digest so the state check passes; the transplant must die on
    # the chain anchor instead.
    chain = victim.attributes[APPRAISAL_ATTRIBUTE]
    fixed = dataclasses.replace(chain[0], state_digest=state_digest(victim))
    fixed = dataclasses.replace(fixed, signature=a.keys.private.sign(fixed.tag()))
    victim = victim.with_attributes(**{APPRAISAL_ATTRIBUTE: (fixed,)})
    with pytest.raises(AgentIntegrityError) as exc:
        b.verify_arrival(victim, peer=A)
    assert exc.value.context["reason"] == "chain-broken"
    assert genesis_tag(str(victim.name), A) != genesis_tag(str(image.name), A)


def test_route_violation_is_named(hosts, image):
    """Hop i's sealed destination must be hop i+1's sealer."""
    a, b, c = hosts
    first = sealed_hop(a, image, B)  # sealed for B...
    second = sealed_hop(c, first, B)  # ...but C forwarded it
    with pytest.raises(AgentIntegrityError) as exc:
        b.verify_arrival(second, peer=C)
    assert exc.value.context["reason"] == "route-violation"


def test_reseal_tip_only_rewrites_own_link(hosts, image):
    a, b, _ = hosts
    outgoing = sealed_hop(a, image, B)
    assert b.reseal_tip(outgoing, C) is outgoing  # not B's tip to rewrite
    redirected = a.reseal_tip(outgoing, C)
    chain = redirected.attributes[APPRAISAL_ATTRIBUTE]
    assert len(chain) == 1  # replaced, never appended
    assert chain[0].destination == C
    assert chain[0].hop == 0


def test_appraisal_link_wire_round_trip(hosts, image):
    a, _, _ = hosts
    link = sealed_hop(a, image, B).attributes[APPRAISAL_ATTRIBUTE][0]
    assert decode(encode(link)) == link


def test_appraisal_link_from_state_validates(hosts, image):
    a, _, _ = hosts
    link = sealed_hop(a, image, B).attributes[APPRAISAL_ATTRIBUTE][0]
    good = link.to_state()
    for corruption in (
        {"hop": -1},
        {"hop": True},
        {"origin": ""},
        {"destination": "x" * 600},
        {"state_digest": b""},
        {"prev_tag": b"y" * 65},
        {"signature": b""},
        {"timestamp": 3},
    ):
        with pytest.raises(SerializationError):
            AppraisalLink.from_state({**good, **corruption})


def test_itinerary_commitment_round_trip_and_wrong_key(env):
    key = HmacKey(b"home-secret")
    commitment = ItineraryCommitment.issue(
        key, agent="urn:agent:x/a", home=A,
        stops=((B, "run"), (C, "run")), issued_at=1.5,
    )
    assert decode(encode(commitment)) == commitment
    assert commitment.verify(key)
    assert not commitment.verify(HmacKey(b"attacker"))


def test_off_plan_visit_fails_home_reappraisal(hosts, image):
    a, _, _ = hosts
    planned = dataclasses.replace(
        image, state={"itinerary": Itinerary.tour([B])}
    )
    committed = a.commit_itinerary(planned)
    returned = dataclasses.replace(committed, trace=(A, C))  # C is off-plan
    with pytest.raises(AgentIntegrityError) as exc:
        a.verify_return(returned, peer=C)
    assert exc.value.context["reason"] == "itinerary-violation"
    # The same trace inside the plan (plus home) is fine.
    a.verify_return(dataclasses.replace(committed, trace=(A, B)), peer=B)
    assert a.stats["itineraries_verified"] == 1


def test_attribute_whitelist_accepts_the_protocol_shapes(hosts, image):
    a, _, _ = hosts
    outgoing = sealed_hop(a, image, B).with_attributes(
        transfer_id="t-1",
        trace_ctx={"trace_id": "ab", "span_id": "cd"},
        ns_token="tok",
        returned_home=True,
        note="small scalar",
    )
    assert AgentImage.from_attributes(outgoing.attributes) is outgoing.attributes


@pytest.mark.parametrize(
    "attributes",
    [
        "not-a-dict",
        {f"k{i}": i for i in range(33)},  # too many keys
        {"x" * 65: 1},  # key too long
        {"": 1},
        {"transfer_id": 12345},
        {"transfer_id": ""},
        {"trace_ctx": {"k": 1}},
        {"trace_ctx": {str(i): "v" for i in range(9)}},
        {"ns_token": ""},
        {"returned_home": "yes"},
        {"appraisal": []},  # must be a tuple of links
        {"appraisal": ("junk",)},
        {"itinerary_commitment": {"forged": True}},
        {"blob": "x" * 4097},  # oversized scalar
        {"nested": {"dict": "values"}},  # structure outside reserved keys
        {"listy": [1, 2]},
    ],
)
def test_attribute_whitelist_refuses(attributes):
    with pytest.raises(AgentAttributeError):
        AgentImage.from_attributes(attributes)

"""Tests for the ItineraryAgent travel driver."""

from __future__ import annotations

import pytest

from repro.agents.agent import register_trusted_agent_class
from repro.agents.itinerary import Itinerary
from repro.agents.patterns import ItineraryAgent
from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed


@register_trusted_agent_class
class StampCollector(ItineraryAgent):
    """Visits servers and collects their names."""

    def __init__(self) -> None:
        super().__init__()
        self.stamps = []

    def visit(self, stop):
        self.stamps.append(self.host.server_name())

    def finish(self):
        self.host.report_home({"stamps": self.stamps, "skipped": self.skipped})
        self.complete()


def test_full_tour_with_home_report():
    bed = Testbed(3)
    agent = StampCollector()
    agent.itinerary = Itinerary.tour([s.name for s in bed.servers])
    bed.launch(agent, Rights.all())
    bed.run()
    report = bed.home.reports[-1]["payload"]
    assert report["stamps"] == [s.name for s in bed.servers]
    assert report["skipped"] == []


def test_first_stop_is_launch_server_no_self_transfer():
    bed = Testbed(2)
    agent = StampCollector()
    agent.itinerary = Itinerary.tour([bed.home.name, bed.servers[1].name])
    bed.launch(agent, Rights.all())
    bed.run()
    # Only one migration: home is visited in place.
    assert bed.home.stats["transfers_out"] == 1


def test_dead_stop_is_skipped_and_recorded():
    bed = Testbed(3, topology="line", server_kwargs={"transfer_timeout": 5.0})
    # line: s0 - s1 - s2; kill s1 entirely (both links down makes s2
    # unreachable too, so instead close s1's endpoint).
    bed.servers[1].endpoint.close()
    agent = StampCollector()
    agent.itinerary = Itinerary.tour([s.name for s in bed.servers])
    bed.launch(agent, Rights.all())
    bed.run(detect_deadlock=False)
    report = bed.home.reports[-1]["payload"]
    assert report["stamps"] == [bed.home.name, bed.servers[2].name]
    assert len(report["skipped"]) == 1
    assert report["skipped"][0][0] == bed.servers[1].name


def test_default_finish_completes_with_summary():
    @register_trusted_agent_class
    class PlainTourist(ItineraryAgent):
        pass

    bed = Testbed(2)
    agent = PlainTourist()
    agent.itinerary = Itinerary.tour([s.name for s in bed.servers])
    image = bed.launch(agent, Rights.all())
    bed.run()
    assert bed.servers[1].resident_status(image.name)["status"] == "completed"


def test_missing_itinerary_is_an_error():
    @register_trusted_agent_class
    class Forgetful(ItineraryAgent):
        pass

    bed = Testbed(1)
    image = bed.launch(Forgetful(), Rights.all())
    bed.run()
    assert bed.home.resident_status(image.name)["status"] == "terminated"


def test_visit_can_use_resources_per_stop():
    @register_trusted_agent_class
    class Depositor(ItineraryAgent):
        def visit(self, stop):
            authority = stop.server.split(":")[2].split("/")[0]
            buf = self.host.get_resource(f"urn:resource:{authority}/slot")
            buf.put(self.host.server_name())

    bed = Testbed(3)
    buffers = []
    for server in bed.servers:
        authority = server.name.split(":")[2].split("/")[0]
        buf = Buffer(URN.parse(f"urn:resource:{authority}/slot"),
                     URN.parse(f"urn:principal:{authority}/o"),
                     SecurityPolicy.allow_all(), capacity=4)
        server.install_resource(buf)
        buffers.append(buf)
    agent = Depositor()
    agent.itinerary = Itinerary.tour([s.name for s in bed.servers])
    bed.launch(agent, Rights.all())
    bed.run()
    for server, buf in zip(bed.servers, buffers):
        assert buf.get() == server.name

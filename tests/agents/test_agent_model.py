"""Unit tests for the agent programming model."""

from __future__ import annotations

import pytest

from repro.agents.agent import (
    Agent,
    Completion,
    Departure,
    register_trusted_agent_class,
    trusted_agent_class,
)
from repro.agents.itinerary import Itinerary, Stop
from repro.agents.transfer import AgentImage, capture_image
from repro.credentials.rights import Rights
from repro.errors import AgentStateError, MigrationError, TransferError
from repro.util.serialization import decode, encode


class TestAgentBase:
    def test_go_raises_departure(self):
        agent = Agent()
        with pytest.raises(Departure) as info:
            agent.go("urn:server:x.com/s1", "collect")
        assert info.value.destination == "urn:server:x.com/s1"
        assert info.value.method == "collect"

    def test_go_default_method(self):
        with pytest.raises(Departure) as info:
            Agent().go("urn:server:x.com/s1")
        assert info.value.method == "run"

    def test_go_invalid_destination(self):
        with pytest.raises(MigrationError):
            Agent().go("")

    def test_complete_raises_completion(self):
        with pytest.raises(Completion) as info:
            Agent().complete({"answer": 42})
        assert info.value.result == {"answer": 42}

    def test_signals_escape_agent_exception_handlers(self):
        """Agent code catching Exception cannot swallow migration."""

        def sneaky():
            try:
                Agent().go("urn:server:x.com/s1")
            except Exception:  # noqa: BLE001
                return "swallowed"

        with pytest.raises(Departure):
            sneaky()

    def test_state_capture_skips_private_and_reserved(self):
        agent = Agent()
        agent.mission = "shop"
        agent.quotes = [1, 2]
        agent._secret = "internal"
        agent.host = "fake-env"
        state = agent.capture_state()
        assert state == {"mission": "shop", "quotes": [1, 2]}

    def test_state_restore(self):
        agent = Agent()
        agent.restore_state({"mission": "shop", "budget": 10})
        assert agent.mission == "shop" and agent.budget == 10

    def test_restore_rejects_illegal_keys(self):
        with pytest.raises(AgentStateError):
            Agent().restore_state({"_sneaky": 1})
        with pytest.raises(AgentStateError):
            Agent().restore_state({"host": "forged-env"})

    def test_trusted_registry(self):
        @register_trusted_agent_class
        class Registered(Agent):
            pass

        assert trusted_agent_class("Registered") is Registered
        with pytest.raises(AgentStateError):
            trusted_agent_class("NeverHeardOf")

    def test_registry_rejects_non_agents(self):
        class NotAgent:
            pass

        with pytest.raises(AgentStateError):
            register_trusted_agent_class(NotAgent)

    def test_registry_rejects_name_collision(self):
        @register_trusted_agent_class
        class Unique1(Agent):
            pass

        class Unique2(Agent):
            pass

        with pytest.raises(AgentStateError):
            register_trusted_agent_class(Unique2, name="Unique1")


class TestItinerary:
    def test_tour_construction(self):
        it = Itinerary.tour(["a", "b"], method="visit", home="h", home_method="done")
        assert len(it) == 3
        assert it.current() == Stop("a", "visit")
        assert it.remaining()[-1] == Stop("h", "done")

    def test_advance_to_finish(self):
        it = Itinerary.tour(["a", "b"])
        assert it.advance() == Stop("b", "run")
        assert it.advance() is None
        assert it.finished
        with pytest.raises(AgentStateError):
            it.current()
        with pytest.raises(AgentStateError):
            it.advance()

    def test_position_validation(self):
        with pytest.raises(AgentStateError):
            Itinerary([Stop("a")], position=5)

    def test_serialization_preserves_progress(self):
        it = Itinerary.tour(["a", "b", "c"])
        it.advance()
        restored = decode(encode(it))
        assert restored == it
        assert restored.position == 1
        assert restored.current() == Stop("b", "run")


class FakeCreds:
    pass


class TestAgentImage:
    def make_image(self, env, **kw):
        agent = Agent()
        agent.mission = "test"
        creds = env.credentials(Rights.all())
        defaults = dict(
            credentials=creds,
            entry_method="capture_state",  # any existing method
            home_site="urn:server:h.net/s0",
        )
        defaults.update(kw)
        return capture_image(agent, **defaults), creds

    def test_capture_and_roundtrip(self, env):
        image, creds = self.make_image(env)
        assert image.name == creds.agent
        assert image.state == {"mission": "test"}
        assert image.is_trusted_code
        restored = decode(encode(image))
        assert restored == image

    def test_missing_entry_method_rejected(self, env):
        with pytest.raises(TransferError):
            self.make_image(env, entry_method="fly_to_the_moon")

    def test_with_hop_and_state(self, env):
        image, _ = self.make_image(env)
        moved = image.with_hop("urn:server:a.net/s1").with_state(
            {"mission": "later"}, "report"
        )
        assert moved.trace == ("urn:server:a.net/s1",)
        assert moved.state == {"mission": "later"}
        assert moved.entry_method == "report"
        assert image.trace == ()  # original untouched

    def test_wire_size_positive_and_stable(self, env):
        image, _ = self.make_image(env)
        assert image.wire_size() == image.wire_size() > 100

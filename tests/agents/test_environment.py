"""Unit tests for the agent environment facade."""

from __future__ import annotations

import pytest

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.apps.buffer import Buffer
from repro.core.policy import SecurityPolicy
from repro.credentials.rights import Rights
from repro.naming.urn import URN
from repro.server.testbed import Testbed


@register_trusted_agent_class
class EnvProbe(Agent):
    """Reports everything its environment tells it."""

    def run(self):
        self.host.log("probe checking in")
        self.host.report_home({
            "server": self.host.server_name(),
            "home": self.host.home_site(),
            "now": self.host.now(),
            "resources": self.host.resources_available(),
            "co_located": self.host.co_located_agents(),
            "located_self": self.host.locate(str(self.name)),
        })
        self.complete()


def test_environment_orientation():
    bed = Testbed(2)
    buf = Buffer(URN.parse("urn:resource:site1.net/buf"),
                 URN.parse("urn:principal:site1.net/o"),
                 SecurityPolicy.allow_all())
    bed.servers[1].install_resource(buf)
    image = bed.launch(EnvProbe(), Rights.all(), at=bed.servers[1])
    bed.run()
    report = bed.servers[1].reports[-1]["payload"]
    assert report["server"] == bed.servers[1].name
    assert report["home"] == bed.servers[1].name
    assert report["resources"] == ["urn:resource:site1.net/buf"]
    assert report["co_located"] == []
    assert report["located_self"] == bed.servers[1].name


def test_co_located_agents_visible():
    @register_trusted_agent_class
    class Lingerer(Agent):
        def run(self):
            self.host.sleep(10.0)
            self.complete()

    @register_trusted_agent_class
    class Counter(Agent):
        def run(self):
            self.host.sleep(1.0)  # let the lingerer settle in
            self.host.report_home({"others": self.host.co_located_agents()})
            self.complete()

    bed = Testbed(1)
    lingerer = bed.launch(Lingerer(), Rights.all(), agent_local="lingerer")
    bed.launch(Counter(), Rights.all(), agent_local="counter")
    bed.run()
    others = bed.home.reports[-1]["payload"]["others"]
    assert others == [str(lingerer.name)]


def test_agent_log_lands_in_audit():
    bed = Testbed(1)
    bed.launch(EnvProbe(), Rights.all())
    bed.run()
    logs = bed.home.audit.records(operation="agent.log")
    assert logs and logs[0].detail == "probe checking in"
    assert logs[0].allowed


def test_sleep_requires_sim_thread():
    from repro.agents.environment import AgentEnvironment
    from repro.errors import AgentStateError
    from repro.sandbox.domain import ProtectionDomain
    from repro.sandbox.threadgroup import ThreadGroup

    bed = Testbed(1)
    domain = ProtectionDomain("d", "agent", ThreadGroup("g"),
                              credentials=bed.credentials_for(Rights.all()))
    env = AgentEnvironment(bed.home, domain, bed.home.name)
    with pytest.raises(AgentStateError):
        env.sleep(1.0)  # kernel context, not a simulated thread


def test_receive_without_mailbox():
    from repro.agents.environment import AgentEnvironment
    from repro.errors import AgentStateError
    from repro.sandbox.domain import ProtectionDomain
    from repro.sandbox.threadgroup import ThreadGroup

    bed = Testbed(1)
    domain = ProtectionDomain("d2", "agent", ThreadGroup("g2"),
                              credentials=bed.credentials_for(Rights.all()))
    env = AgentEnvironment(bed.home, domain, bed.home.name)
    with pytest.raises(AgentStateError, match="create_mailbox"):
        env.receive()
    with pytest.raises(AgentStateError, match="create_mailbox"):
        env.try_receive()


def test_locate_without_name_service():
    from repro.agents.environment import AgentEnvironment
    from repro.sandbox.domain import ProtectionDomain
    from repro.sandbox.threadgroup import ThreadGroup

    bed = Testbed(1)
    bed.home.name_service = None
    domain = ProtectionDomain("d3", "agent", ThreadGroup("g3"),
                              credentials=bed.credentials_for(Rights.all()))
    env = AgentEnvironment(bed.home, domain, bed.home.name)
    assert env.locate("urn:agent:x.net/whoever") is None

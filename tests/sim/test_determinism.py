"""Property: the simulation is a pure function of its inputs.

Random workloads of sleeping/queueing threads must produce *identical*
event logs on two independent runs — the property all security and
benchmark results in this repo rest on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Kernel
from repro.sim.sync import BlockingQueue, Semaphore
from repro.sim.threads import SimThread


def run_workload(spec: list[list[float]], capacity: int) -> list[str]:
    """``spec``: per-thread sleep sequences; producers/consumers alternate."""
    kernel = Kernel()
    queue = BlockingQueue(kernel, capacity=capacity)
    sem = Semaphore(kernel, tokens=2)
    log: list[str] = []

    def make(index: int, pauses: list[float]):
        def body():
            me = kernel.current_thread()
            for step, pause in enumerate(pauses):
                me.sleep(pause)
                with sem:
                    if index % 2 == 0:
                        queue.put((index, step))
                        log.append(f"t{kernel.now():.3f} p{index}.{step}")
                    else:
                        ok, item = queue.try_get()
                        log.append(
                            f"t{kernel.now():.3f} c{index}.{step}={item if ok else '-'}"
                        )

        return body

    for i, pauses in enumerate(spec):
        SimThread(kernel, make(i, pauses), f"w{i}").start()
    kernel.run(detect_deadlock=False)
    log.append(f"end@{kernel.now():.3f} qlen={len(queue)}")
    return log


@settings(max_examples=30, deadline=None)
@given(
    spec=st.lists(
        st.lists(
            st.floats(min_value=0.01, max_value=2.0).map(lambda f: round(f, 3)),
            min_size=1,
            max_size=4,
        ),
        min_size=2,
        max_size=5,
    ),
    capacity=st.integers(min_value=1, max_value=4),
)
def test_property_two_runs_identical(spec, capacity):
    assert run_workload(spec, capacity) == run_workload(spec, capacity)

"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError, SimulationError
from repro.sim.kernel import Kernel


def test_events_fire_in_time_order():
    kernel = Kernel()
    fired: list[str] = []
    kernel.schedule(3.0, fired.append, "c")
    kernel.schedule(1.0, fired.append, "a")
    kernel.schedule(2.0, fired.append, "b")
    kernel.run()
    assert fired == ["a", "b", "c"]
    assert kernel.now() == 3.0


def test_same_time_fifo_order():
    kernel = Kernel()
    fired: list[int] = []
    for i in range(10):
        kernel.schedule(1.0, fired.append, i)
    kernel.run()
    assert fired == list(range(10))


def test_priority_breaks_time_ties():
    kernel = Kernel()
    fired: list[str] = []
    kernel.schedule(1.0, fired.append, "low", priority=5)
    kernel.schedule(1.0, fired.append, "high", priority=-5)
    kernel.run()
    assert fired == ["high", "low"]


def test_negative_delay_rejected():
    with pytest.raises(SchedulingError):
        Kernel().schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    kernel = Kernel()
    fired: list[float] = []
    kernel.schedule(5.0, lambda: fired.append(kernel.now()))
    kernel.run()
    kernel.schedule_at(7.5, lambda: fired.append(kernel.now()))
    kernel.run()
    assert fired == [5.0, 7.5]


def test_run_until_stops_clock_at_until():
    kernel = Kernel()
    fired: list[str] = []
    kernel.schedule(1.0, fired.append, "early")
    kernel.schedule(10.0, fired.append, "late")
    kernel.run(until=5.0)
    assert fired == ["early"]
    assert kernel.now() == 5.0
    kernel.run()
    assert fired == ["early", "late"]


def test_cancelled_event_does_not_fire():
    kernel = Kernel()
    fired: list[str] = []
    handle = kernel.schedule(1.0, fired.append, "x")
    kernel.schedule(2.0, fired.append, "y")
    handle.cancel()
    assert handle.cancelled
    kernel.run()
    assert fired == ["y"]


def test_events_scheduled_during_run():
    kernel = Kernel()
    fired: list[str] = []

    def cascade():
        fired.append("first")
        kernel.schedule(1.0, fired.append, "second")

    kernel.schedule(1.0, cascade)
    kernel.run()
    assert fired == ["first", "second"]
    assert kernel.now() == 2.0


def test_step_fires_one_event():
    kernel = Kernel()
    fired: list[int] = []
    kernel.schedule(1.0, fired.append, 1)
    kernel.schedule(2.0, fired.append, 2)
    assert kernel.step()
    assert fired == [1]
    assert kernel.step()
    assert not kernel.step()


def test_pending_events_excludes_cancelled():
    kernel = Kernel()
    h = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    assert kernel.pending_events == 2
    h.cancel()
    assert kernel.pending_events == 1


def test_run_reentry_rejected():
    kernel = Kernel()

    def reenter():
        kernel.run()

    kernel.schedule(1.0, reenter)
    with pytest.raises(SimulationError, match="re-entered"):
        kernel.run()


def test_run_until_without_events_advances_clock():
    kernel = Kernel()
    kernel.run(until=42.0)
    assert kernel.now() == 42.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
def test_property_fire_times_sorted(delays):
    kernel = Kernel()
    fired: list[float] = []
    for d in delays:
        kernel.schedule(d, lambda: fired.append(kernel.now()))
    kernel.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)

"""Tests for deterministic simulated threads."""

from __future__ import annotations

import pytest

from repro.errors import AgentStateError, SimulationError
from repro.sim.kernel import Kernel
from repro.sim.threads import Interrupted, SimThread, ThreadState


def test_thread_runs_and_returns_result():
    kernel = Kernel()
    t = SimThread(kernel, lambda: 41 + 1, "worker")
    t.start()
    kernel.run()
    assert t.state is ThreadState.DONE
    assert t.result == 42


def test_sleep_advances_virtual_time():
    kernel = Kernel()
    log: list[tuple[str, float]] = []

    def worker():
        log.append(("start", kernel.now()))
        kernel.current_thread().sleep(2.5)
        log.append(("end", kernel.now()))

    SimThread(kernel, worker, "sleeper").start()
    kernel.run()
    assert log == [("start", 0.0), ("end", 2.5)]


def test_two_threads_interleave_deterministically():
    kernel = Kernel()
    log: list[str] = []

    def make(name: str, pause: float):
        def worker():
            for i in range(3):
                log.append(f"{name}{i}@{kernel.now():g}")
                kernel.current_thread().sleep(pause)

        return worker

    SimThread(kernel, make("a", 1.0), "a").start()
    SimThread(kernel, make("b", 1.5), "b").start()
    kernel.run()
    assert log == ["a0@0", "b0@0", "a1@1", "b1@1.5", "a2@2", "b2@3"]


def test_start_delay():
    kernel = Kernel()
    seen: list[float] = []
    SimThread(kernel, lambda: seen.append(kernel.now()), "late").start(delay=4.0)
    kernel.run()
    assert seen == [4.0]


def test_double_start_rejected():
    kernel = Kernel()
    t = SimThread(kernel, lambda: None)
    t.start()
    with pytest.raises(AgentStateError):
        t.start()


def test_join_returns_result():
    kernel = Kernel()
    results: list[int] = []

    def child():
        kernel.current_thread().sleep(1.0)
        return 7

    def parent():
        c = SimThread(kernel, child, "child")
        c.start()
        results.append(c.join())

    SimThread(kernel, parent, "parent").start()
    kernel.run()
    assert results == [7]


def test_join_already_finished_thread():
    kernel = Kernel()
    results: list[int] = []
    c = SimThread(kernel, lambda: 9, "child")
    c.start()

    def parent():
        kernel.current_thread().sleep(5.0)  # child long done
        results.append(c.join())

    SimThread(kernel, parent, "parent").start()
    kernel.run()
    assert results == [9]


def test_join_reraises_child_failure():
    kernel = Kernel()
    outcome: list[str] = []

    def child():
        raise ValueError("child boom")

    def parent():
        c = SimThread(kernel, child, "child", on_error="store")
        c.start()
        try:
            c.join()
        except ValueError as exc:
            outcome.append(str(exc))

    SimThread(kernel, parent, "parent").start()
    kernel.run()
    assert outcome == ["child boom"]


def test_join_noreraise_returns_none():
    kernel = Kernel()
    seen: list[object] = []

    def child():
        raise ValueError("x")

    def parent():
        c = SimThread(kernel, child, "child", on_error="store")
        c.start()
        seen.append(c.join(reraise=False))

    SimThread(kernel, parent, "parent").start()
    kernel.run()
    assert seen == [None]


def test_unhandled_failure_aborts_simulation():
    kernel = Kernel()

    def bad():
        raise RuntimeError("unhandled")

    SimThread(kernel, bad, "bad").start()
    with pytest.raises(SimulationError, match="unhandled"):
        kernel.run()


def test_on_error_store_keeps_exception():
    kernel = Kernel()

    def bad():
        raise RuntimeError("stored")

    t = SimThread(kernel, bad, "bad", on_error="store")
    t.start()
    kernel.run()
    assert t.state is ThreadState.FAILED
    assert isinstance(t.exception, RuntimeError)


def test_invalid_on_error_rejected():
    with pytest.raises(ValueError):
        SimThread(Kernel(), lambda: None, on_error="explode")


def test_join_from_kernel_context_rejected():
    kernel = Kernel()
    t = SimThread(kernel, lambda: None)
    t.start()
    with pytest.raises(SimulationError, match="simulated thread"):
        t.join()


def test_self_join_rejected():
    kernel = Kernel()
    errors: list[str] = []

    def worker():
        try:
            kernel.current_thread().join()
        except SimulationError as exc:
            errors.append(str(exc))

    SimThread(kernel, worker).start()
    kernel.run()
    assert errors and "join itself" in errors[0]


def test_interrupt_wakes_sleeping_thread():
    kernel = Kernel()
    log: list[str] = []

    def sleeper():
        try:
            kernel.current_thread().sleep(100.0)
            log.append("woke normally")
        except Interrupted:
            log.append(f"interrupted@{kernel.now():g}")

    t = SimThread(kernel, sleeper, "sleeper")
    t.start()
    kernel.schedule(2.0, t.interrupt)
    kernel.run()
    assert log == ["interrupted@2"]
    assert t.state is ThreadState.DONE
    # The cancelled sleep wake-up must not fire later.
    assert kernel.now() == 2.0


def test_interrupt_with_custom_exception():
    kernel = Kernel()
    caught: list[str] = []

    class Quit(Exception):
        pass

    def worker():
        try:
            kernel.current_thread().sleep(10.0)
        except Quit:
            caught.append("quit")

    t = SimThread(kernel, worker)
    t.start()
    kernel.schedule(1.0, t.interrupt, Quit())
    kernel.run()
    assert caught == ["quit"]


def test_interrupt_finished_thread_is_noop():
    kernel = Kernel()
    t = SimThread(kernel, lambda: None)
    t.start()
    kernel.run()
    t.interrupt()  # must not raise or schedule anything
    assert kernel.pending_events == 0


def test_kill_terminates_thread_silently():
    kernel = Kernel()
    progress: list[int] = []

    def worker():
        for i in range(10):
            progress.append(i)
            kernel.current_thread().sleep(1.0)

    t = SimThread(kernel, worker)
    t.start()
    kernel.schedule(2.5, t.kill)
    kernel.run()
    assert t.state is ThreadState.KILLED
    assert progress == [0, 1, 2]


def test_deadlock_detection():
    kernel = Kernel()

    def waiter():
        from repro.sim.sync import SimEvent

        SimEvent(kernel).wait()  # nobody will ever set this

    SimThread(kernel, waiter, "stuck").start()
    with pytest.raises(SimulationError, match="deadlock.*stuck"):
        kernel.run()


def test_deadlock_detection_can_be_disabled():
    kernel = Kernel()

    def waiter():
        from repro.sim.sync import SimEvent

        SimEvent(kernel).wait()

    SimThread(kernel, waiter, "stuck").start()
    kernel.run(detect_deadlock=False)  # no raise


def test_current_thread_identity():
    kernel = Kernel()
    seen: list[object] = []
    t = SimThread(kernel, lambda: seen.append(kernel.current_thread()), "me")
    t.start()
    kernel.run()
    assert seen == [t]
    assert kernel.current_thread() is None


def test_thread_context_dict():
    kernel = Kernel()
    t = SimThread(kernel, lambda: None, context={"group": "g1"})
    assert t.context["group"] == "g1"


def test_determinism_across_runs():
    def scenario() -> list[str]:
        kernel = Kernel()
        log: list[str] = []

        def worker(name: str, pauses: list[float]):
            def run():
                for p in pauses:
                    log.append(f"{name}@{kernel.now():g}")
                    kernel.current_thread().sleep(p)

            return run

        SimThread(kernel, worker("x", [1, 1, 1]), "x").start()
        SimThread(kernel, worker("y", [0.5, 2, 0.5]), "y").start()
        SimThread(kernel, worker("z", [3]), "z").start(delay=0.25)
        kernel.run()
        return log

    assert scenario() == scenario()

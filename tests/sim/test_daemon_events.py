"""Daemon events and periodic ticks (Kernel.every / RepeatingEvent)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.sim.kernel import Kernel, RepeatingEvent


def test_daemon_event_never_keeps_the_world_alive():
    kernel = Kernel()
    fired: list[str] = []
    kernel.schedule(1.0, fired.append, "daemon", daemon=True)
    kernel.run()
    assert fired == []
    assert kernel.now() == 0.0


def test_daemon_events_fire_up_to_an_explicit_until():
    kernel = Kernel()
    fired: list[float] = []
    kernel.every(1.0, lambda: fired.append(kernel.now()))
    kernel.run(until=3.5)
    assert fired == [1.0, 2.0, 3.0]
    assert kernel.now() == 3.5


def test_daemon_ticks_interleave_with_foreground_work():
    kernel = Kernel()
    ticks: list[float] = []
    kernel.every(1.0, lambda: ticks.append(kernel.now()))
    done: list[str] = []
    kernel.schedule(2.5, done.append, "work")
    kernel.run()
    # Ticks fire while foreground work is pending, then stop with it.
    assert done == ["work"]
    assert ticks == [1.0, 2.0]


def test_every_returns_repeating_event_with_fired_count():
    kernel = Kernel()
    ticker = kernel.every(0.5, lambda: None)
    assert isinstance(ticker, RepeatingEvent)
    kernel.run(until=2.0)
    assert ticker.fired == 4
    ticker.cancel()
    assert ticker.cancelled
    kernel.run(until=4.0)
    assert ticker.fired == 4  # no further ticks after cancel


def test_every_rejects_nonpositive_interval():
    kernel = Kernel()
    with pytest.raises(SchedulingError):
        kernel.every(0.0, lambda: None)
    with pytest.raises(SchedulingError):
        kernel.every(-1.0, lambda: None)


def test_nondaemon_repeating_event_with_until():
    kernel = Kernel()
    fired = []
    kernel.every(1.0, lambda: fired.append(kernel.now()), daemon=False)
    kernel.run(until=2.5)
    assert fired == [1.0, 2.0]


def test_cancelled_timeout_does_not_hold_daemon_ticks_open():
    """Regression: a cancelled foreground timeout deep in the queue must
    not keep run() (and its daemon ticks) spinning until its time slot."""
    kernel = Kernel()
    ticks: list[float] = []
    kernel.every(0.001, lambda: ticks.append(kernel.now()))
    timeout = kernel.schedule(60.0, lambda: pytest.fail("fired"))
    kernel.schedule(0.01, timeout.cancel)
    kernel.run()
    assert kernel.now() < 1.0
    assert len(ticks) <= 11


def test_cancel_after_fire_does_not_corrupt_foreground_count():
    kernel = Kernel()
    handle = kernel.schedule(1.0, lambda: None)
    kernel.run()
    handle.cancel()  # late cleanup of an already-fired event: harmless
    handle.cancel()  # idempotent
    fired: list[str] = []
    kernel.schedule(1.0, fired.append, "again")
    kernel.run()
    assert fired == ["again"]
    assert kernel._nondaemon_queued == 0


def test_repeating_event_reschedules_even_when_action_raises():
    kernel = Kernel()
    calls = []

    def flaky():
        calls.append(kernel.now())
        if len(calls) == 1:
            raise RuntimeError("transient")

    ticker = kernel.every(1.0, flaky)
    with pytest.raises(RuntimeError):
        kernel.run(until=1.5)
    kernel.run(until=3.5)
    assert ticker.fired == 3
    assert calls == [1.0, 2.0, 3.0]

"""Tests for simulated-thread synchronization primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.sim.sync import BlockingQueue, Mutex, Semaphore, SimEvent
from repro.sim.threads import Interrupted, SimThread


def run_threads(kernel: Kernel, *targets, **kwargs) -> list[SimThread]:
    threads = [
        SimThread(kernel, t, f"t{i}", **kwargs) for i, t in enumerate(targets)
    ]
    for t in threads:
        t.start()
    kernel.run()
    return threads


class TestSimEvent:
    def test_wait_blocks_until_set(self):
        kernel = Kernel()
        log: list[str] = []
        ev = SimEvent(kernel)

        def waiter():
            log.append(f"wait@{kernel.now():g}")
            payload = ev.wait()
            log.append(f"woke@{kernel.now():g}:{payload}")

        def setter():
            kernel.current_thread().sleep(3.0)
            ev.set("hello")

        run_threads(kernel, waiter, setter)
        assert log == ["wait@0", "woke@3:hello"]

    def test_wait_after_set_returns_immediately(self):
        kernel = Kernel()
        ev = SimEvent(kernel)
        ev.set(5)
        got: list[int] = []
        run_threads(kernel, lambda: got.append(ev.wait()))
        assert got == [5]

    def test_set_wakes_all_waiters_fifo(self):
        kernel = Kernel()
        ev = SimEvent(kernel)
        order: list[str] = []

        def waiter(name):
            def run():
                ev.wait()
                order.append(name)

            return run

        SimThread(kernel, waiter("a"), "a").start()
        SimThread(kernel, waiter("b"), "b").start()
        kernel.schedule(1.0, ev.set)
        kernel.run()
        assert order == ["a", "b"]

    def test_double_set_is_noop(self):
        kernel = Kernel()
        ev = SimEvent(kernel)
        ev.set(1)
        ev.set(2)
        assert ev.wait() == 1

    def test_wait_from_kernel_context_rejected_when_unset(self):
        kernel = Kernel()
        with pytest.raises(SimulationError):
            SimEvent(kernel).wait()


class TestSemaphore:
    def test_tokens_count(self):
        kernel = Kernel()
        sem = Semaphore(kernel, 2)
        assert sem.try_acquire()
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.tokens == 1

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(Kernel(), -1)

    def test_blocking_acquire_fifo_handoff(self):
        kernel = Kernel()
        sem = Semaphore(kernel, 1)
        order: list[str] = []

        def holder():
            sem.acquire()
            kernel.current_thread().sleep(5.0)
            sem.release()

        def contender(name):
            def run():
                kernel.current_thread().sleep(0.1)
                sem.acquire()
                order.append(f"{name}@{kernel.now():g}")
                sem.release()

            return run

        SimThread(kernel, holder, "h").start()
        SimThread(kernel, contender("a"), "a").start()
        SimThread(kernel, contender("b"), "b").start()
        kernel.run()
        assert order == ["a@5", "b@5"]

    def test_context_manager(self):
        kernel = Kernel()
        sem = Semaphore(kernel, 1)
        held: list[int] = []

        def worker():
            with sem:
                held.append(sem.tokens)

        run_threads(kernel, worker)
        assert held == [0]
        assert sem.tokens == 1

    def test_interrupted_waiter_loses_no_token(self):
        kernel = Kernel()
        sem = Semaphore(kernel, 1)
        outcome: list[str] = []

        def holder():
            sem.acquire()
            kernel.current_thread().sleep(10.0)
            sem.release()

        def victim():
            try:
                sem.acquire()
                outcome.append("acquired")
            except Interrupted:
                outcome.append("interrupted")

        SimThread(kernel, holder, "h").start()
        v = SimThread(kernel, victim, "v")
        v.start()
        kernel.schedule(1.0, v.interrupt)
        kernel.run()
        assert outcome == ["interrupted"]
        assert sem.tokens == 1  # released by holder, not consumed by victim
        assert sem.waiting == 0


class TestMutex:
    def test_ownership(self):
        kernel = Kernel()
        mtx = Mutex(kernel)
        owners: list[object] = []

        def worker():
            mtx.acquire()
            owners.append(mtx.owner)
            mtx.release()
            owners.append(mtx.owner)

        threads = run_threads(kernel, worker)
        assert owners == [threads[0], None]

    def test_release_by_non_owner_rejected(self):
        kernel = Kernel()
        mtx = Mutex(kernel)
        errors: list[str] = []

        def thief():
            try:
                mtx.release()
            except SimulationError as exc:
                errors.append(str(exc))

        def owner():
            mtx.acquire()
            kernel.current_thread().sleep(1.0)
            mtx.release()

        SimThread(kernel, owner, "o").start()
        SimThread(kernel, thief, "t").start()
        kernel.run()
        assert errors and "non-owner" in errors[0]

    def test_try_acquire_sets_owner(self):
        kernel = Kernel()
        mtx = Mutex(kernel)
        seen: list[object] = []

        def worker():
            assert mtx.try_acquire()
            seen.append(mtx.owner)
            mtx.release()

        threads = run_threads(kernel, worker)
        assert seen == [threads[0]]


class TestBlockingQueue:
    def test_capacity_validation(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            BlockingQueue(kernel, capacity=0)
        assert BlockingQueue(kernel).capacity is None

    def test_try_put_try_get(self):
        kernel = Kernel()
        q = BlockingQueue(kernel, capacity=2)
        assert q.try_put(1) and q.try_put(2)
        assert not q.try_put(3)
        assert q.full and len(q) == 2
        assert q.try_get() == (True, 1)
        assert q.try_get() == (True, 2)
        assert q.try_get() == (False, None)

    def test_get_blocks_until_put(self):
        kernel = Kernel()
        q = BlockingQueue(kernel)
        log: list[str] = []

        def consumer():
            log.append(f"got:{q.get()}@{kernel.now():g}")

        def producer():
            kernel.current_thread().sleep(2.0)
            q.put("item")

        run_threads(kernel, consumer, producer)
        assert log == ["got:item@2"]

    def test_put_blocks_when_full(self):
        kernel = Kernel()
        q = BlockingQueue(kernel, capacity=1)
        log: list[str] = []

        def producer():
            q.put("a")
            log.append(f"a@{kernel.now():g}")
            q.put("b")
            log.append(f"b@{kernel.now():g}")

        def consumer():
            kernel.current_thread().sleep(3.0)
            log.append(f"got:{q.get()}@{kernel.now():g}")

        run_threads(kernel, producer, consumer)
        assert log == ["a@0", "got:a@3", "b@3"]

    def test_fifo_ordering(self):
        kernel = Kernel()
        q = BlockingQueue(kernel, capacity=3)
        got: list[int] = []

        def producer():
            for i in range(6):
                q.put(i)

        def consumer():
            kernel.current_thread().sleep(1.0)
            for _ in range(6):
                got.append(q.get())

        run_threads(kernel, producer, consumer)
        assert got == list(range(6))

    def test_direct_handoff_to_waiting_consumer(self):
        kernel = Kernel()
        q = BlockingQueue(kernel, capacity=1)
        got: list[str] = []

        def consumer():
            got.append(q.get())

        def producer():
            kernel.current_thread().sleep(1.0)
            q.put("x")  # consumer is already waiting; no queue residency

        run_threads(kernel, consumer, producer)
        assert got == ["x"]
        assert len(q) == 0

    def test_interrupted_producer_item_not_enqueued(self):
        kernel = Kernel()
        q = BlockingQueue(kernel, capacity=1)
        outcome: list[str] = []

        def producer():
            q.put("keep")
            try:
                q.put("lost")
                outcome.append("put")
            except Interrupted:
                outcome.append("interrupted")

        p = SimThread(kernel, producer, "p")
        p.start()
        kernel.schedule(1.0, p.interrupt)
        kernel.run()
        assert outcome == ["interrupted"]
        ok, item = q.try_get()
        assert ok and item == "keep"
        assert q.try_get() == (False, None)

    def test_many_producers_consumers_conservation(self):
        kernel = Kernel()
        q = BlockingQueue(kernel, capacity=4)
        produced = 40
        got: list[int] = []

        def producer(base):
            def run():
                for i in range(10):
                    q.put(base * 100 + i)
                    kernel.current_thread().sleep(0.1)

            return run

        def consumer():
            for _ in range(produced // 2):
                got.append(q.get())
                kernel.current_thread().sleep(0.15)

        for i in range(4):
            SimThread(kernel, producer(i), f"p{i}").start()
        SimThread(kernel, consumer, "c0").start()
        SimThread(kernel, consumer, "c1").start()
        kernel.run()
        assert sorted(got) == sorted(
            b * 100 + i for b in range(4) for i in range(10)
        )

"""Tests for statistics accumulators."""

from __future__ import annotations

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.monitor import Counter, Series, Tally, TimeWeighted


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("msgs")
        c.add("msgs", 4)
        assert c.get("msgs") == 5
        assert c["msgs"] == 5
        assert c.get("other") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add("x", -1)

    def test_as_dict_is_copy(self):
        c = Counter()
        c.add("x")
        d = c.as_dict()
        d["x"] = 99
        assert c.get("x") == 1


class TestTally:
    def test_empty(self):
        t = Tally()
        assert t.count == 0
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)

    def test_known_values(self):
        t = Tally()
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            t.observe(v)
        assert t.count == 8
        assert t.mean == pytest.approx(5.0)
        assert t.min == 2.0 and t.max == 9.0
        assert t.total == pytest.approx(40.0)
        assert t.variance == pytest.approx(
            statistics.variance([2, 4, 4, 4, 5, 5, 7, 9])
        )

    def test_single_value_variance_nan(self):
        t = Tally()
        t.observe(3.0)
        assert math.isnan(t.variance)
        assert math.isnan(t.stdev)

    def test_summary_keys(self):
        t = Tally()
        t.observe(1.0)
        t.observe(2.0)
        s = t.summary()
        assert set(s) == {"count", "mean", "stdev", "min", "max", "total"}

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_property_matches_statistics_module(self, values):
        t = Tally()
        for v in values:
            t.observe(v)
        assert t.mean == pytest.approx(statistics.fmean(values), abs=1e-6)
        assert t.variance == pytest.approx(
            statistics.variance(values), rel=1e-6, abs=1e-6
        )


class TestTimeWeighted:
    def test_piecewise_constant_average(self):
        tw = TimeWeighted()
        tw.update(0.0, 2.0)  # value 2 on [0, 4)
        tw.update(4.0, 6.0)  # value 6 on [4, 8)
        assert tw.average(8.0) == pytest.approx(4.0)
        assert tw.current == 6.0

    def test_average_at_last_update(self):
        tw = TimeWeighted()
        tw.update(0.0, 1.0)
        tw.update(2.0, 3.0)
        assert tw.average() == pytest.approx(1.0)

    def test_zero_span_returns_current(self):
        tw = TimeWeighted(start_time=5.0, initial=7.0)
        assert tw.average(5.0) == 7.0

    def test_backwards_time_rejected(self):
        tw = TimeWeighted()
        tw.update(3.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(2.0, 1.0)
        with pytest.raises(ValueError):
            tw.average(1.0)


class TestSeries:
    def test_record_and_iterate(self):
        s = Series("queue")
        s.record(0.0, 1)
        s.record(1.0, 2)
        assert len(s) == 2
        assert list(s) == [(0.0, 1), (1.0, 2)]
        assert s.last() == (1.0, 2)

    def test_non_decreasing_times(self):
        s = Series()
        s.record(1.0, "a")
        s.record(1.0, "b")  # equal is fine
        with pytest.raises(ValueError):
            s.record(0.5, "c")

    def test_empty_last_raises(self):
        with pytest.raises(IndexError):
            Series().last()

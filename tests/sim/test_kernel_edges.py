"""Edge cases of the kernel and thread machinery."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.kernel import Kernel
from repro.sim.threads import SimThread, ThreadState


def test_schedule_at_in_the_past_rejected():
    kernel = Kernel()
    kernel.run(until=10.0)
    with pytest.raises(SchedulingError):
        kernel.schedule_at(5.0, lambda: None)


def test_cancel_after_fire_is_noop():
    kernel = Kernel()
    fired = []
    handle = kernel.schedule(1.0, fired.append, 1)
    kernel.run()
    handle.cancel()  # no error
    assert fired == [1] and handle.cancelled


def test_threads_listing():
    kernel = Kernel()
    a = SimThread(kernel, lambda: None, "a")
    b = SimThread(kernel, lambda: None, "b")
    assert kernel.threads() == [a, b]
    a.start()
    kernel.run()
    assert a.state is ThreadState.DONE
    assert b.state is ThreadState.NEW


def test_step_skips_cancelled_events():
    kernel = Kernel()
    fired = []
    h = kernel.schedule(1.0, fired.append, "x")
    kernel.schedule(2.0, fired.append, "y")
    h.cancel()
    assert kernel.step()
    assert fired == ["y"]


def test_interrupt_before_first_run_fires_at_first_block():
    kernel = Kernel()
    log = []

    def worker():
        log.append("started")
        kernel.current_thread().sleep(1.0)
        log.append("slept")

    t = SimThread(kernel, worker, "w", on_error="store")
    t.start(delay=5.0)
    t.interrupt()  # READY, not yet running: interrupt is pending
    kernel.run(detect_deadlock=False)
    # It started, then the pending interrupt fired at the first block.
    assert log == ["started"]
    assert t.state is ThreadState.FAILED


def test_kill_before_first_run():
    kernel = Kernel()
    log = []

    def worker():
        log.append("ran")
        kernel.current_thread().sleep(1.0)
        log.append("finished")

    t = SimThread(kernel, worker, "w")
    t.start(delay=1.0)
    t.kill()
    kernel.run(detect_deadlock=False)
    assert log == ["ran"]
    assert t.state is ThreadState.KILLED


def test_finished_thread_properties():
    kernel = Kernel()
    t = SimThread(kernel, lambda: "value", "w")
    t.start()
    kernel.run()
    assert t.finished and not t.is_alive and not t.is_blocked
    assert t.result == "value"

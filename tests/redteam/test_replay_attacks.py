"""Red team: replaying a captured agent image.

The transfer-id dedup table only suppresses retransmissions *under the
same id* — a replaying attacker mints a fresh id, so the offer sails
past dedup and must be caught by the integrity layer's record of
admitted chain tips.
"""

from __future__ import annotations

from repro.credentials.rights import Rights
from repro.net.faults import capture

from tests.redteam.campaign import assert_attack_detected, hopper


def test_replayed_image_with_fresh_transfer_id_is_refused(world):
    w = world(3)
    home, s1, s2 = w.servers
    controller = w.faults().compromise(s1, capture(), at=0.0)
    w.launch(hopper(s1.name, s2.name), Rights.all())
    w.run(detect_deadlock=False)  # the honest pass-through delivery
    assert controller.captured, "capture behavior saw no traffic"
    assert s2.stats["agents_hosted"] == 1
    assert s2.integrity.stats["appraisals_verified"] == 1

    w.faults().replay_capture(s1, controller, at=w.clock.now() + 30.0)
    w.run(detect_deadlock=False)
    assert w.faults().stats["replay_offered"] == 1
    assert s2.stats["agents_hosted"] == 1  # not admitted a second time
    assert s2.stats["transfers_duplicate_suppressed"] == 0  # dedup never saw it
    assert_attack_detected(w, s2, s1, reason="replayed")

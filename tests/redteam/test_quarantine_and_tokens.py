"""Red team: what quarantine and token revocation buy after detection.

Detection is only half the defence — the other half is that a caught
host stops costing anything (fast refusals before any decode work) and
that the tampered agent's carried capability tokens die federation-wide
(one holder-epoch bump).
"""

from __future__ import annotations

from repro.core.token import TokenAuthority, default_epoch_registry
from repro.credentials.rights import Rights
from repro.net.faults import capture, tamper_state

from tests.redteam.campaign import hopper


def test_quarantined_host_gets_fast_refusal_on_its_next_offer(world):
    w = world(3)
    home, s1, s2 = w.servers
    w.faults().compromise(s1, tamper_state(evil=True), at=0.0, duration=3.0)
    w.launch(hopper(s1.name, s2.name), Rights.all())
    w.run(detect_deadlock=False)
    assert s2.stats["transfers_refused_integrity"] == 1
    assert s2.integrity.quarantine.blocked_name(s1.name)

    # s1 is honest again (the compromise expired) and forwards a second,
    # perfectly sealed agent — but it is inside its quarantine window,
    # so s2 refuses before spending any verification work on the offer.
    verified_before = s2.integrity.stats["appraisals_verified"]
    failed_before = s2.integrity.stats["appraisals_failed"]
    w.launch(hopper(s1.name, s2.name), Rights.all())
    w.run(detect_deadlock=False)
    assert s2.stats["transfers_refused_quarantined"] == 1
    assert s2.audit.records(operation="atp.quarantine", allowed=False)
    assert s2.integrity.stats["appraisals_verified"] == verified_before
    assert s2.integrity.stats["appraisals_failed"] == failed_before
    assert s2.stats["agents_hosted"] == 0


def test_integrity_reject_stales_the_agents_carried_tokens(world):
    """Satellite of PR 6's capability tokens: an integrity rejection
    bumps the agent's holder epoch, so every token minted to it — on any
    server, carried in any copy — fails the O(1) freshness check.

    Uses a replay (not a live tamper) so the only epoch bump between
    mint and check is the integrity layer's: the honest agent completed,
    tokens were re-minted afterwards, and then a host replays its stale
    image.
    """
    w = world(3)
    home, s1, s2 = w.servers
    controller = w.faults().compromise(s1, capture(), at=0.0)
    image = w.launch(hopper(s1.name, s2.name), Rights.all())
    w.run(detect_deadlock=False)
    assert s2.stats["agents_hosted"] == 1

    authority = TokenAuthority(key=b"redteam-token-key-0123456789abcd")
    token = authority.mint(
        grantee=str(image.name),
        resource="urn:resource:store.net/buf",
        resource_kind="Buffer",
        iface_digest="digest",
        mask=0b11,
        ring=1,
        confine=False,
        lease=None,
        now=w.clock.now(),
    )
    assert authority.is_fresh(token, w.clock.now())
    cell = default_epoch_registry().holder_cell(str(image.name))
    epoch_at_mint = cell.value

    w.faults().replay_capture(s1, controller, at=w.clock.now() + 10.0)
    w.run(detect_deadlock=False)
    assert s2.stats["transfers_refused_integrity"] == 1
    assert cell.value == epoch_at_mint + 1  # exactly the integrity bump
    assert not authority.is_fresh(token, w.clock.now())
    assert authority.stats["stale_epoch"] == 1

"""Control group: honest worlds must pay nothing but the seals.

The campaign is only meaningful if the integrity layer never cries wolf:
honest multi-hop tours — including lossy ones, where retries, dedup hits
and crash-recovery re-offers abound — must complete exactly once with
zero integrity refusals and a chain that verifies end-to-end at home.
"""

from __future__ import annotations

from repro.agents.integrity import APPRAISAL_ATTRIBUTE, COMMITMENT_ATTRIBUTE
from repro.agents.itinerary import Itinerary
from repro.credentials.rights import Rights
from repro.util.retry import RetryPolicy

from tests.redteam.campaign import RedTourist, retry_kwargs


def statuses_of(bed, agent) -> list[str]:
    out: list[str] = []
    for server in bed.servers:
        out.extend(r.status for r in server.domain_db.records_of(agent))
    return out


def touring(*servers: str) -> RedTourist:
    agent = RedTourist()
    agent.itinerary = Itinerary.tour(list(servers))
    return agent


def test_honest_tour_chain_verifies_end_to_end(world):
    """Lossless 4-hop round trip: every hop appraised, the commitment
    verified on return, and the returned chain replays the whole route."""
    w = world(4)
    home, s1, s2, s3 = w.servers
    image = w.launch(touring(s1.name, s2.name, s3.name, home.name),
                     Rights.all())
    # Spy on homecomings only — the launch residency already started.
    returned = []
    original_start = home._start_resident
    home._start_resident = lambda img: (returned.append(img),
                                        original_start(img))[1]
    w.run(detect_deadlock=False)

    sts = statuses_of(w.bed, image.name)
    assert sts.count("completed") == 1 and sts.count("running") == 0
    for server in (s1, s2, s3, home):
        assert server.stats["transfers_refused_integrity"] == 0
        assert server.integrity.stats["appraisals_verified"] == 1
        assert server.integrity.stats["appraisals_failed"] == 0
    assert home.integrity.stats["itineraries_committed"] == 1
    assert home.integrity.stats["itineraries_verified"] == 1

    # The image that came home carries the full, linked travel record.
    assert len(returned) == 1
    final = returned[0]
    chain = final.attributes[APPRAISAL_ATTRIBUTE]
    assert [link.origin for link in chain] == list(final.trace)
    assert [link.origin for link in chain] == [
        home.name, s1.name, s2.name, s3.name
    ]
    assert [link.destination for link in chain] == [
        s1.name, s2.name, s3.name, home.name
    ]
    assert [link.hop for link in chain] == [0, 1, 2, 3]
    assert COMMITMENT_ATTRIBUTE in final.attributes

    # And the whole journey reads as one causally ordered trace.
    spans = w.recorder.trace_of(image.name)
    departs = [s for s in spans if s.name == "transfer.depart"]
    assert [d.attributes["server"] for d in departs] == [
        home.name, s1.name, s2.name, s3.name
    ]
    w.recorder.assert_causal_order(departs)


def test_honest_five_hop_tour_at_10pct_loss_is_exactly_once(world):
    """The acceptance scenario: 10% frame loss, full retry machinery,
    appraisal on everywhere — exactly-once conservation holds and the
    integrity layer rejects nothing (retries are not replays)."""
    w = world(
        6,
        loss_rate=0.1,
        server_kwargs=retry_kwargs(
            transfer_timeout=10.0,
            transfer_retry=RetryPolicy(attempts=6, base_delay=1.0,
                                       jitter=0.25),
        ),
    )
    home = w.home
    stops = [s.name for s in w.servers[1:]] + [home.name]
    image = w.launch(touring(*stops), Rights.all())
    w.run(detect_deadlock=False)

    sts = statuses_of(w.bed, image.name)
    assert sts.count("running") == 0  # nothing stranded, anywhere
    assert sts.count("completed") >= 1  # the tour always finishes
    hosted = sum(s.stats["agents_hosted"] for s in w.servers)
    out = sum(s.stats["transfers_out"] for s in w.servers)
    assert hosted - out == sts.count("completed")
    for server in w.servers:
        assert server.stats["transfers_refused_integrity"] == 0
        assert server.integrity.stats["appraisals_failed"] == 0
    assert home.integrity.stats["itineraries_committed"] == 1
    # If the tour physically made it back, the homecoming re-appraisal
    # must have verified the commitment (seed sweeps may end a lossy
    # tour early via the skip policy — then there is nothing to verify).
    if home.stats["transfers_in"] > 0:
        assert home.integrity.stats["itineraries_verified"] >= 1

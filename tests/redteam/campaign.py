"""Shared machinery for the malicious-host red-team campaign.

Every scenario follows the same score: build a traced world, schedule a
compromise (:meth:`FaultInjector.compromise` + the attack catalogue in
:mod:`repro.net.faults`), send an honest agent through it, and then
prove — from stats, the audit log, the quarantine table and the flight
recorder — that the attack was *detected*, *attributed* and *causally
ordered* after the malicious hop.
"""

from __future__ import annotations

import os

from repro.agents.agent import Agent, register_trusted_agent_class
from repro.agents.patterns import ItineraryAgent
from repro.util.retry import RetryPolicy

STRESS_SEED = int(os.environ.get("REPRO_STRESS_SEED", "1000"))


@register_trusted_agent_class
class RedHopper(Agent):
    """A courier visiting a fixed hop list, completing at the last."""

    def __init__(self) -> None:
        self.hops: list[str] = []

    def run(self):
        if self.hops:
            self.go(self.hops.pop(0), "run")
        self.complete({"ended_at": self.host.server_name()})


@register_trusted_agent_class
class RedTourist(ItineraryAgent):
    """An itinerary-driven tourist recording where it actually ran."""

    def __init__(self) -> None:
        super().__init__()
        self.visited: list[str] = []

    def visit(self, stop):
        self.visited.append(self.host.server_name())

    def finish(self):
        self.complete({"visited": self.visited, "skipped": self.skipped})


def hopper(*hops: str) -> RedHopper:
    agent = RedHopper()
    agent.hops = list(hops)
    return agent


def retry_kwargs(**overrides):
    kw = {
        "transfer_timeout": 5.0,
        "transfer_retry": RetryPolicy(attempts=4, base_delay=1.0, jitter=0.0),
    }
    kw.update(overrides)
    return kw


def reject_stat(reason: str) -> str:
    return f"appraisal_reject_{reason.replace('-', '_')}"


def assert_attack_detected(
    world, victim, attacker, *, reason: str, count: int = 1,
    total: int | None = None,
):
    """The campaign's common post-mortem.

    Asserts the victim refused with :class:`AgentIntegrityError` for
    ``reason`` (``count`` times; ``total`` integrity refusals overall
    when a scenario stacks attacks), quarantined the attacker, wrote the
    audit record, and emitted an ``agent.integrity_reject`` span
    causally *after* the attacker's malicious departure.  Returns the
    reject span.
    """
    rec = world.recorder
    assert victim.stats["transfers_refused_integrity"] == (
        count if total is None else total
    )
    assert victim.integrity.stats[reject_stat(reason)] == count
    assert victim.integrity.quarantine.blocked_name(attacker.name)
    audit = victim.audit.records(
        operation="agent.integrity_reject", allowed=False
    )
    assert audit, "integrity rejection was not audited"
    assert any(reason in record.detail for record in audit)
    rejects = rec.spans_where(
        "agent.integrity_reject", status="error", reason=reason
    )
    assert rejects, "no integrity-reject span in the flight recorder"
    reject = rejects[-1]
    departs = rec.spans_where(
        "transfer.depart", trace_id=reject.trace_id, server=attacker.name
    )
    assert departs, "attacker's departure is missing from the trace"
    rec.assert_causal_order([departs[-1], reject])
    return reject

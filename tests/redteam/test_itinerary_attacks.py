"""Red team: forging or suppressing the cryptographic itinerary.

The home server seals the planned tour under a MAC key that never leaves
it and re-appraises on return.  A host can neither substitute its own
plan (wrong key) nor make the commitment disappear (the home remembers
sealing one).
"""

from __future__ import annotations

from repro.agents.itinerary import Itinerary
from repro.credentials.rights import Rights
from repro.net.faults import forge_itinerary, strip_itinerary

from tests.redteam.campaign import RedTourist, assert_attack_detected


def tourist(*servers: str) -> RedTourist:
    agent = RedTourist()
    agent.itinerary = Itinerary.tour(list(servers))
    return agent


def test_forged_itinerary_fails_home_reappraisal(world):
    w = world(3)
    home, s1, s2 = w.servers
    # The last host before home swaps in a commitment over a plan of its
    # own choosing, MACed under the only key it has — its own.
    controller = w.faults().compromise(
        s2, forge_itinerary(stops=((s2.name, "run"),)), at=0.0
    )
    w.launch(tourist(s1.name, s2.name, home.name), Rights.all())
    w.run(detect_deadlock=False)
    assert controller.applied == 1
    assert home.integrity.stats["itineraries_committed"] == 1
    assert home.integrity.stats["itineraries_verified"] == 0
    assert_attack_detected(w, home, s2, reason="itinerary-forged")


def test_stripped_itinerary_is_missed_at_home(world):
    w = world(3)
    home, s1, s2 = w.servers
    w.faults().compromise(s2, strip_itinerary(), at=0.0)
    w.launch(tourist(s1.name, s2.name, home.name), Rights.all())
    w.run(detect_deadlock=False)
    assert home.integrity.stats["itineraries_committed"] == 1
    # The home sealed a commitment at launch and remembers doing so: a
    # returning agent without one is an integrity violation, not a no-op.
    assert_attack_detected(w, home, s2, reason="itinerary-stripped")

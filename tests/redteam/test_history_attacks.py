"""Red team: hosts that edit the agent's travel history.

A malicious relay deletes its own hop (hiding that the agent ever passed
through) or reorders earlier hops.  Either edit breaks the hash chain's
correspondence with the trace — the appraisal record is append-only in
effect, because every link seals its position, its origin and its
predecessor's tag.
"""

from __future__ import annotations

from repro.credentials.rights import Rights
from repro.net.faults import drop_hop, reorder_hops

from tests.redteam.campaign import assert_attack_detected, hopper


def test_hop_deletion_is_detected(world):
    """s2 erases its own hop (tip link + trace entry) before forwarding:
    the surviving tip was sealed for s2, not for the receiver."""
    w = world(4)
    home, s1, s2, s3 = w.servers
    controller = w.faults().compromise(s2, drop_hop(-1), at=0.0)
    w.launch(hopper(s1.name, s2.name, s3.name), Rights.all())
    w.run(detect_deadlock=False)
    assert controller.applied == 1
    assert s3.stats["agents_hosted"] == 0
    assert_attack_detected(w, s3, s2, reason="misdirected")


def test_hop_reorder_is_detected(world):
    """s2 swaps the first two hops of the record (chain and trace in
    concert): every link seals its own hop index, so the swap is caught
    positionally before any signature is even checked."""
    w = world(4)
    home, s1, s2, s3 = w.servers
    w.faults().compromise(s2, reorder_hops(0, 1), at=0.0)
    w.launch(hopper(s1.name, s2.name, s3.name), Rights.all())
    w.run(detect_deadlock=False)
    assert s3.stats["agents_hosted"] == 0
    assert_attack_detected(w, s3, s2, reason="hop-mismatch")
